"""The deterministic load generator, driven against an in-process gateway."""

import pytest

from repro.errors import FleetError
from repro.fleet.gateway import GatewayConfig, GatewayThread
from repro.fleet.loadgen import LoadgenConfig, format_report, run_loadgen
from repro.obs.registry import MetricsRegistry


@pytest.fixture(scope="module")
def loadgen_report(tmp_path_factory):
    state = tmp_path_factory.mktemp("fleet-loadgen") / "state"
    config = LoadgenConfig(
        tenants=3,
        duration_s=0.1,
        chunk_samples=16384,
        seed=7,
        train_duration_s=2.0,
        ws_fraction=0.5,
    )
    with GatewayThread(
        GatewayConfig(state_dir=state, max_resident=2), MetricsRegistry()
    ) as server:
        yield run_loadgen(server.host, server.port, config)


class TestLoadgen:
    def test_report_shape(self, loadgen_report):
        report = loadgen_report
        assert report["tenants"] == 3
        assert report["ws_tenants"] + report["rest_tenants"] == 3
        assert report["chunks"] > 0
        assert report["frames"] > 0
        assert report["frames_per_s"] > 0
        assert report["latency"]["count"] == report["chunks"]
        assert report["latency"]["p99_ms"] >= report["latency"]["p50_ms"]
        assert report["tenants_per_core"] > 0

    def test_rehydration_check_is_byte_identical(self, loadgen_report):
        rehydration = loadgen_report["rehydration"]
        assert rehydration is not None
        assert rehydration["identical"] is True
        assert rehydration["verdicts"] > 0

    def test_format_report_is_human_readable(self, loadgen_report):
        text = format_report(loadgen_report)
        assert text.startswith("fleet gateway load test")
        assert "rehydration: byte-identical" in text
        assert "p99" in text
        assert text.endswith("\n")

    def test_rejects_zero_tenants(self):
        with pytest.raises(FleetError, match="at least one tenant"):
            run_loadgen("127.0.0.1", 1, LoadgenConfig(tenants=0))
