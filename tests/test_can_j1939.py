"""J1939 identifier semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.j1939 import (
    J1939Id,
    PGN_EEC1,
    PGN_TSC1,
    extract_source_address,
)
from repro.errors import CanEncodingError


class TestFields:
    def test_pack_layout(self):
        j = J1939Id(priority=3, pgn=PGN_EEC1, source_address=0x00)
        assert j.to_can_id() == (3 << 26) | (PGN_EEC1 << 8) | 0x00

    def test_pdu2_is_broadcast(self):
        j = J1939Id(priority=6, pgn=PGN_EEC1, source_address=0x10)
        assert not j.is_pdu1
        assert j.destination_address is None

    def test_pdu1_carries_destination(self):
        j = J1939Id(priority=3, pgn=PGN_TSC1, source_address=0x05, destination_address=0x00)
        assert j.is_pdu1
        decoded = J1939Id.from_can_id(j.to_can_id())
        assert decoded.destination_address == 0x00
        assert decoded.pgn == PGN_TSC1

    def test_pdu2_rejects_destination(self):
        with pytest.raises(CanEncodingError):
            J1939Id(priority=6, pgn=PGN_EEC1, source_address=0, destination_address=5)

    def test_priority_range(self):
        with pytest.raises(CanEncodingError):
            J1939Id(priority=8, pgn=0, source_address=0)

    def test_pgn_range(self):
        with pytest.raises(CanEncodingError):
            J1939Id(priority=0, pgn=1 << 18, source_address=0)

    def test_sa_range(self):
        with pytest.raises(CanEncodingError):
            J1939Id(priority=0, pgn=0, source_address=256)

    def test_str_contains_fields(self):
        text = str(J1939Id(priority=3, pgn=PGN_EEC1, source_address=0x17))
        assert "P=3" in text and "SA=0x17" in text


class TestRoundTrip:
    @given(
        st.integers(0, 7),
        st.integers(240, 255),  # PDU2 PF byte
        st.integers(0, 255),    # group extension
        st.integers(0, 255),
    )
    def test_pdu2_round_trip(self, priority, pf, ge, sa):
        pgn = (pf << 8) | ge
        j = J1939Id(priority=priority, pgn=pgn, source_address=sa)
        assert J1939Id.from_can_id(j.to_can_id()) == j

    @given(
        st.integers(0, 7),
        st.integers(0, 239),  # PDU1 PF byte
        st.integers(0, 255),  # destination
        st.integers(0, 255),
    )
    def test_pdu1_round_trip(self, priority, pf, da, sa):
        pgn = pf << 8
        j = J1939Id(
            priority=priority, pgn=pgn, source_address=sa, destination_address=da
        )
        assert J1939Id.from_can_id(j.to_can_id()) == j

    @given(st.integers(0, (1 << 29) - 1))
    def test_sa_is_low_byte(self, can_id):
        assert extract_source_address(can_id) == can_id & 0xFF

    def test_extract_sa_rejects_wide_id(self):
        with pytest.raises(CanEncodingError):
            extract_source_address(1 << 29)
