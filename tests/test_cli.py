"""Command-line interface workflows."""

import pytest

from repro.cli import main


class TestInfo:
    def test_vehicle_a(self, capsys):
        assert main(["info", "--vehicle", "a"]) == 0
        out = capsys.readouterr().out
        assert "VehicleA" in out
        assert "ECU0" in out and "ECU4" in out

    def test_sterling(self, capsys):
        assert main(["info", "--vehicle", "sterling"]) == 0
        assert "SterlingActerra" in capsys.readouterr().out


class TestCaptureTrainDetect:
    @pytest.fixture(scope="class")
    def capture_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "capture.npz"
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "6",
            "--seed", "3", "--output", str(path),
        ]) == 0
        return path

    @pytest.fixture(scope="class")
    def model_path(self, capture_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-model") / "model.npz"
        assert main([
            "train", "--vehicle", "sterling", "--input", str(capture_path),
            "--output", str(path),
        ]) == 0
        return path

    def test_capture_creates_archive(self, capture_path):
        assert capture_path.exists()

    def test_train_reports_clusters(self, model_path, capsys):
        assert model_path.exists()

    def test_detect_clean(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "2", "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy=" in out
        accuracy = float(out.split("accuracy=")[1].split()[0])
        assert accuracy > 0.99

    def test_detect_hijack(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "2", "--seed", "9", "--hijack", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        f_score = float(out.split("F=")[1].split()[0])
        assert f_score > 0.99

    def test_detect_fixed_margin(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "1", "--seed", "9", "--margin", "5.0",
        ]) == 0
        assert "auto-tuned" not in capsys.readouterr().out

    def test_train_cluster_by_distance(self, capture_path, tmp_path, capsys):
        path = tmp_path / "auto.npz"
        assert main([
            "train", "--vehicle", "sterling", "--input", str(capture_path),
            "--cluster-by-distance", "--output", str(path),
        ]) == 0
        assert "2 clusters" in capsys.readouterr().out


class TestExperiment:
    def test_suite(self, capsys):
        assert main([
            "experiment", "suite", "--vehicle", "sterling",
            "--duration", "8", "--metric", "mahalanobis",
        ]) == 0
        out = capsys.readouterr().out
        assert "False positive test" in out
        assert "Foreign device imitation test" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
