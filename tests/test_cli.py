"""Command-line interface workflows."""

import json
import os

import pytest

from repro.cli import main


class TestInfo:
    def test_vehicle_a(self, capsys):
        assert main(["info", "--vehicle", "a"]) == 0
        out = capsys.readouterr().out
        assert "VehicleA" in out
        assert "ECU0" in out and "ECU4" in out

    def test_sterling(self, capsys):
        assert main(["info", "--vehicle", "sterling"]) == 0
        assert "SterlingActerra" in capsys.readouterr().out


class TestCaptureTrainDetect:
    @pytest.fixture(scope="class")
    def capture_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "capture.npz"
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "6",
            "--seed", "3", "--output", str(path),
        ]) == 0
        return path

    @pytest.fixture(scope="class")
    def model_path(self, capture_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-model") / "model.npz"
        assert main([
            "train", "--vehicle", "sterling", "--input", str(capture_path),
            "--output", str(path),
        ]) == 0
        return path

    def test_capture_creates_archive(self, capture_path):
        assert capture_path.exists()

    def test_train_reports_clusters(self, model_path, capsys):
        assert model_path.exists()

    def test_detect_clean(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "2", "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy=" in out
        accuracy = float(out.split("accuracy=")[1].split()[0])
        assert accuracy > 0.99

    def test_detect_hijack(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "2", "--seed", "9", "--hijack", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        f_score = float(out.split("F=")[1].split()[0])
        assert f_score > 0.99

    def test_detect_fixed_margin(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "1", "--seed", "9", "--margin", "5.0",
        ]) == 0
        assert "auto-tuned" not in capsys.readouterr().out

    def test_train_cluster_by_distance(self, capture_path, tmp_path, capsys):
        path = tmp_path / "auto.npz"
        assert main([
            "train", "--vehicle", "sterling", "--input", str(capture_path),
            "--cluster-by-distance", "--output", str(path),
        ]) == 0
        assert "2 clusters" in capsys.readouterr().out

    def test_detect_metrics_out_prometheus(self, model_path, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "1", "--seed", "9", "--margin", "5.0",
            "--metrics-out", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert "# TYPE vprofile_stage_seconds histogram" in text
        for stage in ("extract", "classify", "update"):
            assert f'vprofile_stage_seconds_count{{stage="{stage}"}}' in text
        assert "vprofile_messages_total" in text
        assert 'vprofile_anomalies_total{reason="cluster-mismatch"}' in text
        assert f"metrics -> {metrics}" in capsys.readouterr().err

    def test_detect_metrics_out_json_and_stats(self, model_path, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "1", "--seed", "9", "--margin", "5.0",
            "--metrics-out", str(metrics),
        ]) == 0
        import json

        snapshot = json.loads(metrics.read_text())
        names = {c["name"] for c in snapshot["counters"]}
        assert "vprofile_messages_total" in names
        capsys.readouterr()

        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "vprofile_stage_seconds" in out
        assert "vprofile_messages_total" in out

    def test_stats_roundtrip_prometheus(self, model_path, tmp_path, capsys):
        metrics = tmp_path / "rt.prom"
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "1", "--seed", "9", "--margin", "5.0",
            "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(metrics)]) == 0
        assert "stage" in capsys.readouterr().out

    def test_detect_verbose_streams_events(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--duration", "1", "--seed", "9", "--margin", "5.0", "-v",
        ]) == 0
        import json

        err = capsys.readouterr().err
        events = [json.loads(line) for line in err.splitlines() if line.startswith("{")]
        assert any(e["event"] == "cli.detect" for e in events)

    def test_detect_missing_model_exits_nonzero(self, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", "no-such-model.npz",
            "--duration", "1",
        ]) == 2
        assert "error: model file not found" in capsys.readouterr().err


class TestExperiment:
    def test_suite(self, capsys):
        assert main([
            "experiment", "suite", "--vehicle", "sterling",
            "--duration", "8", "--metric", "mahalanobis",
        ]) == 0
        out = capsys.readouterr().out
        assert "False positive test" in out
        assert "Foreign device imitation test" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestJobsAndCache:
    def test_jobs_flag_capture_matches_serial(self, tmp_path, capsys):
        from repro.acquisition.archive import load_traces

        serial = tmp_path / "serial.npz"
        fanned = tmp_path / "fanned.npz"
        for path, jobs in ((serial, "1"), (fanned, "2")):
            assert main([
                "capture", "--vehicle", "sterling", "--duration", "1",
                "--seed", "5", "--jobs", jobs, "--output", str(path),
            ]) == 0
        capsys.readouterr()
        import numpy as np

        for a, b in zip(load_traces(serial), load_traces(fanned)):
            assert np.array_equal(a.counts, b.counts)
            assert a.start_s == b.start_s

    def test_repro_jobs_env_is_default(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "1",
            "--seed", "5", "--output", str(tmp_path / "env.npz"),
        ]) == 0
        capsys.readouterr()

    def test_bad_repro_jobs_env_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "1",
            "--output", str(tmp_path / "bad.npz"),
        ]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_explicit_jobs_wins_over_bad_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "1",
            "--jobs", "1", "--output", str(tmp_path / "flag.npz"),
        ]) == 0
        capsys.readouterr()

    def test_no_shm_flag_sets_env_and_matches_shm_capture(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.acquisition.archive import load_traces
        from repro.perf.shm import SHM_ENV_VAR

        monkeypatch.delenv(SHM_ENV_VAR, raising=False)
        piped = tmp_path / "piped.npz"
        shared = tmp_path / "shared.npz"
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "1",
            "--seed", "5", "--jobs", "2", "--no-shm", "--output", str(piped),
        ]) == 0
        assert os.environ.get(SHM_ENV_VAR) == "0"
        monkeypatch.delenv(SHM_ENV_VAR, raising=False)
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "1",
            "--seed", "5", "--jobs", "2", "--output", str(shared),
        ]) == 0
        capsys.readouterr()
        import numpy as np

        for a, b in zip(load_traces(piped), load_traces(shared)):
            assert np.array_equal(a.counts, b.counts)

    def test_cache_flow_and_subcommand(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        for attempt in ("miss", "hit"):
            assert main([
                "capture", "--vehicle", "sterling", "--duration", "1",
                "--seed", "5", "--jobs", "1",
                "--cache", "--cache-dir", str(cache_dir),
                "--output", str(tmp_path / f"{attempt}.npz"),
            ]) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert str(cache_dir) in out
        assert "entries: 1" in out

        assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
        assert "removed 1 cache entry" in capsys.readouterr().out
        assert main(["cache", "info", "--dir", str(cache_dir)]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestErrorPaths:
    def test_unknown_vehicle_exits_nonzero(self, capsys):
        # argparse `choices` rejects it before cmd dispatch: exit 2.
        with pytest.raises(SystemExit) as exc_info:
            main(["info", "--vehicle", "delorean"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'delorean'" in err

    def test_unknown_vehicle_backstop_message(self):
        # The lookup itself still guards non-argparse callers.
        from repro.cli import _vehicle
        from repro.errors import DatasetError

        with pytest.raises(DatasetError, match="unknown vehicle 'delorean'"):
            _vehicle("delorean")

    def test_train_missing_input_exits_nonzero(self, tmp_path, capsys):
        assert main([
            "train", "--vehicle", "sterling",
            "--input", str(tmp_path / "nope.npz"),
            "--output", str(tmp_path / "model.npz"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_out_missing_directory_fails_fast(self, tmp_path, capsys):
        # Checked before any capture work, not discovered at exit time.
        assert main([
            "detect", "--vehicle", "sterling", "--model", "irrelevant.npz",
            "--duration", "1",
            "--metrics-out", str(tmp_path / "no" / "dir" / "m.prom"),
        ]) == 2
        assert "metrics output directory does not exist" in capsys.readouterr().err

    def test_metrics_flushed_when_handler_fails(self, tmp_path, capsys):
        # A failing run must still leave its (partial) metrics behind:
        # the post-mortem needs whatever evidence accumulated.
        metrics = tmp_path / "m.prom"
        assert main([
            "detect", "--vehicle", "sterling",
            "--model", str(tmp_path / "missing.npz"),
            "--duration", "1",
            "--metrics-out", str(metrics),
        ]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert f"metrics -> {metrics}" in err
        assert "vprofile_messages_total 0" in metrics.read_text()

    def test_stats_missing_file_exits_nonzero(self, capsys):
        assert main(["stats", "no-such-metrics.prom"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_garbage_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestFleet:
    def test_fleet_bench_smoke(self, capsys):
        assert main([
            "fleet", "bench",
            "--tenants", "2", "--duration", "0.05",
            "--chunk-samples", "16384", "--train-duration", "2",
            "--seed", "5", "--no-rehydration-check",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet gateway load test" in out
        assert "throughput:" in out

    def test_fleet_bench_json_output(self, capsys):
        assert main([
            "fleet", "bench", "--json",
            "--tenants", "1", "--duration", "0.05",
            "--chunk-samples", "16384", "--train-duration", "2",
            "--ws-fraction", "0", "--no-rehydration-check",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tenants"] == 1
        assert report["chunks"] > 0
        assert report["rehydration"] is None
