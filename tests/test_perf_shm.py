"""Zero-copy hand-off: descriptors, arena lifecycle, leak accounting.

These are the unit-level guarantees behind the engine's shared-memory
path: :func:`~repro.perf.shm.pack_arrays` round-trips bytes exactly,
:class:`~repro.perf.shm.SharedArena` closes every mapping it attaches
(and counts the ones it cannot), and the persistent worker pools hand
out one executor per worker count.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

import repro.obs as obs
from repro.errors import PerfError
from repro.perf.parallel import get_pool, shutdown_pools
from repro.perf.shm import (
    SHM_BYTES_METRIC,
    SHM_LEAKED_METRIC,
    SHM_OPEN_METRIC,
    SHM_SEGMENTS_METRIC,
    SharedArena,
    ShmChunk,
    get_arena,
    pack_arrays,
    resolve_shm,
)


class TestPackArrays:
    def test_round_trip_is_byte_identical(self):
        rows = [
            np.arange(17, dtype=np.int32),
            np.array([5], dtype=np.int32),
            np.arange(100, 140, dtype=np.int32),
        ]
        chunk = pack_arrays(rows)
        assert chunk.lengths == (17, 1, 40)
        assert chunk.nbytes == (17 + 1 + 40) * 4
        arena = SharedArena()
        views = arena.attach(chunk)
        assert len(views) == len(rows)
        for row, view in zip(rows, views):
            assert view.dtype == row.dtype
            assert np.array_equal(view, row)
        del views, view
        gc.collect()
        assert arena.open_segments == 0
        # The parked mapping is actually unmapped by the next sweep.
        assert arena.sweep() == 1

    def test_views_are_read_only(self):
        chunk = pack_arrays([np.arange(4, dtype=np.float64)])
        arena = SharedArena()
        (view,) = arena.attach(chunk)
        with pytest.raises(ValueError):
            view[0] = 1.0
        del view
        gc.collect()

    def test_empty_chunk_rejected(self):
        with pytest.raises(PerfError):
            pack_arrays([])

    def test_mixed_dtypes_rejected(self):
        with pytest.raises(PerfError):
            pack_arrays([np.zeros(3, dtype=np.int32), np.zeros(3)])

    def test_multidimensional_rows_rejected(self):
        with pytest.raises(PerfError):
            pack_arrays([np.zeros((2, 2))])


class TestArenaLifecycle:
    def test_attach_counts_segments_and_bytes(self):
        registry = obs.MetricsRegistry()
        chunk = pack_arrays([np.arange(8, dtype=np.int64)])
        arena = SharedArena()
        with obs.use_registry(registry):
            views = arena.attach(chunk)
            assert registry.get(SHM_SEGMENTS_METRIC).value == 1
            assert registry.get(SHM_BYTES_METRIC).value == chunk.nbytes
            assert registry.get(SHM_OPEN_METRIC).value == 1
            del views
            gc.collect()
            assert registry.get(SHM_OPEN_METRIC).value == 0
        assert arena.open_segments == 0

    def test_close_with_live_views_counts_leak(self):
        registry = obs.MetricsRegistry()
        chunk = pack_arrays([np.arange(8, dtype=np.int64)])
        arena = SharedArena()
        with obs.use_registry(registry):
            views = arena.attach(chunk)
            # The buffer is still borrowed: close() cannot unmap it and
            # must account for the leak instead of failing.
            assert arena.close() == 1
            assert registry.get(SHM_LEAKED_METRIC).value == 1
            assert registry.get(SHM_OPEN_METRIC).value == 0
        assert np.array_equal(views[0], np.arange(8, dtype=np.int64))
        del views
        gc.collect()

    def test_close_without_views_is_clean(self):
        chunk = pack_arrays([np.arange(8, dtype=np.int64)])
        arena = SharedArena()
        views = arena.attach(chunk)
        del views
        gc.collect()
        assert arena.close() == 0

    def test_vanished_segment_raises(self):
        missing = ShmChunk(name="repro-no-such-segment", dtype="<i8", lengths=(4,))
        arena = SharedArena()
        with pytest.raises(PerfError, match="vanished"):
            arena.attach(missing)

    def test_double_attach_raises(self):
        # attach() unlinks the name immediately, so a second attach of
        # the same descriptor must fail loudly, not alias pages.
        chunk = pack_arrays([np.arange(8, dtype=np.int64)])
        arena = SharedArena()
        views = arena.attach(chunk)
        with pytest.raises(PerfError):
            arena.attach(chunk)
        del views
        gc.collect()

    def test_process_arena_is_shared(self):
        assert get_arena() is get_arena()


class TestResolveShm:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert resolve_shm(True) is True
        assert resolve_shm(False) is False

    def test_env_values(self, monkeypatch):
        for raw, expected in (
            ("1", True), ("true", True), ("on", True), ("YES", True),
            ("0", False), ("false", False), ("off", False), ("No", False),
        ):
            monkeypatch.setenv("REPRO_SHM", raw)
            assert resolve_shm() is expected

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert resolve_shm() is True

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "maybe")
        with pytest.raises(PerfError):
            resolve_shm()


class TestPersistentPools:
    def test_same_worker_count_reuses_executor(self):
        try:
            assert get_pool(2) is get_pool(2)
            assert get_pool(2) is not get_pool(3)
        finally:
            shutdown_pools()

    def test_shutdown_clears_registry(self):
        first = get_pool(2)
        shutdown_pools()
        try:
            assert get_pool(2) is not first
        finally:
            shutdown_pools()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(PerfError):
            get_pool(0)
