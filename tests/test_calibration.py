"""Fingerprint estimation: the inverse problem must close the loop."""

import numpy as np
import pytest

from repro.acquisition.adc import AdcConfig
from repro.acquisition.sampler import CaptureChain
from repro.analog.calibration import (
    estimate_fingerprint,
    estimate_levels,
    fit_edge_dynamics,
)
from repro.analog.channel import ChannelNoise
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import SynthesisConfig
from repro.can.frame import CanFrame
from repro.can.j1939 import J1939Id
from repro.errors import WaveformError

TRUTH = TransceiverParams(
    name="truth",
    v_dominant=2.05,
    v_recessive=0.015,
    rise=EdgeDynamics(1.8e6, 0.70),
    fall=EdgeDynamics(1.1e6, 1.05),
)


def captures(n, *, noise=None, seed=0, sample_rate=20e6):
    chain = CaptureChain(
        synthesis=SynthesisConfig(sample_rate=sample_rate, max_frame_bits=70),
        adc=AdcConfig(resolution_bits=16),
        noise=noise,
    )
    rng = np.random.default_rng(seed)
    traces = []
    for k in range(n):
        can_id = J1939Id(priority=3, pgn=0xF004, source_address=0x42).to_can_id()
        payload = bytes([(3 * k) % 256, (7 * k) % 256] + [0x6A] * 4)
        frame = CanFrame(can_id=can_id, data=payload)
        traces.append(chain.capture_frame(frame, TRUTH, rng=rng))
    return traces


class TestLevels:
    def test_noiseless_levels_exact(self):
        trace = captures(1)[0]
        estimate = estimate_levels(trace.to_volts())
        assert estimate.v_dominant == pytest.approx(2.05, abs=2e-3)
        assert estimate.v_recessive == pytest.approx(0.015, abs=2e-3)

    def test_noisy_levels_unbiased(self):
        noise = ChannelNoise(white_sigma_v=0.01, baseline_sigma_v=0.0, ar_sigma_v=0.0)
        traces = captures(30, noise=noise, seed=1)
        doms = [estimate_levels(t.to_volts()).v_dominant for t in traces]
        assert np.mean(doms) == pytest.approx(2.05, abs=5e-3)

    def test_flat_input_rejected(self):
        with pytest.raises(WaveformError):
            estimate_levels(np.zeros(1000))


class TestEdgeFit:
    def test_recovers_rise_dynamics(self):
        traces = captures(10)
        fit = fit_edge_dynamics(
            traces, rising=True, v_start=0.015, v_target=2.05
        )
        assert fit.dynamics.natural_freq_hz == pytest.approx(1.8e6, rel=0.10)
        assert fit.dynamics.damping == pytest.approx(0.70, abs=0.08)
        assert fit.n_edges >= 10

    def test_recovers_fall_dynamics(self):
        traces = captures(10)
        fit = fit_edge_dynamics(
            traces, rising=False, v_start=2.05, v_target=0.015
        )
        assert fit.dynamics.natural_freq_hz == pytest.approx(1.1e6, rel=0.12)
        assert fit.dynamics.damping == pytest.approx(1.05, abs=0.15)

    def test_noise_tolerated(self):
        noise = ChannelNoise(white_sigma_v=0.006, baseline_sigma_v=0.008)
        traces = captures(40, noise=noise, seed=2)
        fit = fit_edge_dynamics(
            traces, rising=True, v_start=0.015, v_target=2.05
        )
        assert fit.dynamics.natural_freq_hz == pytest.approx(1.8e6, rel=0.2)

    def test_empty_rejected(self):
        with pytest.raises(WaveformError):
            fit_edge_dynamics([], rising=True, v_start=0.0, v_target=2.0)


class TestRoundTrip:
    def test_fingerprint_round_trip(self):
        """params -> waveform -> params closes within tolerance."""
        traces = captures(15, seed=3)
        estimated = estimate_fingerprint(traces, "estimated")
        assert estimated.v_dominant == pytest.approx(TRUTH.v_dominant, abs=5e-3)
        assert estimated.v_recessive == pytest.approx(TRUTH.v_recessive, abs=5e-3)
        assert estimated.rise.natural_freq_hz == pytest.approx(
            TRUTH.rise.natural_freq_hz, rel=0.15
        )
        assert estimated.fall.natural_freq_hz == pytest.approx(
            TRUTH.fall.natural_freq_hz, rel=0.15
        )

    def test_estimated_fingerprint_is_usable(self):
        """A model trained on the estimate must classify the real ECU."""
        from repro.core.edge_extraction import ExtractionConfig, extract_many
        from repro.core.distances import euclidean_distance

        traces = captures(15, seed=4)
        estimated = estimate_fingerprint(traces, "estimated")
        chain = CaptureChain(
            synthesis=SynthesisConfig(sample_rate=20e6, max_frame_bits=70),
            adc=AdcConfig(resolution_bits=16),
        )
        frame = CanFrame(
            can_id=J1939Id(priority=3, pgn=0xF004, source_address=0x42).to_can_id(),
            data=b"\x01\x02\x6a\x6a\x6a\x6a",
        )
        real = chain.capture_frame(frame, TRUTH)
        synthetic = chain.capture_frame(frame, estimated)
        config = ExtractionConfig.for_trace(real)
        real_set, synth_set = extract_many([real, synthetic], config)
        distance = euclidean_distance(real_set.vector, synth_set.vector)
        swing = 2.05 / 10 * 65535  # full dominant swing in counts
        assert distance < 0.1 * swing  # within 10 % of the swing overall
