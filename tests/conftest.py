"""Shared fixtures: small captures reused across the test modules.

Capture synthesis is the expensive part of the suite, so sessions are
session-scoped and sized to the smallest capture that keeps every
cluster's covariance full rank.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.core.model import VProfileModel
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.vehicles.dataset import capture_session
from repro.vehicles.profiles import sterling_acterra, vehicle_a, vehicle_b


@pytest.fixture(scope="session")
def sterling():
    return sterling_acterra()


@pytest.fixture(scope="session")
def veh_a():
    return vehicle_a()


@pytest.fixture(scope="session")
def veh_b():
    return vehicle_b()


@pytest.fixture(scope="session")
def sterling_session(sterling):
    """~6 s of two-ECU traffic (Figures 2.5/3.1 substrate)."""
    return capture_session(sterling, 6.0, seed=100)


@pytest.fixture(scope="session")
def vehicle_a_session(veh_a):
    """~12 s of Vehicle A traffic (enough for 64-dim covariances)."""
    return capture_session(veh_a, 12.0, seed=101)


@pytest.fixture(scope="session")
def vehicle_b_session(veh_b):
    """~10 s of Vehicle B traffic (32-dim edge sets, 8 ECUs)."""
    return capture_session(veh_b, 10.0, seed=102)


@pytest.fixture(scope="session")
def vehicle_a_edge_sets(vehicle_a_session):
    config = ExtractionConfig.for_trace(vehicle_a_session.traces[0])
    return extract_many(vehicle_a_session.traces, config)


@pytest.fixture(scope="session")
def vehicle_b_edge_sets(vehicle_b_session):
    config = ExtractionConfig.for_trace(vehicle_b_session.traces[0])
    return extract_many(vehicle_b_session.traces, config)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# Streaming-runtime substrate: a reduced-rate two-ECU vehicle keeps the
# sample streams small (8 samples/bit) while exercising every stage.
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def stream_vehicle(sterling):
    return replace(sterling, sample_rate=2_000_000.0)


@pytest.fixture(scope="session")
def stream_train_session(stream_vehicle):
    return capture_session(stream_vehicle, 4.0, seed=300)


@pytest.fixture(scope="session")
def stream_test_session(stream_vehicle):
    return capture_session(stream_vehicle, 2.0, seed=301)


@pytest.fixture(scope="session")
def stream_model_file(stream_vehicle, stream_train_session, tmp_path_factory):
    """Train once per session; tests load fresh copies from disk."""
    pipeline = VProfilePipeline(
        PipelineConfig(margin=5.0, sa_clusters=stream_vehicle.sa_clusters)
    )
    pipeline.train(stream_train_session.traces)
    path = tmp_path_factory.mktemp("stream") / "model.npz"
    pipeline.model.save(path)
    return path, pipeline.extraction


@pytest.fixture()
def stream_pipeline(stream_vehicle, stream_model_file):
    """Factory for independently-mutable trained pipelines."""
    path, extraction = stream_model_file

    def make(**overrides):
        config = PipelineConfig(
            margin=overrides.pop("margin", 5.0),
            sa_clusters=stream_vehicle.sa_clusters,
            **overrides,
        )
        pipeline = VProfilePipeline(config)
        pipeline.load_model(VProfileModel.load(path), extraction)
        return pipeline

    return make
