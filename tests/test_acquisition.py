"""ADC model, voltage traces and the capture chain."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.acquisition.adc import AdcConfig, downsample, reduce_resolution
from repro.acquisition.sampler import CaptureChain
from repro.acquisition.trace import VoltageTrace
from repro.analog.channel import QUIET_CHANNEL
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import SynthesisConfig
from repro.can.frame import CanFrame
from repro.errors import AcquisitionError


class TestAdcConfig:
    def test_full_scale(self):
        assert AdcConfig(resolution_bits=12).full_scale_counts == 4095

    def test_midscale_is_zero_volts(self):
        adc = AdcConfig(resolution_bits=16)
        counts = adc.quantize(np.array([0.0]))
        assert counts[0] == pytest.approx(32768, abs=1)

    def test_paper_threshold_claim(self):
        """1 V on a 16-bit +/-5 V front end sits near the paper's 38,000."""
        adc = AdcConfig(resolution_bits=16)
        assert 38_000 <= adc.volts_to_counts(1.0) <= 40_000

    def test_clipping(self):
        adc = AdcConfig(resolution_bits=8)
        counts = adc.quantize(np.array([-100.0, 100.0]))
        assert counts[0] == 0 and counts[1] == 255

    @given(st.floats(min_value=-4.9, max_value=4.9))
    def test_quantise_round_trip_within_lsb(self, volts):
        adc = AdcConfig(resolution_bits=16)
        recovered = adc.to_volts(adc.quantize(np.array([volts])))[0]
        assert abs(recovered - volts) <= adc.volts_per_count

    def test_rejects_bad_resolution(self):
        with pytest.raises(AcquisitionError):
            AdcConfig(resolution_bits=1)

    def test_rejects_inverted_range(self):
        with pytest.raises(AcquisitionError):
            AdcConfig(v_min=1.0, v_max=-1.0)


class TestReduction:
    def test_reduce_resolution_drops_lsbs(self):
        counts = np.array([0b1111_1111, 0b1010_1010])
        assert list(reduce_resolution(counts, 8, 4)) == [0b1111, 0b1010]

    def test_reduce_to_same_is_identity(self):
        counts = np.array([17, 42])
        assert list(reduce_resolution(counts, 8, 8)) == [17, 42]

    def test_cannot_raise_resolution(self):
        with pytest.raises(AcquisitionError):
            reduce_resolution(np.array([1]), 8, 12)

    def test_downsample(self):
        assert list(downsample(np.arange(10), 3)) == [0, 3, 6, 9]

    def test_downsample_identity(self):
        assert list(downsample(np.arange(5), 1)) == [0, 1, 2, 3, 4]

    def test_downsample_invalid(self):
        with pytest.raises(AcquisitionError):
            downsample(np.arange(5), 0)


class TestVoltageTrace:
    def make(self, n=100, fs=10e6, bits=12):
        return VoltageTrace(
            counts=np.arange(n, dtype=np.int32),
            sample_rate=fs,
            resolution_bits=bits,
        )

    def test_len_and_duration(self):
        trace = self.make(n=50)
        assert len(trace) == 50
        assert trace.duration_s == pytest.approx(5e-6)

    def test_samples_per_bit(self):
        assert self.make().samples_per_bit == 40.0

    def test_downsampled(self):
        reduced = self.make(n=100).downsampled(2)
        assert len(reduced) == 50
        assert reduced.sample_rate == 5e6
        assert reduced.resolution_bits == 12

    def test_at_resolution(self):
        reduced = self.make(bits=12).at_resolution(10)
        assert reduced.resolution_bits == 10
        assert reduced.counts.max() == self.make().counts.max() >> 2

    def test_rejects_2d(self):
        with pytest.raises(AcquisitionError):
            VoltageTrace(counts=np.zeros((2, 2)), sample_rate=1e6, resolution_bits=12)

    def test_to_volts_checks_resolution(self):
        with pytest.raises(AcquisitionError):
            self.make(bits=12).to_volts(AdcConfig(resolution_bits=16))

    def test_to_volts_default(self):
        trace = self.make(bits=16)
        volts = trace.to_volts()
        assert volts[0] == pytest.approx(-5.0)


class TestCaptureChain:
    def make_chain(self):
        return CaptureChain(
            synthesis=SynthesisConfig(max_frame_bits=50),
            adc=AdcConfig(resolution_bits=12),
            noise=QUIET_CHANNEL,
        )

    def test_capture_records_metadata(self):
        trx = TransceiverParams(
            name="E", v_dominant=2.0, v_recessive=0.0,
            rise=EdgeDynamics(2e6, 0.7), fall=EdgeDynamics(1.1e6, 1.05),
        )
        frame = CanFrame(can_id=0x18F00455, data=b"\x01")
        trace = self.make_chain().capture_frame(
            frame, trx, rng=np.random.default_rng(0), metadata={"tag": 1}
        )
        assert trace.metadata["sender"] == "E"
        assert trace.metadata["frame"] == frame
        assert trace.metadata["tag"] == 1
        assert trace.resolution_bits == 12
        assert trace.counts.dtype == np.int32
