"""Algorithm 4: online model updates."""

import numpy as np
import pytest

from repro.core.edge_extraction import ExtractedEdgeSet
from repro.core.model import Metric
from repro.core.online_update import OnlineUpdater
from repro.core.training import TrainingData, train_model
from repro.errors import DetectionError, TrainingError


def make_model(rng, dim=4, n=150):
    vectors, sas = [], []
    for sa, center in ((0x10, 0.0), (0x20, 8.0)):
        vectors.append(center + rng.normal(scale=0.6, size=(n, dim)))
        sas.extend([sa] * n)
    data = TrainingData(np.concatenate(vectors), np.array(sas))
    return train_model(
        data, metric=Metric.MAHALANOBIS, sa_clusters={0x10: "A", 0x20: "B"}
    ), data


def edge_set(vector, sa, sender="A"):
    return ExtractedEdgeSet(
        source_address=sa, vector=np.asarray(vector, float), metadata={"sender": sender}
    )


class TestUpdate:
    def test_matches_batch_retraining(self, rng):
        """Streaming updates reproduce batch statistics (eq. 5.1)."""
        model, data = make_model(rng)
        new_points = rng.normal(scale=0.6, size=(30, 4))
        updater = OnlineUpdater(model)
        updater.update([edge_set(p, 0x10) for p in new_points])

        cluster_a_rows = data.source_addresses == 0x10
        combined = np.concatenate([data.vectors[cluster_a_rows], new_points])
        cluster = model.cluster_named("A")
        assert cluster.count == combined.shape[0]
        assert np.allclose(cluster.mean, combined.mean(axis=0))
        centered = combined - combined.mean(axis=0)
        expected_cov = centered.T @ centered / combined.shape[0]
        assert np.allclose(cluster.covariance, expected_cov, atol=1e-10)

    def test_inverse_tracks_covariance(self, rng):
        model, _ = make_model(rng)
        updater = OnlineUpdater(model)
        updater.update([edge_set(rng.normal(size=4), 0x10) for _ in range(25)])
        cluster = model.cluster_named("A")
        assert np.allclose(
            cluster.inv_covariance,
            np.linalg.inv(cluster.covariance),
            rtol=1e-6,
            atol=1e-9,
        )

    def test_max_distance_monotone(self, rng):
        model, _ = make_model(rng)
        before = model.cluster_named("A").max_distance
        updater = OnlineUpdater(model)
        updater.update([edge_set(np.full(4, 3.0), 0x10)])  # clear outlier
        assert model.cluster_named("A").max_distance >= before

    def test_adapts_to_drift(self, rng):
        """Updating with drifted data pulls the mean toward the drift."""
        model, _ = make_model(rng)
        drifted = 0.5 + rng.normal(scale=0.6, size=(200, 4))
        updater = OnlineUpdater(model)
        updater.update([edge_set(p, 0x10) for p in drifted])
        assert np.all(model.cluster_named("A").mean > 0.1)

    def test_report_counts(self, rng):
        model, _ = make_model(rng)
        updater = OnlineUpdater(model)
        report = updater.update(
            [edge_set(np.zeros(4), 0x10), edge_set(np.zeros(4), 0x99)]
        )
        assert report.updated == {"A": 1}
        assert report.skipped_unknown_sa == 1

    def test_retrain_bound(self, rng):
        model, _ = make_model(rng, n=150)
        updater = OnlineUpdater(model, retrain_bound=152)
        report = updater.update([edge_set(np.zeros(4), 0x10) for _ in range(5)])
        assert report.updated["A"] == 2  # 150 -> 152, then saturated
        assert "A" in report.saturated
        assert updater.needs_retrain(model.sa_to_cluster[0x10])

    def test_requires_mahalanobis(self, rng):
        data = TrainingData(rng.normal(size=(100, 3)), np.full(100, 0x10))
        euclid = train_model(data, metric="euclidean", sa_clusters={0x10: "A"})
        with pytest.raises(DetectionError):
            OnlineUpdater(euclid)

    def test_shape_mismatch(self, rng):
        model, _ = make_model(rng)
        with pytest.raises(TrainingError):
            OnlineUpdater(model).update([edge_set(np.zeros(7), 0x10)])

    def test_bad_bound(self, rng):
        model, _ = make_model(rng)
        with pytest.raises(TrainingError):
            OnlineUpdater(model, retrain_bound=1)
