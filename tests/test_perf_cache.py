"""Content-addressed capture cache: keys, round trips, LRU, counters."""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

import repro.obs as obs
from repro.analog.environment import NOMINAL_ENVIRONMENT
from repro.errors import CacheError
from repro.perf.cache import (
    CACHE_ENV_VAR,
    CaptureCache,
    capture_cache_key,
    default_cache_root,
    stable_digest,
)
from repro.perf.engine import capture_session_engine


def _key(vehicle, **overrides):
    params = dict(
        duration_s=1.0,
        env=NOMINAL_ENVIRONMENT,
        seed=7,
        truncate_bits=60,
    )
    params.update(overrides)
    return capture_cache_key(vehicle, **params)


class TestCacheKey:
    def test_key_is_hex_digest(self, stream_vehicle):
        key = _key(stream_vehicle)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_key_is_stable(self, stream_vehicle):
        assert _key(stream_vehicle) == _key(stream_vehicle)

    def test_key_discriminates_inputs(self, stream_vehicle, sterling):
        base = _key(stream_vehicle)
        assert _key(stream_vehicle, seed=8) != base
        assert _key(stream_vehicle, duration_s=2.0) != base
        assert _key(stream_vehicle, truncate_bits=None) != base
        assert _key(sterling) != base
        warm = dataclasses.replace(NOMINAL_ENVIRONMENT, temperature_c=55.0)
        assert _key(stream_vehicle, env=warm) != base

    def test_stable_digest_rejects_unhashable(self):
        with pytest.raises(CacheError):
            stable_digest(object())

    def test_digest_tags_dataclass_types(self):
        @dataclasses.dataclass(frozen=True)
        class A:
            x: int = 1

        @dataclasses.dataclass(frozen=True)
        class B:
            x: int = 1

        assert stable_digest(A()) != stable_digest(B())


class TestDefaultRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "override"))
        assert default_cache_root() == tmp_path / "override"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        root = default_cache_root()
        assert root.parts[-3:] == (".cache", "repro", "captures")


class TestCaptureCache:
    def test_round_trip_is_byte_identical(self, stream_vehicle, tmp_path):
        cache = CaptureCache(tmp_path)
        fresh = capture_session_engine(
            stream_vehicle, 1.0, seed=7, jobs=1, cache=cache
        )
        assert cache.info()["entries"] == 1
        hit = capture_session_engine(
            stream_vehicle, 1.0, seed=7, jobs=1, cache=cache
        )
        assert len(hit.traces) == len(fresh.traces)
        for a, b in zip(fresh.traces, hit.traces):
            assert np.array_equal(a.counts, b.counts)
            assert a.start_s == b.start_s
            assert a.metadata["sender"] == b.metadata["sender"]
            assert a.metadata["frame"] == b.metadata["frame"]

    def test_hit_miss_counters(self, stream_vehicle, tmp_path):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            cache = CaptureCache(tmp_path)
            capture_session_engine(stream_vehicle, 1.0, seed=7, cache=cache)
            capture_session_engine(stream_vehicle, 1.0, seed=7, cache=cache)
        assert registry.get("vprofile_cache_misses_total").value == 1
        assert registry.get("vprofile_cache_hits_total").value == 1

    def test_corrupt_entry_is_evicted_and_missed(self, tmp_path):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            cache = CaptureCache(tmp_path)
            key = "ab" * 32
            cache.path_for(key).write_bytes(b"not an archive")
            assert cache.get(key) is None
        assert not cache.path_for(key).exists()
        assert registry.get("vprofile_cache_evictions_total").value == 1
        assert registry.get("vprofile_cache_misses_total").value == 1

    def test_lru_eviction(self, stream_train_session, tmp_path):
        traces = stream_train_session.traces[:2]
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            cache = CaptureCache(tmp_path, max_entries=2)
            cache.put("aa" * 32, traces)
            cache.put("bb" * 32, traces)
            # Make "aa" the most recently used, then overflow.
            old = cache.path_for("aa" * 32).stat().st_mtime
            os.utime(cache.path_for("aa" * 32), (old + 10, old + 10))
            os.utime(cache.path_for("bb" * 32), (old - 10, old - 10))
            cache.put("cc" * 32, traces)
        assert cache.path_for("aa" * 32).exists()
        assert not cache.path_for("bb" * 32).exists()
        assert registry.get("vprofile_cache_evictions_total").value == 1

    def test_info_and_clear(self, stream_train_session, tmp_path):
        cache = CaptureCache(tmp_path)
        cache.put("aa" * 32, stream_train_session.traces[:2])
        info = cache.info()
        assert info["root"] == str(tmp_path)
        assert info["entries"] == 1
        assert info["total_bytes"] > 0
        assert cache.clear() == 1
        assert cache.info()["entries"] == 0

    def test_rejects_bad_max_entries(self, tmp_path):
        with pytest.raises(CacheError):
            CaptureCache(tmp_path, max_entries=0)
