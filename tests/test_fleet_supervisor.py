"""Residency budget: LRU eviction, rehydration, drain, adoption."""

import asyncio

import pytest

from repro.core.model import VProfileModel
from repro.errors import FleetError
from repro.fleet.supervisor import (
    EVICTIONS_METRIC,
    REHYDRATIONS_METRIC,
    TENANTS_METRIC,
    FleetSupervisor,
)
from repro.fleet.tenant import CaptureParams, TenantEngine
from repro.obs.registry import MetricsRegistry


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def make_engine(stream_vehicle, stream_model_file):
    path, _extraction = stream_model_file

    def make(tenant_id):
        return TenantEngine(
            tenant_id,
            vehicle="sterling",
            model=VProfileModel.load(path),
            params=CaptureParams.for_vehicle(stream_vehicle),
        )

    return make


@pytest.fixture
def registry():
    return MetricsRegistry()


def gauge_value(registry, state):
    instrument = registry.get(TENANTS_METRIC, state=state)
    return None if instrument is None else instrument.value


class TestRegistration:
    def test_register_and_lookup(self, registry, make_engine):
        async def go():
            supervisor = FleetSupervisor(registry)
            record = await supervisor.register("v1", make_engine("v1"))
            assert supervisor.record("v1") is record
            assert record.resident and not record.evicted
            return supervisor.stats()

        stats = run(go())
        assert stats["tenants"] == 1
        assert stats["resident"] == 1
        assert gauge_value(registry, "resident") == 1

    def test_duplicate_register_raises(self, registry, make_engine):
        async def go():
            supervisor = FleetSupervisor(registry)
            await supervisor.register("v1", make_engine("v1"))
            with pytest.raises(FleetError, match="already registered"):
                await supervisor.register("v1", make_engine("v1"))

        run(go())

    def test_unknown_tenant_raises(self, registry):
        supervisor = FleetSupervisor(registry)
        with pytest.raises(FleetError, match="unknown tenant"):
            supervisor.record("ghost")

    def test_max_resident_must_be_positive(self, registry):
        with pytest.raises(FleetError, match="max_resident"):
            FleetSupervisor(registry, max_resident=0)


class TestEviction:
    def test_register_over_budget_evicts_lru(
        self, registry, make_engine, tmp_path
    ):
        async def go():
            supervisor = FleetSupervisor(
                registry, state_dir=tmp_path, max_resident=2
            )
            first = await supervisor.register("v1", make_engine("v1"))
            await supervisor.register("v2", make_engine("v2"))
            first.touch()  # v2 becomes least recently active
            await supervisor.register("v3", make_engine("v3"))
            return supervisor

        supervisor = run(go())
        assert supervisor.record("v2").evicted
        assert supervisor.record("v1").resident
        assert supervisor.record("v3").resident
        assert supervisor.evictions == 1
        assert (tmp_path / "v2" / "tenant.json").is_file()
        assert gauge_value(registry, "evicted") == 1
        assert registry.get(EVICTIONS_METRIC).value == 1

    def test_no_state_dir_means_no_eviction(self, registry, make_engine):
        async def go():
            supervisor = FleetSupervisor(registry, max_resident=1)
            for name in ("v1", "v2", "v3"):
                await supervisor.register(name, make_engine(name))
            return supervisor.stats()

        stats = run(go())
        assert stats["resident"] == 3
        assert stats["evictions"] == 0

    def test_rehydration_restores_engine(self, registry, make_engine, tmp_path):
        async def go():
            supervisor = FleetSupervisor(registry, state_dir=tmp_path)
            record = await supervisor.register("v1", make_engine("v1"))
            await supervisor.evict(record)
            assert not record.resident
            async with record.lock:
                engine = await supervisor.resident_engine(record)
            assert engine.tenant_id == "v1"
            assert record.resident and not record.evicted
            return supervisor

        supervisor = run(go())
        assert supervisor.rehydrations == 1
        assert registry.get(REHYDRATIONS_METRIC).value == 1

    def test_evict_without_state_dir_raises(self, registry, make_engine):
        async def go():
            supervisor = FleetSupervisor(registry)
            record = await supervisor.register("v1", make_engine("v1"))
            with pytest.raises(FleetError, match="state directory"):
                await supervisor.evict(record)

        run(go())

    def test_evicting_twice_is_a_noop(self, registry, make_engine, tmp_path):
        async def go():
            supervisor = FleetSupervisor(registry, state_dir=tmp_path)
            record = await supervisor.register("v1", make_engine("v1"))
            await supervisor.evict(record)
            await supervisor.evict(record)
            return supervisor.evictions

        assert run(go()) == 1


class TestLifecycle:
    def test_drain_flushes_every_resident(self, registry, make_engine, tmp_path):
        async def go():
            supervisor = FleetSupervisor(registry, state_dir=tmp_path)
            for name in ("v1", "v2"):
                await supervisor.register(name, make_engine(name))
            first = await supervisor.drain()
            second = await supervisor.drain()
            return first, second, supervisor.stats()

        first, second, stats = run(go())
        assert first == 2 and second == 0
        assert stats["resident"] == 0
        assert {p.name for p in tmp_path.iterdir()} == {"v1", "v2"}

    def test_adopt_checkpoints_relists_drained_fleet(
        self, registry, make_engine, tmp_path
    ):
        async def go():
            old = FleetSupervisor(registry, state_dir=tmp_path)
            await old.register("v1", make_engine("v1"))
            await old.drain()
            fresh = FleetSupervisor(registry, state_dir=tmp_path)
            adopted = fresh.adopt_checkpoints()
            assert fresh.adopt_checkpoints() == []  # idempotent
            record = fresh.record("v1")
            async with record.lock:
                engine = await fresh.resident_engine(record)
            return adopted, engine.tenant_id

        adopted, tenant_id = run(go())
        assert adopted == ["v1"]
        assert tenant_id == "v1"

    def test_remove_forgets_tenant_and_checkpoint(
        self, registry, make_engine, tmp_path
    ):
        async def go():
            supervisor = FleetSupervisor(registry, state_dir=tmp_path)
            record = await supervisor.register("v1", make_engine("v1"))
            await supervisor.evict(record)
            assert (tmp_path / "v1").exists()
            await supervisor.remove("v1")
            return supervisor

        supervisor = run(go())
        assert not (tmp_path / "v1").exists()
        with pytest.raises(FleetError, match="unknown tenant"):
            supervisor.record("v1")
