"""Per-tenant engine and wire codec: chunks in, verdicts out, checkpoints."""

import base64
import json

import numpy as np
import pytest

from repro.acquisition.segmentation import assemble_stream
from repro.acquisition.trace import VoltageTrace
from repro.core.model import VProfileModel
from repro.errors import FleetError
from repro.fleet.tenant import (
    CaptureParams,
    TenantEngine,
    builtin_vehicle,
    decode_chunk,
    encode_chunk,
    model_from_b64,
    model_to_b64,
)
from repro.stream import ReplaySource


@pytest.fixture(scope="module")
def fleet_chunks(stream_test_session):
    stream = assemble_stream(stream_test_session.traces)
    short = VoltageTrace(
        counts=stream.counts[:60_000],
        sample_rate=stream.sample_rate,
        resolution_bits=stream.resolution_bits,
        bitrate=stream.bitrate,
        start_s=stream.start_s,
        metadata=dict(stream.metadata),
    )
    return list(ReplaySource(short, 8192).chunks())


@pytest.fixture
def engine(stream_vehicle, stream_model_file):
    path, _extraction = stream_model_file
    return TenantEngine(
        "t0",
        vehicle="sterling",
        model=VProfileModel.load(path),
        params=CaptureParams.for_vehicle(stream_vehicle),
        margin=5.0,
    )


# ----------------------------------------------------------------------
# Vehicles and capture parameters
# ----------------------------------------------------------------------
class TestRegistration:
    def test_builtin_vehicles_and_rate_override(self):
        vehicle = builtin_vehicle("sterling", 2_000_000.0)
        assert vehicle.sample_rate == 2_000_000.0
        assert builtin_vehicle("a").sample_rate != 2_000_000.0

    def test_unknown_vehicle_raises(self):
        with pytest.raises(FleetError, match="unknown vehicle"):
            builtin_vehicle("tractor")

    def test_capture_params_roundtrip(self, stream_vehicle):
        params = CaptureParams.for_vehicle(stream_vehicle)
        assert CaptureParams.from_payload(params.to_payload()) == params

    def test_capture_params_bad_payload_raises(self):
        with pytest.raises(FleetError, match="capture parameters"):
            CaptureParams.from_payload({"sample_rate": "fast"})


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestChunkCodec:
    def test_roundtrip_is_byte_identical(self, fleet_chunks, stream_vehicle):
        params = CaptureParams.for_vehicle(stream_vehicle)
        chunk = fleet_chunks[0]
        decoded = decode_chunk(encode_chunk(chunk), params)
        assert decoded.seq == chunk.seq
        assert decoded.start_s == chunk.start_s
        assert decoded.counts.dtype == chunk.counts.dtype
        np.testing.assert_array_equal(decoded.counts, chunk.counts)
        assert decoded.sample_rate == params.sample_rate

    def test_payload_is_json_serialisable(self, fleet_chunks):
        payload = encode_chunk(fleet_chunks[0])
        assert json.loads(json.dumps(payload)) == payload

    def test_rejects_unlisted_dtype(self, stream_vehicle):
        params = CaptureParams.for_vehicle(stream_vehicle)
        raw = base64.b64encode(np.zeros(4).tobytes()).decode()
        payload = {"seq": 0, "start_s": 0.0, "dtype": "float64", "counts": raw}
        with pytest.raises(FleetError, match="unsupported sample dtype"):
            decode_chunk(payload, params)

    def test_rejects_misaligned_byte_length(self, stream_vehicle):
        params = CaptureParams.for_vehicle(stream_vehicle)
        raw = base64.b64encode(b"\x00" * 7).decode()
        payload = {"seq": 0, "start_s": 0.0, "dtype": "int32", "counts": raw}
        with pytest.raises(FleetError, match="not a multiple"):
            decode_chunk(payload, params)

    def test_rejects_bad_base64_and_missing_keys(self, stream_vehicle):
        params = CaptureParams.for_vehicle(stream_vehicle)
        with pytest.raises(FleetError, match="malformed chunk"):
            decode_chunk({"seq": 0, "start_s": 0.0, "counts": "!!!"}, params)
        with pytest.raises(FleetError, match="malformed chunk"):
            decode_chunk({"seq": 0}, params)

    def test_model_b64_roundtrip(self, stream_model_file):
        path, _ = stream_model_file
        model = VProfileModel.load(path)
        restored = model_from_b64(model_to_b64(model))
        assert restored.sa_to_cluster == model.sa_to_cluster
        assert len(restored.clusters) == len(model.clusters)
        np.testing.assert_array_equal(
            restored.clusters[0].mean, model.clusters[0].mean
        )

    def test_model_b64_garbage_raises(self):
        with pytest.raises(FleetError, match="cannot decode"):
            model_from_b64(base64.b64encode(b"junk").decode())


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class TestTenantEngine:
    def test_processes_chunks_and_counts(self, engine, fleet_chunks):
        verdicts = []
        for chunk in fleet_chunks:
            verdicts.extend(engine.process_chunk(chunk))
        assert verdicts, "the test stream must contain classifiable frames"
        assert engine.frames == len(verdicts)
        assert engine.chunks == len(fleet_chunks)
        assert [v["seq"] for v in verdicts] == list(range(len(verdicts)))
        assert {v["verdict"] for v in verdicts} <= {"ok", "anomaly"}

    def test_out_of_order_chunk_raises(self, engine, fleet_chunks):
        engine.process_chunk(fleet_chunks[0])
        with pytest.raises(FleetError, match=r"out-of-order chunk 0 \(expected 1\)"):
            engine.process_chunk(fleet_chunks[0])

    def test_status_payload_shape(self, engine, fleet_chunks):
        engine.process_chunk(fleet_chunks[0])
        status = engine.status()
        assert status["tenant"] == "t0"
        assert status["chunks"] == 1
        assert status["samples"] == len(fleet_chunks[0])
        for key in ("frames", "anomalies", "sample_rate", "next_chunk"):
            assert key in status

    def test_health_report_available_for_mahalanobis(self, engine, fleet_chunks):
        assert engine.health is not None
        for chunk in fleet_chunks:
            engine.process_chunk(chunk)
        report = engine.health_report()
        assert report["overall"] != "unavailable"
        assert report["sources"]

    def test_verdict_ring_is_bounded(
        self, stream_vehicle, stream_model_file, fleet_chunks
    ):
        path, _ = stream_model_file
        engine = TenantEngine(
            "ring",
            vehicle="sterling",
            model=VProfileModel.load(path),
            params=CaptureParams.for_vehicle(stream_vehicle),
            verdict_ring=3,
        )
        total = 0
        for chunk in fleet_chunks:
            total += len(engine.process_chunk(chunk))
        assert total > 3
        recent = engine.recent_verdicts(since=0, limit=100)
        assert len(recent) == 3
        assert [v["seq"] for v in recent] == [total - 3, total - 2, total - 1]
        assert engine.recent_verdicts(since=total - 1, limit=100)[0]["seq"] == total - 1
        assert engine.recent_verdicts(since=0, limit=1) == recent[:1]

    def test_checkpoint_before_first_chunk(self, engine, fleet_chunks, tmp_path):
        engine.checkpoint(tmp_path / "t0")
        restored = TenantEngine.rehydrate(tmp_path / "t0")
        assert restored.next_chunk == 0
        assert restored.process_chunk(fleet_chunks[0]) == engine.process_chunk(
            fleet_chunks[0]
        )

    def test_checkpoint_resume_continues_counters(
        self, engine, fleet_chunks, tmp_path
    ):
        for chunk in fleet_chunks[:2]:
            engine.process_chunk(chunk)
        engine.checkpoint(tmp_path / "t0")
        restored = TenantEngine.rehydrate(tmp_path / "t0")
        assert restored.next_chunk == engine.next_chunk
        assert restored.next_seq == engine.next_seq
        assert restored.samples == engine.samples
        rest = []
        for chunk in fleet_chunks[2:]:
            rest.extend(restored.process_chunk(chunk))
        expected = []
        for chunk in fleet_chunks[2:]:
            expected.extend(engine.process_chunk(chunk))
        assert json.dumps(rest, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_rehydrate_rejects_non_checkpoint(self, tmp_path):
        with pytest.raises(FleetError, match="not a tenant checkpoint"):
            TenantEngine.rehydrate(tmp_path)
