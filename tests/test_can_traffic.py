"""Periodic traffic generation."""

import numpy as np
import pytest

from repro.can.j1939 import J1939Id
from repro.can.traffic import MessageSchedule, TrafficGenerator
from repro.errors import CanEncodingError


def schedule(period=0.01, phase=0.0, jitter=0.0, sa=0x10, dlc=8):
    return MessageSchedule(
        j1939_id=J1939Id(priority=6, pgn=0xFEF1, source_address=sa),
        period_s=period,
        dlc=dlc,
        phase_s=phase,
        jitter_s=jitter,
    )


class TestMessageSchedule:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(CanEncodingError):
            schedule(period=0.0)

    def test_rejects_bad_dlc(self):
        with pytest.raises(CanEncodingError):
            schedule(dlc=9)

    def test_rejects_negative_jitter(self):
        with pytest.raises(CanEncodingError):
            schedule(jitter=-1.0)


class TestTrafficGenerator:
    def test_count_matches_period(self):
        gen = TrafficGenerator(schedules=[("e", schedule(period=0.01))], seed=1)
        assert len(gen.frames_until(1.0)) == 100

    def test_phase_offsets_first_release(self):
        gen = TrafficGenerator(schedules=[("e", schedule(phase=0.005))], seed=1)
        frames = gen.frames_until(0.1)
        assert frames[0].release_s == pytest.approx(0.005)

    def test_jitter_bounded(self):
        jitter = 0.002
        gen = TrafficGenerator(schedules=[("e", schedule(jitter=jitter))], seed=1)
        for k, scheduled in enumerate(gen.frames_until(0.5)):
            nominal = k * 0.01
            assert nominal <= scheduled.release_s <= nominal + jitter + 1e-12

    def test_releases_sorted(self):
        gen = TrafficGenerator(
            schedules=[("a", schedule(sa=0x10)), ("b", schedule(period=0.007, sa=0x20))],
            seed=2,
        )
        times = [s.release_s for s in gen.frames_until(0.3)]
        assert times == sorted(times)

    def test_horizon_excluded(self):
        gen = TrafficGenerator(schedules=[("e", schedule())], seed=1)
        assert all(s.release_s < 0.05 for s in gen.frames_until(0.05))

    def test_payloads_vary(self):
        gen = TrafficGenerator(schedules=[("e", schedule())], seed=1)
        payloads = {s.frame.data for s in gen.frames_until(0.3)}
        assert len(payloads) > 10

    def test_sender_labels_preserved(self):
        gen = TrafficGenerator(
            schedules=[("alpha", schedule(sa=0x10)), ("beta", schedule(sa=0x20))],
            seed=2,
        )
        senders = {s.sender for s in gen.frames_until(0.1)}
        assert senders == {"alpha", "beta"}

    def test_frame_ids_match_schedule(self):
        sched = schedule(sa=0x42)
        gen = TrafficGenerator(schedules=[("e", sched)], seed=1)
        for scheduled in gen.frames_until(0.1):
            assert scheduled.frame.can_id == sched.j1939_id.to_can_id()

    def test_deterministic_with_seed(self):
        a = TrafficGenerator(schedules=[("e", schedule(jitter=0.001))], seed=9)
        b = TrafficGenerator(schedules=[("e", schedule(jitter=0.001))], seed=9)
        times_a = [s.release_s for s in a.frames_until(0.2)]
        times_b = [s.release_s for s in b.frames_until(0.2)]
        assert np.allclose(times_a, times_b)

    def test_zero_dlc(self):
        gen = TrafficGenerator(schedules=[("e", schedule(dlc=0))], seed=1)
        assert gen.frames_until(0.05)[0].frame.data == b""
