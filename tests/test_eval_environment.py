"""Environmental experiments (Tables 4.8/4.9, Figures 4.6-4.8) at small scale."""

import pytest

from repro.eval.environment import temperature_experiment, voltage_experiment


@pytest.fixture(scope="module")
def temp_result(veh_a):
    return temperature_experiment(
        veh_a,
        bin_edges=(-5.0, 0.0, 10.0, 25.0),
        trials=1,
        duration_per_capture_s=4.0,
        seed=33,
    )


@pytest.fixture(scope="module")
def volt_result(veh_a):
    return voltage_experiment(
        veh_a, trials=2, duration_per_capture_s=1.5, seed=34
    )


class TestTemperature:
    def test_false_positive_rate_low(self, temp_result):
        assert temp_result.confusion.false_positive_rate < 0.02

    def test_no_attacks_in_experiment(self, temp_result):
        assert temp_result.confusion.true_positive == 0
        assert temp_result.confusion.false_negative == 0

    def test_warm_training_data_reduces_false_positives(self, temp_result):
        assert (
            temp_result.confusion_with_warm_data.false_positive
            <= temp_result.confusion.false_positive
        )

    def test_drift_grows_with_temperature(self, temp_result):
        """Figure 4.6: distances increase with temperature for ECU0."""
        ecu0 = [p for p in temp_result.drift if p.ecu == "ECU0"]
        assert len(ecu0) == 2  # two warm bins
        assert ecu0[-1].percent_delta > ecu0[0].percent_delta
        assert ecu0[-1].percent_delta > 3.0

    def test_high_coefficient_ecus_drift_most(self, temp_result):
        """ECUs 0 and 2 drift drastically, the others subtly."""
        hottest = {}
        for p in temp_result.drift:
            hottest[p.ecu] = p.percent_delta  # last bin wins
        ranked = sorted(hottest, key=hottest.get, reverse=True)
        assert set(ranked[:2]) == {"ECU0", "ECU2"}

    def test_confidence_intervals_positive(self, temp_result):
        assert all(p.ci_99 > 0 for p in temp_result.drift)


class TestVoltage:
    def test_detection_unaffected(self, volt_result):
        """Table 4.9: high-power loads cause (almost) no false alarms."""
        assert volt_result.confusion.false_positive_rate < 0.005

    def test_drift_small_for_all_events(self, volt_result):
        """Figure 4.7: percent deltas stay within a few percent."""
        assert all(abs(p.percent_delta) < 10.0 for p in volt_result.event_drift)

    def test_lights_ac_drift_exceeds_single_loads(self, volt_result):
        """The largest drift occurs with lights + A/C (Section 4.4.2)."""
        by_event = {}
        for p in volt_result.event_drift:
            by_event.setdefault(p.condition, []).append(p.percent_delta)
        mean = {k: sum(v) / len(v) for k, v in by_event.items()}
        assert mean["lights+ac"] >= mean["lights"] - 0.5
        assert mean["lights+ac"] >= mean["ac"] - 0.5

    def test_trial_drift_reported(self, volt_result):
        conditions = {p.condition for p in volt_result.trial_drift}
        assert conditions == {"trial 2"}
