"""ASCII chart rendering."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.eval.environment import DriftPoint
from repro.eval.plotting import ascii_bars, ascii_chart, drift_bars


class TestAsciiChart:
    def test_single_series(self):
        chart = ascii_chart(np.sin(np.linspace(0, 6, 80)), width=60, height=10)
        lines = chart.splitlines()
        assert len(lines) == 11  # 10 rows + axis
        assert "*" in chart

    def test_extremes_labelled(self):
        chart = ascii_chart([0.0, 5.0, 2.5], width=20, height=5)
        assert "5" in chart.splitlines()[0]
        assert "0" in chart.splitlines()[4]

    def test_overlay_legend(self):
        chart = ascii_chart(
            {"ECU0": [1, 2, 3], "ECU1": [3, 2, 1]}, width=20, height=5
        )
        assert "* ECU0" in chart
        assert "o ECU1" in chart

    def test_title(self):
        chart = ascii_chart([1, 2], title="Figure X", width=10, height=4)
        assert chart.splitlines()[0] == "Figure X"

    def test_constant_series(self):
        chart = ascii_chart([2.0, 2.0, 2.0], width=12, height=4)
        assert "*" in chart

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_chart([])

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            ascii_chart([1, 2], width=4, height=2)


class TestAsciiBars:
    def test_positive_and_negative(self):
        chart = ascii_bars({"up": 10.0, "down": -5.0}, width=20, unit="%")
        lines = chart.splitlines()
        assert "+10.00%" in lines[0]
        assert "-5.00%" in lines[1]
        up_bar = lines[0].split("|")[1]
        down_bar = lines[1].split("|")[0]
        assert up_bar.count("#") == 10
        assert down_bar.count("#") == 5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_bars({})


class TestDriftBars:
    def points(self):
        return [
            DriftPoint("ECU0", "20..25 degC", 20.0, 1.0, 100),
            DriftPoint("ECU1", "20..25 degC", 2.0, 1.0, 100),
            DriftPoint("ECU0", "0..5 degC", 1.0, 1.0, 100),
        ]

    def test_selects_condition(self):
        chart = drift_bars(self.points(), "20..25 degC")
        assert "ECU0" in chart and "ECU1" in chart
        assert "+20.00%" in chart

    def test_missing_condition(self):
        with pytest.raises(ReproError):
            drift_bars(self.points(), "nope")
