"""Confusion matrices and headline scores."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval.confusion import ConfusionMatrix

counts = st.integers(0, 10_000)


class TestScores:
    def test_paper_table_4_1a(self):
        """Vehicle A / Euclidean false-positive test: accuracy 0.99994."""
        cm = ConfusionMatrix(
            true_positive=0, false_negative=0, false_positive=53, true_negative=841_188
        )
        assert cm.accuracy == pytest.approx(0.99994, abs=5e-6)

    def test_perfect_detection(self):
        cm = ConfusionMatrix(100, 0, 0, 900)
        assert cm.accuracy == 1.0
        assert cm.precision == 1.0
        assert cm.recall == 1.0
        assert cm.f_score == 1.0

    def test_missed_attacks(self):
        cm = ConfusionMatrix(true_positive=0, false_negative=50, false_positive=0, true_negative=50)
        assert cm.recall == 0.0
        assert cm.f_score == 0.0

    def test_no_attacks_recall_is_one(self):
        cm = ConfusionMatrix(0, 0, 5, 95)
        assert cm.recall == 1.0
        assert cm.precision == 0.0

    def test_false_positive_rate(self):
        cm = ConfusionMatrix(0, 0, 10, 90)
        assert cm.false_positive_rate == pytest.approx(0.1)

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            ConfusionMatrix(-1, 0, 0, 0)

    @given(counts, counts, counts, counts)
    def test_score_ranges(self, tp, fn, fp, tn):
        cm = ConfusionMatrix(tp, fn, fp, tn)
        if cm.total:
            assert 0.0 <= cm.accuracy <= 1.0
        assert 0.0 <= cm.precision <= 1.0
        assert 0.0 <= cm.recall <= 1.0
        assert 0.0 <= cm.f_score <= 1.0

    @given(counts, counts, counts, counts)
    def test_f_score_between_precision_and_recall(self, tp, fn, fp, tn):
        cm = ConfusionMatrix(tp, fn, fp, tn)
        lo, hi = sorted((cm.precision, cm.recall))
        assert lo - 1e-12 <= cm.f_score <= hi + 1e-12


class TestConstruction:
    def test_from_predictions(self):
        actual = np.array([True, True, False, False])
        predicted = np.array([True, False, True, False])
        cm = ConfusionMatrix.from_predictions(actual, predicted)
        assert (cm.true_positive, cm.false_negative, cm.false_positive, cm.true_negative) == (1, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            ConfusionMatrix.from_predictions(np.zeros(3, bool), np.zeros(4, bool))

    def test_addition(self):
        a = ConfusionMatrix(1, 2, 3, 4)
        b = ConfusionMatrix(10, 20, 30, 40)
        total = a + b
        assert total.true_positive == 11
        assert total.total == a.total + b.total

    def test_table_rendering(self):
        text = ConfusionMatrix(1, 2, 3, 4).as_table()
        assert "Predicted" in text
        assert "Anomaly" in text and "Normal" in text
