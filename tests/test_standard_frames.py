"""Standard-frame (CAN 2.0A) support — the paper's Section 6.1 adaptation.

The identity key becomes the 11-bit identifier and the first stable bit
moves to position 13 (IDE); everything downstream — training, detection
— is unchanged, just as the paper anticipated ("we do not anticipate
many required changes").
"""

import numpy as np
import pytest

from repro.acquisition.adc import AdcConfig
from repro.acquisition.sampler import CaptureChain
from repro.analog.channel import QUIET_CHANNEL
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import SynthesisConfig
from repro.can.frame import CanFrame
from repro.core.detection import Detector
from repro.core.edge_extraction import (
    ExtractionConfig,
    FrameFormat,
    extract_edge_set,
    extract_many,
)
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model


def make_transceiver(name, v_dom):
    return TransceiverParams(
        name=name,
        v_dominant=v_dom,
        v_recessive=0.005,
        rise=EdgeDynamics(2.0e6, 0.7),
        fall=EdgeDynamics(1.1e6, 1.05),
    )


@pytest.fixture(scope="module")
def chain():
    return CaptureChain(
        synthesis=SynthesisConfig(max_frame_bits=45),
        adc=AdcConfig(resolution_bits=16),
        noise=QUIET_CHANNEL,
    )


def capture_std(chain, can_id, transceiver, seed, payload=b"\x5a\x3c"):
    frame = CanFrame(can_id=can_id, data=payload, extended=False)
    return chain.capture_frame(frame, transceiver, rng=np.random.default_rng(seed))


class TestStandardExtraction:
    def test_identifier_decoded(self, chain):
        trx = make_transceiver("E", 2.0)
        for can_id in (0x001, 0x123, 0x555, 0x7FF):
            trace = capture_std(chain, can_id, trx, seed=can_id)
            config = ExtractionConfig.for_trace(
                trace, frame_format=FrameFormat.STANDARD
            )
            result = extract_edge_set(trace, config)
            assert result.source_address == can_id
            assert result.identity == can_id

    def test_identifier_survives_stuffing(self, chain):
        """An all-zero identifier stuffs inside the arbitration field."""
        trx = make_transceiver("E", 2.0)
        trace = capture_std(chain, 0x000, trx, seed=1, payload=b"\x00")
        config = ExtractionConfig.for_trace(trace, frame_format=FrameFormat.STANDARD)
        assert extract_edge_set(trace, config).source_address == 0x000

    def test_edge_set_dimension_unchanged(self, chain):
        trx = make_transceiver("E", 2.0)
        trace = capture_std(chain, 0x123, trx, seed=2)
        config = ExtractionConfig.for_trace(trace, frame_format=FrameFormat.STANDARD)
        assert extract_edge_set(trace, config).vector.shape == (
            config.edge_set_length,
        )

    def test_format_landmarks(self):
        assert FrameFormat.STANDARD.id_first_bit == 1
        assert FrameFormat.STANDARD.id_last_bit == 11
        assert FrameFormat.STANDARD.first_stable_bit == 13
        assert FrameFormat.EXTENDED.first_stable_bit == 33


class TestStandardDetection:
    def test_end_to_end_sender_identification(self, chain):
        """Two standard-frame ECUs: train, verify, catch an imposter."""
        ecu_a = make_transceiver("A", 1.95)
        ecu_b = make_transceiver("B", 2.12)
        traces = []
        for seed in range(160):
            traces.append(capture_std(chain, 0x100, ecu_a, seed=seed))
            traces.append(capture_std(chain, 0x200, ecu_b, seed=1000 + seed))
        config = ExtractionConfig.for_trace(
            traces[0], frame_format=FrameFormat.STANDARD
        )
        edge_sets = extract_many(traces, config)
        model = train_model(
            TrainingData.from_edge_sets(edge_sets),
            metric=Metric.MAHALANOBIS,
            sa_clusters={0x100: "A", 0x200: "B"},
        )
        detector = Detector(model, margin=3.0)

        # Legitimate message passes.
        fresh = capture_std(chain, 0x100, ecu_a, seed=5000)
        assert not detector.classify(extract_edge_set(fresh, config)).is_anomaly

        # ECU B forging id 0x100 is flagged with the right origin.
        forged = capture_std(chain, 0x100, ecu_b, seed=5001)
        result = detector.classify(extract_edge_set(forged, config))
        assert result.is_anomaly
        assert result.origin_name(model) == "B"
