"""Attack simulations: hijack SA rewriting and foreign devices."""

import numpy as np
import pytest

from repro.acquisition.adc import AdcConfig
from repro.acquisition.sampler import CaptureChain
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import SynthesisConfig
from repro.attacks.foreign import (
    ForeignDongle,
    ForeignScenario,
    apply_foreign_imitation,
    most_similar_pair,
)
from repro.attacks.hijack import apply_hijack
from repro.core.edge_extraction import ExtractedEdgeSet
from repro.core.training import TrainingData, train_model
from repro.errors import DatasetError

LUT = {0x10: "A", 0x11: "A", 0x20: "B", 0x30: "C"}


def edge_sets(rng, n=300):
    sas = rng.choice([0x10, 0x11, 0x20, 0x30], size=n)
    return [
        ExtractedEdgeSet(
            source_address=int(sa),
            vector=rng.normal(size=4),
            metadata={"sender": LUT[int(sa)]},
        )
        for sa in sas
    ]


class TestHijack:
    def test_probability_respected(self, rng):
        labelled = apply_hijack(edge_sets(rng, 3000), LUT, probability=0.2, rng=rng)
        rate = np.mean([l.is_attack for l in labelled])
        assert 0.16 < rate < 0.24

    def test_forged_sa_in_other_cluster(self, rng):
        labelled = apply_hijack(edge_sets(rng), LUT, probability=1.0, rng=rng)
        for item in labelled:
            assert item.is_attack
            assert LUT[item.edge_set.source_address] != item.true_sender

    def test_zero_probability_is_clean(self, rng):
        labelled = apply_hijack(edge_sets(rng), LUT, probability=0.0, rng=rng)
        assert not any(l.is_attack for l in labelled)

    def test_vectors_untouched(self, rng):
        """Hijack rewrites the claimed SA, never the analog waveform."""
        originals = edge_sets(rng, 50)
        labelled = apply_hijack(originals, LUT, probability=1.0, rng=rng)
        for original, item in zip(originals, labelled):
            assert np.array_equal(original.vector, item.edge_set.vector)

    def test_requires_two_clusters(self, rng):
        with pytest.raises(DatasetError):
            apply_hijack(edge_sets(rng, 10), {0x10: "A", 0x11: "A"}, rng=rng)

    def test_invalid_probability(self, rng):
        with pytest.raises(DatasetError):
            apply_hijack(edge_sets(rng, 10), LUT, probability=1.5, rng=rng)


class TestForeignScenario:
    def make_model(self, rng, metric):
        centers = {0x10: 0.0, 0x20: 1.0, 0x30: 10.0}
        vectors, sas = [], []
        for sa, c in centers.items():
            vectors.append(c + rng.normal(scale=0.3, size=(120, 4)))
            sas.extend([sa] * 120)
        return train_model(
            TrainingData(np.concatenate(vectors), np.array(sas)),
            metric=metric,
            sa_clusters={0x10: "A", 0x20: "B", 0x30: "C"},
        )

    @pytest.mark.parametrize("metric", ["euclidean", "mahalanobis"])
    def test_most_similar_pair(self, rng, metric):
        scenario = most_similar_pair(self.make_model(rng, metric))
        assert {scenario.imposter, scenario.victim} == {"A", "B"}
        assert scenario.similarity > 0

    def test_apply_imitation(self, rng):
        scenario = ForeignScenario(imposter="A", victim="B", similarity=1.0)
        labelled = apply_foreign_imitation(edge_sets(rng, 200), scenario, victim_sa=0x20)
        for item in labelled:
            if item.true_sender == "A":
                assert item.is_attack
                assert item.edge_set.source_address == 0x20
            else:
                assert not item.is_attack


class TestForeignDongle:
    def make_dongle(self):
        trx = TransceiverParams(
            name="dongle",
            v_dominant=2.1,
            v_recessive=0.0,
            rise=EdgeDynamics(2.2e6, 0.8),
            fall=EdgeDynamics(1.2e6, 1.0),
        )
        return ForeignDongle(transceiver=trx, victim_sa=0x17)

    def test_crafted_frame_claims_victim_sa(self):
        frame = self.make_dongle().craft_frame()
        assert frame.can_id & 0xFF == 0x17
        assert frame.extended

    def test_inject_produces_attack_traces(self, rng):
        chain = CaptureChain(
            synthesis=SynthesisConfig(max_frame_bits=60),
            adc=AdcConfig(resolution_bits=16),
        )
        traces = self.make_dongle().inject(chain, 5, rng=rng)
        assert len(traces) == 5
        assert all(t.metadata["is_attack"] for t in traces)
        assert all(t.metadata["sender"] == "dongle" for t in traces)

    def test_inject_count_validated(self, rng):
        chain = CaptureChain(
            synthesis=SynthesisConfig(max_frame_bits=60),
            adc=AdcConfig(resolution_bits=16),
        )
        with pytest.raises(DatasetError):
            self.make_dongle().inject(chain, 0, rng=rng)
