"""Channel noise model statistics."""

import numpy as np
import pytest

from repro.analog.channel import NOISY_CHANNEL, QUIET_CHANNEL, ChannelNoise
from repro.errors import WaveformError


class TestValidation:
    def test_rejects_negative_sigma(self):
        with pytest.raises(WaveformError):
            ChannelNoise(white_sigma_v=-0.001)

    def test_rejects_bad_ar_coeff(self):
        with pytest.raises(WaveformError):
            ChannelNoise(ar_coeff=1.0)

    def test_presets_valid(self):
        assert QUIET_CHANNEL.baseline_sigma_v < NOISY_CHANNEL.baseline_sigma_v


class TestSampleNoise:
    def test_zero_noise(self):
        silent = ChannelNoise(white_sigma_v=0, ar_sigma_v=0, baseline_sigma_v=0, amplitude_jitter=0)
        noise = silent.sample_noise(100, np.random.default_rng(0))
        assert np.allclose(noise, 0.0)

    def test_white_sigma_matches(self):
        channel = ChannelNoise(white_sigma_v=0.01, ar_sigma_v=0.0)
        noise = channel.sample_noise(200_000, np.random.default_rng(1))
        assert noise.std() == pytest.approx(0.01, rel=0.02)

    def test_ar_component_is_correlated(self):
        channel = ChannelNoise(white_sigma_v=0.0, ar_sigma_v=0.01, ar_coeff=0.95)
        noise = channel.sample_noise(100_000, np.random.default_rng(2))
        lag1 = np.corrcoef(noise[:-1], noise[1:])[0, 1]
        assert lag1 == pytest.approx(0.95, abs=0.02)

    def test_ar_stationary_variance(self):
        channel = ChannelNoise(white_sigma_v=0.0, ar_sigma_v=0.008, ar_coeff=0.9)
        noise = channel.sample_noise(200_000, np.random.default_rng(3))
        assert noise.std() == pytest.approx(0.008, rel=0.05)

    def test_empty_request(self):
        assert ChannelNoise().sample_noise(0, np.random.default_rng(0)).size == 0


class TestMessageOffsets:
    def test_baseline_distribution(self):
        channel = ChannelNoise(baseline_sigma_v=0.02, amplitude_jitter=0.0)
        rng = np.random.default_rng(4)
        baselines = np.array([channel.sample_message_offsets(rng)[0] for _ in range(20_000)])
        assert baselines.std() == pytest.approx(0.02, rel=0.05)
        assert abs(baselines.mean()) < 0.001

    def test_gain_centered_at_one(self):
        channel = ChannelNoise(baseline_sigma_v=0.0, amplitude_jitter=0.005)
        rng = np.random.default_rng(5)
        gains = np.array([channel.sample_message_offsets(rng)[1] for _ in range(20_000)])
        assert gains.mean() == pytest.approx(1.0, abs=1e-3)
        assert gains.std() == pytest.approx(0.005, rel=0.05)

    def test_disabled_offsets(self):
        channel = ChannelNoise(baseline_sigma_v=0.0, amplitude_jitter=0.0)
        baseline, gain = channel.sample_message_offsets(np.random.default_rng(6))
        assert baseline == 0.0 and gain == 1.0
