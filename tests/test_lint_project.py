"""Whole-program analysis engine: shared parse, call graph, new rules.

Covers the interprocedural rule family (VPL210/310/311/320) over
multi-module fixtures, the parse-once contract of the shared
:class:`~repro.lint.project.Project` pass, the incremental analysis
cache (warm runs parse nothing and emit byte-identical diagnostics),
the SARIF 2.1.0 serialisation, the baseline workflow, and the
``--jobs`` parallel analysis path.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import extract_summary
from repro.lint.project import Project, module_name
from repro.lint.resolver import ImportResolver
from repro.lint.rules import all_rules, iter_module_rules, iter_project_rules
from repro.lint.runner import analyze_project, run_lint
from repro.lint.sarif import sarif_report
import ast


def project_codes(sources, config=None, **cfg):
    """Codes from a multi-module in-memory project, sorted."""
    config = config or LintConfig(**cfg)
    project = Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}, config
    )
    return [d.code for d in analyze_project(project).diagnostics]


def project_diags(sources, config=None, **cfg):
    config = config or LintConfig(**cfg)
    project = Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}, config
    )
    return analyze_project(project).diagnostics


# ----------------------------------------------------------------------
# ImportResolver edge cases (module context, relative imports, stars)
# ----------------------------------------------------------------------
def _resolver(source, module=None, is_package=False):
    return ImportResolver(
        ast.parse(textwrap.dedent(source)), module, is_package=is_package
    )


def _resolve(resolver, expr):
    return resolver.resolve(ast.parse(expr, mode="eval").body)


def test_resolver_import_as_alias_chain():
    r = _resolver("import numpy.random as npr\n")
    assert _resolve(r, "npr.default_rng") == "numpy.random.default_rng"


def test_resolver_from_import_as_chain():
    r = _resolver("from numpy import random as rnd\n")
    assert _resolve(r, "rnd.default_rng") == "numpy.random.default_rng"


def test_resolver_from_import_as_rebinds_symbol():
    r = _resolver("from repro.perf.parallel import message_seed as ms\n")
    assert _resolve(r, "ms") == "repro.perf.parallel.message_seed"


def test_resolver_relative_import_in_plain_module():
    r = _resolver(
        "from .config import matches_any\n",
        module="repro.lint.rules.determinism",
    )
    assert _resolve(r, "matches_any") == "repro.lint.rules.config.matches_any"


def test_resolver_relative_import_two_levels_up():
    r = _resolver(
        "from ..config import matches_any\n",
        module="repro.lint.rules.determinism",
    )
    assert _resolve(r, "matches_any") == "repro.lint.config.matches_any"


def test_resolver_relative_import_in_package_init():
    # Inside a package __init__, `.runner` is a sibling of the package
    # itself: repro.lint/__init__.py -> repro.lint.runner.
    r = _resolver(
        "from .runner import lint_paths\n",
        module="repro.lint",
        is_package=True,
    )
    assert _resolve(r, "lint_paths") == "repro.lint.runner.lint_paths"


def test_resolver_bare_relative_import():
    r = _resolver(
        "from . import workers\n", module="repro.stream.queues"
    )
    assert _resolve(r, "workers.fold") == "repro.stream.workers.fold"


def test_resolver_relative_without_module_context_resolves_nothing():
    r = _resolver("from .config import matches_any\n")
    assert _resolve(r, "matches_any") is None


def test_resolver_star_import_recorded_not_bound():
    r = _resolver(
        "from repro.perf.parallel import *\n", module="repro.perf.engine"
    )
    assert r.star_imports == ("repro.perf.parallel",)
    assert _resolve(r, "message_seed") is None  # no direct binding


def test_star_import_fallback_resolves_through_callgraph():
    config = LintConfig()
    project = Project.from_sources(
        {
            "src/pkg/util.py": "def helper():\n    return 1\n",
            "src/pkg/app.py": "from pkg.util import *\n\ndef go():\n    return helper()\n",
        },
        config,
    )
    summaries = {}
    for module in project.sorted_modules():
        tree = project.parse_module(module)
        summaries[module.path] = extract_summary(
            tree, module.resolver, config, module.path, module.modname
        )
    graph = CallGraph(summaries)
    assert [callee for callee, _ in graph.callees_of("pkg.app.go")] == [
        "pkg.util.helper"
    ]


def test_callgraph_follows_package_reexport():
    config = LintConfig()
    project = Project.from_sources(
        {
            "src/pkg/__init__.py": "from pkg.impl import work\n",
            "src/pkg/impl.py": "def work():\n    return 1\n",
            "src/main.py": "import pkg\n\ndef go():\n    return pkg.work()\n",
        },
        config,
    )
    summaries = {}
    for module in project.sorted_modules():
        tree = project.parse_module(module)
        summaries[module.path] = extract_summary(
            tree, module.resolver, config, module.path, module.modname
        )
    graph = CallGraph(summaries)
    assert [callee for callee, _ in graph.callees_of("main.go")] == [
        "pkg.impl.work"
    ]


def test_module_name_mapping():
    assert module_name("src/repro/stream/workers.py") == (
        "repro.stream.workers", False
    )
    assert module_name("src/repro/lint/__init__.py") == ("repro.lint", True)
    assert module_name("tests/test_obs.py") == ("tests.test_obs", False)


# ----------------------------------------------------------------------
# The shared parse pass: every file parses exactly once
# ----------------------------------------------------------------------
def test_each_file_parses_exactly_once():
    sources = {
        f"src/repro/stream/m{i}.py": "import threading\n\nclass C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        for i in range(5)
    }
    project = Project.from_sources(sources, LintConfig())
    result = analyze_project(project)
    # Module rules + summary extraction + project rules all ran, yet
    # each file hit ast.parse exactly once.
    assert result.parse_count == len(sources)
    assert project.parse_count == len(sources)
    # Re-running analysis over the same project adds no parses.
    analyze_project(project)
    assert project.parse_count == len(sources)


def test_syntax_error_is_reported_once_and_never_reparsed():
    project = Project.from_sources(
        {"src/broken.py": "def broken(:\n"}, LintConfig()
    )
    result = analyze_project(project)
    assert [d.code for d in result.diagnostics] == ["VPL000"]
    assert project.parse_count == 1
    analyze_project(project)
    assert project.parse_count == 1


# ----------------------------------------------------------------------
# VPL310 — interprocedural lockset
# ----------------------------------------------------------------------
WORKERS_RACE = """
    import threading

    class ShardedWorkerPool:
        '''Distilled shape of the historical workers.py lost-update race.'''

        def __init__(self):
            self._update_lock = threading.Lock()
            self.updated = 0
            self._inflight = 0

        def _classify_batch(self, folded):
            with self._update_lock:
                self.updated += folded

        def drain(self):
            # The historical bug: the Algorithm-4 tally is torn here,
            # in a *different* method from the guarded write.
            self.updated += 1
"""


def test_vpl310_catches_cross_method_lost_update():
    found = project_diags({"src/repro/obs/pool.py": WORKERS_RACE})
    assert [d.code for d in found] == ["VPL310"]
    assert "self._update_lock" in found[0].message
    assert "_classify_batch" in found[0].message


def test_vpl310_catches_unlocked_read_of_guarded_attr():
    found = project_diags({"src/repro/obs/pool.py": """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0

            def add(self, n):
                with self._lock:
                    self.total += n

            def report(self):
                return self.total
    """})
    assert [d.code for d in found] == ["VPL310"]
    assert "read" in found[0].message


def test_vpl310_helper_called_only_under_lock_is_clean():
    # The generalisation over VPL301: the helper's bare write is safe
    # because its every call site holds the lock (call-graph fixpoint).
    assert project_codes({"src/repro/obs/pool.py": """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0

            def reset(self):
                with self._lock:
                    self.total = 0

            def add(self, n):
                with self._lock:
                    self._bump(n)

            def add_many(self, ns):
                with self._lock:
                    for n in ns:
                        self._bump(n)

            def _bump(self, n):
                self.total += n
    """}) == []


def test_vpl310_helper_of_helper_chain_resolves_to_fixpoint():
    assert project_codes({"src/repro/obs/pool.py": """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0

            def reset(self):
                with self._lock:
                    self.total = 0

            def add(self, n):
                with self._lock:
                    self._outer(n)

            def _outer(self, n):
                self._bump(n)

            def _bump(self, n):
                self.total += n
    """}) == []


def test_vpl310_helper_with_one_unlocked_call_site_fires():
    found = project_diags({"src/repro/obs/pool.py": """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0

            def reset(self):
                with self._lock:
                    self.total = 0

            def add(self, n):
                with self._lock:
                    self._bump(n)

            def sneak(self, n):
                self._bump(n)   # unlocked path into the helper

            def _bump(self, n):
                self.total += n
    """})
    assert [d.code for d in found] == ["VPL310"]


def test_vpl310_setup_methods_and_unguarded_attrs_are_exempt():
    assert project_codes({"src/repro/obs/pool.py": """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0      # setup write: exempt
                self.name = "p"

            def add(self, n):
                with self._lock:
                    self.total += n

            def rename(self, name):
                self.name = name    # never lock-written: no contract
    """}) == []


def test_vpl310_scoped_by_lockset_paths():
    assert project_codes(
        {"src/other/pool.py": WORKERS_RACE},
        lockset_paths=("src/repro",),
    ) == []


def test_vpl310_inline_suppression():
    assert project_codes({"src/repro/obs/pool.py": """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0

            def add(self, n):
                with self._lock:
                    self.total += n

            def report(self):
                return self.total  # vpl: ignore[VPL310]
    """}) == []


# ----------------------------------------------------------------------
# VPL311 — sync lock across await / blocking call in async code
# ----------------------------------------------------------------------
def test_vpl311_lock_held_across_await_in_async_handler():
    found = project_diags({"src/repro/fleet/gateway.py": """
        import threading

        class Gateway:
            def __init__(self):
                self._lock = threading.Lock()

            async def handle(self, msg):
                with self._lock:
                    await self.route(msg)

            async def route(self, msg):
                return msg
    """})
    assert [d.code for d in found] == ["VPL311"]
    assert "self._lock" in found[0].message


def test_vpl311_module_level_lock_across_await():
    found = project_diags({"src/repro/fleet/gw.py": """
        import threading

        LOCK = threading.Lock()

        async def handle(msg):
            with LOCK:
                await process(msg)

        async def process(msg):
            return msg
    """})
    assert [d.code for d in found] == ["VPL311"]


def test_vpl311_blocking_call_under_lock_in_async_def():
    found = project_diags({"src/repro/fleet/gw.py": """
        import threading
        import time

        LOCK = threading.Lock()

        async def handle(msg):
            with LOCK:
                time.sleep(0.1)
    """})
    codes = [d.code for d in found]
    assert "VPL311" in codes  # VPL303 fires too: both lenses apply


def test_vpl311_transitively_blocking_callee_under_lock():
    found = project_diags({
        "src/repro/fleet/gw.py": """
            import threading
            from repro.fleet.io import persist

            LOCK = threading.Lock()

            async def handle(msg):
                with LOCK:
                    persist(msg)
        """,
        "src/repro/fleet/io.py": """
            import time

            def persist(msg):
                time.sleep(1)
        """,
    })
    assert [d.code for d in found] == ["VPL311"]
    assert "repro.fleet.io.persist" in found[0].message


def test_vpl311_async_lock_via_async_with_is_clean():
    assert project_codes({"src/repro/fleet/gw.py": """
        import asyncio

        LOCK = asyncio.Lock()

        async def handle(msg):
            async with LOCK:
                await process(msg)

        async def process(msg):
            return msg
    """}) == []


def test_vpl311_await_outside_lock_is_clean():
    assert project_codes({"src/repro/fleet/gw.py": """
        import threading

        LOCK = threading.Lock()

        async def handle(msg):
            with LOCK:
                staged = msg.copy()
            await process(staged)

        async def process(msg):
            return msg
    """}) == []


def test_vpl311_scoped_by_async_paths():
    assert project_codes({"src/repro/perf/gw.py": """
        import threading

        LOCK = threading.Lock()

        async def handle(msg):
            with LOCK:
                await process(msg)

        async def process(msg):
            return msg
    """}) == []


# ----------------------------------------------------------------------
# VPL320 — executor-boundary safety
# ----------------------------------------------------------------------
def test_vpl320_flags_lock_file_shm_and_rng_arguments():
    found = project_diags({"src/repro/perf/fan.py": """
        import threading
        import numpy as np
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing.shared_memory import SharedMemory

        def fan_out(work, items):
            lock = threading.Lock()
            handle = open("data.bin", "rb")
            shm = SharedMemory(create=True, size=8)  # vpl: ignore[VPL304]
            rng = np.random.default_rng()  # vpl: ignore[VPL102]
            with ProcessPoolExecutor() as pool:
                pool.submit(work, lock)
                pool.submit(work, handle)
                pool.submit(work, shm)
                pool.submit(work, rng)
                pool.submit(work, items)   # plain data: fine
    """})
    vpl320 = [d for d in found if d.code == "VPL320"]
    assert len(vpl320) == 4
    tags = " ".join(d.message for d in vpl320)
    assert "lock state" in tags and "file state" in tags
    assert "shm state" in tags and "rng state" in tags


def test_vpl320_map_arguments_audited_too():
    found = project_diags({"src/repro/perf/fan.py": """
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(work):
            lock = threading.Lock()
            with ProcessPoolExecutor() as pool:
                list(pool.map(work, [lock]))
    """})
    # The list literal hides the lock from the shallow tag walk, so
    # pass it directly to prove the map path is audited:
    found += project_diags({"src/repro/perf/fan2.py": """
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(work):
            lock = threading.Lock()
            with ProcessPoolExecutor() as pool:
                list(pool.map(work, lock))
    """})
    assert "VPL320" in [d.code for d in found]


def test_vpl320_executor_factory_from_config_is_audited():
    found = project_diags({"src/repro/perf/fan.py": """
        import threading
        from repro.perf.parallel import get_pool

        def fan_out(work):
            lock = threading.Lock()
            pool = get_pool(4)
            pool.submit(work, lock)
    """})
    assert [d.code for d in found] == ["VPL320"]


def test_vpl320_thread_executor_not_flagged():
    # run_in_executor-style thread pools share the address space; the
    # receiver is not a process pool, so nothing crosses a pickling
    # boundary.
    assert project_codes({"src/repro/fleet/off.py": """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        def fan_out(work):
            lock = threading.Lock()
            pool = ThreadPoolExecutor(4)
            pool.submit(work, lock)
    """}) == []


def test_vpl320_plain_descriptors_are_blessed():
    assert project_codes({"src/repro/perf/fan.py": """
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(work, chunks):
            with ProcessPoolExecutor() as pool:
                for chunk in chunks:
                    pool.submit(work, chunk.name, chunk.lengths, 1234)
    """}) == []


# ----------------------------------------------------------------------
# VPL210 — seed provenance into synthesis sinks
# ----------------------------------------------------------------------
def test_vpl210_literal_seeded_generator_at_sink_fires():
    found = project_diags({"src/repro/render.py": """
        import numpy as np
        from repro.analog.waveform import synthesize_waveform

        def render(frame):
            rng = np.random.default_rng(1234)
            return synthesize_waveform(frame, rng=rng)
    """})
    assert [d.code for d in found] == ["VPL210"]
    assert "spawn" in found[0].message


def test_vpl210_hand_rooted_seedsequence_fires():
    found = project_diags({"src/repro/render.py": """
        import numpy as np
        from repro.analog.waveform import synthesize_waveform

        def render(frame):
            seq = np.random.SeedSequence(42)
            return synthesize_waveform(frame, rng=np.random.default_rng(seq))
    """})
    assert "VPL210" in [d.code for d in found]


def test_vpl210_spawned_and_factory_generators_are_clean():
    assert project_codes({"src/repro/render.py": """
        import numpy as np
        from repro.analog.waveform import synthesize_waveform
        from repro.perf.parallel import message_seed

        def render(frame, root_seq, index):
            child = np.random.default_rng(root_seq.spawn(1)[0])
            fast = np.random.default_rng(message_seed(root_seq, index))
            return synthesize_waveform(frame, rng=child) \\
                + synthesize_waveform(frame, rng=fast)
    """}) == []


def test_vpl210_guarded_default_rng_fallback_is_blessed():
    # The `if rng is None:` fallback mirrors VPL201's injected-generator
    # contract: a caller-provided generator wins, the fresh one is the
    # documented entropy root for ad-hoc use.
    assert project_codes({"src/repro/render.py": """
        import numpy as np
        from repro.analog.waveform import synthesize_waveform

        def render(frame, rng=None):
            if rng is None:
                rng = np.random.default_rng()  # vpl: ignore[VPL102]
            return synthesize_waveform(frame, rng=rng)
    """}) == []


def test_vpl210_traces_bad_generator_through_callers():
    found = project_diags({
        "src/repro/render.py": """
            from repro.analog.waveform import synthesize_waveform

            def render(frame, rng):
                return synthesize_waveform(frame, rng=rng)
        """,
        "src/repro/driver.py": """
            import numpy as np
            from repro.render import render

            def main(frame):
                rng = np.random.default_rng(7)
                return render(frame, rng)
        """,
    })
    assert [d.code for d in found] == ["VPL210"]
    assert found[0].path == "src/repro/driver.py"


def test_vpl210_interprocedural_spawned_caller_is_clean():
    assert project_codes({
        "src/repro/render.py": """
            from repro.analog.waveform import synthesize_waveform

            def render(frame, rng):
                return synthesize_waveform(frame, rng=rng)
        """,
        "src/repro/driver.py": """
            import numpy as np
            from repro.render import render

            def main(frame, root_seq):
                rng = np.random.default_rng(root_seq.spawn(1)[0])
                return render(frame, rng)
        """,
    }) == []


def test_vpl210_parameter_with_no_project_callers_is_blessed():
    # Public API: callers outside the project are invisible, and a
    # missing edge means "unknown", never "unsafe".
    assert project_codes({"src/repro/render.py": """
        from repro.analog.waveform import synthesize_waveform

        def render(frame, rng):
            return synthesize_waveform(frame, rng=rng)
    """}) == []


def test_vpl210_scoped_by_taint_paths():
    assert project_codes(
        {"src/tools/render.py": """
            import numpy as np
            from repro.analog.waveform import synthesize_waveform

            def render(frame):
                rng = np.random.default_rng(1)
                return synthesize_waveform(frame, rng=rng)
        """},
        taint_paths=("src/repro",),
    ) == []


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
CLEAN_MODULE = "import threading\n\nLOCK = threading.Lock()\n"
DIRTY_MODULE = (
    "import numpy as np\n"
    "np.random.seed(1)\n"
)


def _write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


def test_cache_warm_run_reanalyzes_nothing_and_matches(tmp_path):
    _write_tree(tmp_path, {
        "src/a.py": CLEAN_MODULE,
        "src/b.py": DIRTY_MODULE,
    })
    config = LintConfig()
    cold = run_lint(["src"], config, root=tmp_path, use_cache=True)
    assert sorted(cold.analyzed) == ["src/a.py", "src/b.py"]
    assert cold.parse_count == 2

    warm = run_lint(["src"], config, root=tmp_path, use_cache=True)
    assert warm.analyzed == []
    assert sorted(warm.restored) == ["src/a.py", "src/b.py"]
    assert warm.parse_count == 0
    assert warm.diagnostics == cold.diagnostics  # byte-identical verdict


def test_cache_invalidates_only_the_edited_file(tmp_path):
    _write_tree(tmp_path, {
        "src/a.py": CLEAN_MODULE,
        "src/b.py": CLEAN_MODULE,
    })
    config = LintConfig()
    run_lint(["src"], config, root=tmp_path, use_cache=True)
    (tmp_path / "src" / "b.py").write_text(DIRTY_MODULE)
    edited = run_lint(["src"], config, root=tmp_path, use_cache=True)
    assert edited.analyzed == ["src/b.py"]
    assert edited.restored == ["src/a.py"]
    assert [d.code for d in edited.diagnostics] == ["VPL101"]


def test_cache_invalidates_on_analysis_version_bump(tmp_path, monkeypatch):
    _write_tree(tmp_path, {"src/a.py": CLEAN_MODULE})
    config = LintConfig()
    run_lint(["src"], config, root=tmp_path, use_cache=True)
    import repro.lint.cache as cache_mod

    monkeypatch.setattr(cache_mod, "ANALYSIS_VERSION", 999)
    bumped = run_lint(["src"], config, root=tmp_path, use_cache=True)
    assert bumped.analyzed == ["src/a.py"]
    assert bumped.restored == []


def test_cache_invalidates_on_config_change(tmp_path):
    _write_tree(tmp_path, {"src/a.py": DIRTY_MODULE})
    run_lint(["src"], LintConfig(), root=tmp_path, use_cache=True)
    changed = run_lint(
        ["src"], LintConfig(select=("VPL9",)), root=tmp_path, use_cache=True
    )
    assert changed.analyzed == ["src/a.py"]
    assert changed.diagnostics == []


def test_cache_corrupt_file_is_treated_as_cold(tmp_path):
    _write_tree(tmp_path, {"src/a.py": CLEAN_MODULE})
    config = LintConfig()
    run_lint(["src"], config, root=tmp_path, use_cache=True)
    cache_file = tmp_path / config.cache_dir / "analysis.json"
    cache_file.write_text("{not json")
    again = run_lint(["src"], config, root=tmp_path, use_cache=True)
    assert again.analyzed == ["src/a.py"]


def test_cache_prunes_deleted_files(tmp_path):
    _write_tree(tmp_path, {"src/a.py": CLEAN_MODULE, "src/b.py": CLEAN_MODULE})
    config = LintConfig()
    run_lint(["src"], config, root=tmp_path, use_cache=True)
    (tmp_path / "src" / "b.py").unlink()
    run_lint(["src"], config, root=tmp_path, use_cache=True)
    payload = json.loads(
        (tmp_path / config.cache_dir / "analysis.json").read_text()
    )
    assert sorted(payload["modules"]) == ["src/a.py"]


def test_cached_project_verdicts_follow_other_files(tmp_path):
    """A project rule's verdict must change even when its anchor file
    does not — the cross-module evidence lives in *other* modules."""
    _write_tree(tmp_path, {
        "src/repro/render.py": textwrap.dedent("""
            from repro.analog.waveform import synthesize_waveform

            def render(frame, rng):
                return synthesize_waveform(frame, rng=rng)
        """),
        "src/repro/driver.py": textwrap.dedent("""
            from repro.render import render

            def main(frame, rng):
                return render(frame, rng)
        """),
    })
    config = LintConfig()
    first = run_lint(["src"], config, root=tmp_path, use_cache=True)
    assert first.diagnostics == []
    # Edit ONLY the driver to pass a literal-seeded generator; the sink
    # module is served from cache yet the taint verdict flips.
    (tmp_path / "src/repro/driver.py").write_text(textwrap.dedent("""
        import numpy as np
        from repro.render import render

        def main(frame):
            rng = np.random.default_rng(7)
            return render(frame, rng)
    """))
    second = run_lint(["src"], config, root=tmp_path, use_cache=True)
    assert second.restored == ["src/repro/render.py"]
    assert [d.code for d in second.diagnostics] == ["VPL210"]


def test_jobs_parallel_analysis_is_deterministic(tmp_path):
    files = {
        f"src/m{i}.py": DIRTY_MODULE + f"X{i} = {i}\n" for i in range(12)
    }
    _write_tree(tmp_path, files)
    config = LintConfig()
    serial = run_lint(["src"], config, root=tmp_path)
    parallel = run_lint(["src"], config, root=tmp_path, jobs=4)
    assert parallel.diagnostics == serial.diagnostics
    assert parallel.parse_count == len(files)


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_report_shape_and_rule_metadata():
    diags = project_diags({"src/repro/obs/pool.py": WORKERS_RACE})
    report = sarif_report(
        diags, all_rules().values(), root_uri="file:///repo/"
    )
    assert report["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in report["$schema"]
    run = report["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    ids = [rule["id"] for rule in driver["rules"]]
    assert ids == sorted(ids) and "VPL310" in ids
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
    result = run["results"][0]
    assert result["ruleId"] == "VPL310"
    assert driver["rules"][result["ruleIndex"]]["id"] == "VPL310"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/obs/pool.py"
    assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
    assert location["region"]["startLine"] >= 1
    assert location["region"]["startColumn"] >= 1
    assert run["originalUriBaseIds"]["SRCROOT"]["uri"] == "file:///repo/"


def test_sarif_waived_findings_carry_suppressions():
    diags = project_diags({"src/repro/obs/pool.py": WORKERS_RACE})
    report = sarif_report(
        [], all_rules().values(), waived=diags
    )
    results = report["runs"][0]["results"]
    assert len(results) == len(diags)
    for result in results:
        assert result["suppressions"][0]["kind"] == "external"


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_waives_recorded_findings_and_flags_new_ones(tmp_path):
    diags = project_diags({"src/repro/obs/pool.py": WORKERS_RACE})
    baseline = Baseline.from_diagnostics(diags)
    config = LintConfig()
    baseline.save(tmp_path, config)
    loaded = Baseline.load(tmp_path, config)
    split = loaded.apply(diags)
    assert split.new == [] and split.waived == diags and split.stale == []

    # A second identical finding elsewhere in the file is NEW: the
    # baseline counts occurrences, it does not waive a message forever.
    extra = diags + diags
    split = loaded.apply(extra)
    assert len(split.waived) == len(diags)
    assert len(split.new) == len(diags)


def test_baseline_reports_stale_entries_once_fixed(tmp_path):
    diags = project_diags({"src/repro/obs/pool.py": WORKERS_RACE})
    baseline = Baseline.from_diagnostics(diags)
    split = baseline.apply([])
    assert split.stale and split.stale[0][1] == "VPL310"


def test_baseline_missing_or_corrupt_loads_as_none(tmp_path):
    config = LintConfig()
    assert Baseline.load(tmp_path, config) is None
    (tmp_path / config.baseline).write_text("{broken")
    assert Baseline.load(tmp_path, config) is None


# ----------------------------------------------------------------------
# Registry split
# ----------------------------------------------------------------------
def test_rule_registry_splits_module_and_project_rules():
    module_codes = {rule.code for rule in iter_module_rules()}
    project_rules = {rule.code for rule in iter_project_rules()}
    assert {"VPL210", "VPL310", "VPL311", "VPL320", "VPL402"} <= project_rules
    assert module_codes.isdisjoint(project_rules)
    assert module_codes | project_rules == set(all_rules())


def test_lint_source_still_runs_project_rules_single_module():
    # lint_source wraps a one-file project, so intra-class lockset
    # verdicts still come out of the unit-test entry point.
    found = lint_source(
        textwrap.dedent(WORKERS_RACE), "src/repro/obs/pool.py"
    )
    assert [d.code for d in found] == ["VPL310"]
