"""Algorithm 1: edge-set extraction and SA decoding from waveforms."""

import numpy as np
import pytest

from repro.acquisition.adc import AdcConfig
from repro.acquisition.sampler import CaptureChain
from repro.acquisition.trace import VoltageTrace
from repro.analog.channel import QUIET_CHANNEL
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import SynthesisConfig
from repro.can.frame import CanFrame
from repro.can.j1939 import J1939Id
from repro.core.edge_extraction import (
    ExtractionConfig,
    cluster_threshold,
    extract_edge_set,
    extract_many,
    get_bit_value,
)
from repro.errors import ExtractionError

TRX = TransceiverParams(
    name="E",
    v_dominant=2.0,
    v_recessive=0.0,
    rise=EdgeDynamics(2.0e6, 0.7),
    fall=EdgeDynamics(1.1e6, 1.05),
)


def capture(frame: CanFrame, *, noise=QUIET_CHANNEL, seed=0, max_bits=60) -> VoltageTrace:
    chain = CaptureChain(
        synthesis=SynthesisConfig(max_frame_bits=max_bits),
        adc=AdcConfig(resolution_bits=16),
        noise=noise,
    )
    return chain.capture_frame(frame, TRX, rng=np.random.default_rng(seed))


def j1939_frame(sa: int, pgn: int = 0xF004, data: bytes = b"\x12\x34\x56\x78") -> CanFrame:
    can_id = J1939Id(priority=3, pgn=pgn, source_address=sa).to_can_id()
    return CanFrame(can_id=can_id, data=data)


class TestGetBitValue:
    def test_dominant_is_zero(self):
        assert get_bit_value(50_000, 39_000) == 0

    def test_recessive_is_one(self):
        assert get_bit_value(33_000, 39_000) == 1

    def test_threshold_is_dominant(self):
        assert get_bit_value(39_000, 39_000) == 0


class TestConfig:
    def test_for_trace_scales_with_rate(self):
        trace = VoltageTrace(
            counts=np.zeros(100, dtype=np.int32), sample_rate=20e6, resolution_bits=16
        )
        config = ExtractionConfig.for_trace(trace)
        assert config.bit_width == 80.0
        assert config.prefix_len == 4
        assert config.suffix_len == 28
        assert config.edge_set_length == 64

    def test_reference_constants_at_10ms(self):
        trace = VoltageTrace(
            counts=np.zeros(100, dtype=np.int32), sample_rate=10e6, resolution_bits=16
        )
        config = ExtractionConfig.for_trace(trace)
        assert (config.prefix_len, config.suffix_len) == (2, 14)
        assert config.edge_set_spacing == 250

    def test_threshold_from_resolution(self):
        trace = VoltageTrace(
            counts=np.zeros(10, dtype=np.int32), sample_rate=10e6, resolution_bits=12
        )
        config = ExtractionConfig.for_trace(trace)
        # 1 V on a 12-bit +/-5 V front end.
        assert config.threshold == pytest.approx(2457.0, abs=2)

    def test_with_threshold(self):
        trace = VoltageTrace(
            counts=np.zeros(10, dtype=np.int32), sample_rate=10e6, resolution_bits=16
        )
        config = ExtractionConfig.for_trace(trace).with_threshold(40_000)
        assert config.threshold == 40_000.0

    def test_rejects_tiny_bit_width(self):
        with pytest.raises(ExtractionError):
            ExtractionConfig(bit_width=2, threshold=100)

    def test_rejects_bad_windows(self):
        with pytest.raises(ExtractionError):
            ExtractionConfig(bit_width=40, threshold=100, suffix_len=0)


class TestExtraction:
    def test_sa_decoded_correctly(self):
        for sa in (0x00, 0x17, 0xA5, 0xFF):
            trace = capture(j1939_frame(sa))
            result = extract_edge_set(trace, ExtractionConfig.for_trace(trace))
            assert result.source_address == sa

    def test_sa_decoding_survives_stuffing(self):
        """SAs whose frames stuff bits inside the arbitration field."""
        # PGN 0 + priority 0 produces long dominant runs early in the id.
        for sa, pgn, priority in ((0x00, 0x0000, 0), (0xF0, 0x0000, 0), (0x0F, 0x3FF00, 7)):
            can_id = (priority << 26) | (pgn << 8) | sa
            trace = capture(CanFrame(can_id=can_id, data=b"\x00"))
            result = extract_edge_set(trace, ExtractionConfig.for_trace(trace))
            assert result.source_address == sa

    def test_vector_dimension(self):
        trace = capture(j1939_frame(0x10))
        config = ExtractionConfig.for_trace(trace)
        result = extract_edge_set(trace, config)
        assert result.vector.shape == (config.edge_set_length,)

    def test_vector_covers_both_polarities(self):
        """The edge set spans a falling and a rising edge."""
        trace = capture(j1939_frame(0x10))
        config = ExtractionConfig.for_trace(trace)
        vector = extract_edge_set(trace, config).vector
        assert vector.max() > config.threshold  # dominant samples present
        assert vector.min() < config.threshold  # recessive samples present

    def test_metadata_passthrough(self):
        trace = capture(j1939_frame(0x10))
        result = extract_edge_set(trace, ExtractionConfig.for_trace(trace))
        assert result.metadata["sender"] == "E"

    def test_noiseless_extraction_deterministic(self):
        frame = j1939_frame(0x42)
        chain = CaptureChain(
            synthesis=SynthesisConfig(max_frame_bits=60),
            adc=AdcConfig(resolution_bits=16),
            noise=None,
        )
        a = chain.capture_frame(frame, TRX)
        b = chain.capture_frame(frame, TRX)
        config = ExtractionConfig.for_trace(a)
        assert np.array_equal(
            extract_edge_set(a, config).vector, extract_edge_set(b, config).vector
        )

    def test_multi_edge_sets_average(self):
        trace = capture(j1939_frame(0x10), max_bits=90)
        single = ExtractionConfig.for_trace(trace)
        multi = ExtractionConfig.for_trace(trace, n_edge_sets=3)
        v1 = extract_edge_set(trace, single).vector
        v3 = extract_edge_set(trace, multi).vector
        assert v1.shape == v3.shape
        assert not np.array_equal(v1, v3)

    def test_too_short_trace_raises(self):
        trace = capture(j1939_frame(0x10), max_bits=20)
        with pytest.raises(ExtractionError):
            extract_edge_set(trace, ExtractionConfig.for_trace(trace))

    def test_all_recessive_raises(self):
        trace = VoltageTrace(
            counts=np.zeros(4000, dtype=np.int32), sample_rate=10e6, resolution_bits=16
        )
        with pytest.raises(ExtractionError):
            extract_edge_set(trace, ExtractionConfig.for_trace(trace))

    def test_extract_many_shares_config(self):
        traces = [capture(j1939_frame(0x10), seed=s) for s in range(5)]
        results = extract_many(traces)
        assert len(results) == 5

    def test_extract_many_skip_failures(self):
        good = capture(j1939_frame(0x10))
        bad = capture(j1939_frame(0x10), max_bits=20)
        config = ExtractionConfig.for_trace(good)
        results = extract_many([good, bad], config, skip_failures=True)
        assert len(results) == 1
        with pytest.raises(ExtractionError):
            extract_many([good, bad], config)

    def test_empty_input(self):
        assert extract_many([]) == []


class TestClusterThreshold:
    def test_bisects_first_half(self):
        trace = capture(j1939_frame(0x10))
        threshold = cluster_threshold(trace)
        half = np.asarray(trace.counts[: len(trace) // 2], dtype=float)
        assert threshold == pytest.approx((half.max() + half.min()) / 2)

    def test_usable_for_extraction(self):
        trace = capture(j1939_frame(0x33))
        config = ExtractionConfig.for_trace(trace).with_threshold(cluster_threshold(trace))
        result = extract_edge_set(trace, config)
        assert result.source_address == 0x33
