"""Observability wired through the real pipeline.

Covers the acceptance criteria of the obs subsystem:

* one ``capture -> train -> detect`` run emits the expected metric
  names (stage histograms, message/anomaly counters, events);
* with observability *disabled* the per-message path performs no clock
  reads and no metric bookkeeping (the null-handle fast path).
"""

import pytest

from repro import obs
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.ids.alerts import Alert, AlertLog


@pytest.fixture(scope="module")
def split_session(vehicle_a_session):
    return vehicle_a_session.split(0.5, seed=3)


class TestPipelineMetrics:
    def test_train_detect_emits_expected_metrics(self, split_session, veh_a):
        train, test = split_session
        with obs.enabled() as (registry, events):
            pipeline = VProfilePipeline(
                PipelineConfig(
                    margin=5.0, sa_clusters=veh_a.sa_clusters, online_update=True
                )
            )
            pipeline.train(train)
            for trace in test[:50]:
                pipeline.process(trace)

        processed = registry.get("vprofile_messages_total")
        assert processed is not None and processed.value == 50

        # Every per-message stage ran and was timed.
        extract = registry.get(obs.STAGE_METRIC, stage="extract")
        classify = registry.get(obs.STAGE_METRIC, stage="classify")
        update = registry.get(obs.STAGE_METRIC, stage="update")
        # Training also extracts, so >= the 50 processed messages.
        assert extract.count >= 50
        assert classify.count == 50
        assert update.count > 0
        assert extract.sum > 0.0

        # Model/update bookkeeping.
        assert registry.get("vprofile_model_clusters").value == len(veh_a.ecus)
        updates = registry.get("vprofile_online_updates_total")
        assert updates.value == pipeline.stats.updated > 0

        # Training emitted a structured event.
        trained_events = events.records(name="pipeline.trained")
        assert len(trained_events) == 1
        assert trained_events[0].fields["clusters"] == len(veh_a.ecus)

    def test_anomaly_counters_labelled_by_reason(self, split_session, veh_a):
        # Hold one ECU out of training; its traffic is then a guaranteed
        # unknown-SA anomaly on the real process() path.
        train, test = split_session
        held_out = veh_a.ecus[-1].name
        lut = {sa: n for sa, n in veh_a.sa_clusters.items() if n != held_out}
        known_train = [t for t in train if t.metadata["sender"] != held_out]
        intruder = [t for t in test if t.metadata["sender"] == held_out][:5]
        assert intruder, "capture fixture must include the held-out ECU"

        with obs.enabled() as (registry, events):
            pipeline = VProfilePipeline(
                PipelineConfig(margin=5.0, sa_clusters=lut)
            )
            pipeline.train(known_train)
            for trace in intruder:
                result = pipeline.process(trace)
                assert result.is_anomaly

        assert pipeline.stats.reasons["unknown-sa"] == len(intruder)
        counter = registry.get("vprofile_anomalies_total", reason="unknown-sa")
        assert counter is not None and counter.value == len(intruder)
        anomaly_events = events.records(name="pipeline.anomaly")
        assert len(anomaly_events) == len(intruder)
        assert anomaly_events[0].fields["reason"] == "unknown-sa"

    def test_pipeline_stats_reasons_counter_semantics(self, split_session, veh_a):
        train, _ = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(margin=5.0, sa_clusters=veh_a.sa_clusters)
        )
        pipeline.train(train)
        # Counter semantics: missing keys read 0, no KeyError.
        assert pipeline.stats.reasons["never-seen"] == 0
        assert dict(pipeline.stats.reasons) == {}

    def test_rebind_when_registry_swapped_mid_stream(self, split_session, veh_a):
        train, test = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(margin=5.0, sa_clusters=veh_a.sa_clusters)
        )
        pipeline.train(train)  # bound to the (disabled) null registry
        pipeline.process(test[0])
        with obs.enabled() as (registry, _):
            pipeline.process(test[1])
            pipeline.process(test[2])
        assert registry.get("vprofile_messages_total").value == 2
        # Back to disabled: no further recording.
        pipeline.process(test[3])
        assert registry.get("vprofile_messages_total").value == 2


class TestDisabledOverhead:
    """The acceptance criterion: disabled observability is a true no-op."""

    def test_process_makes_no_clock_reads_when_disabled(
        self, split_session, veh_a, monkeypatch
    ):
        train, test = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(
                margin=5.0, sa_clusters=veh_a.sa_clusters, online_update=True
            )
        )
        pipeline.train(train)

        def _explode(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("span clock read on the disabled path")

        # Spans read these names from repro.obs.spans; with the null
        # registry active, stage timers must never touch them.
        import repro.obs.spans as spans_module

        monkeypatch.setattr(spans_module, "perf_counter", _explode)
        monkeypatch.setattr(spans_module, "process_time", _explode)

        assert obs.get_registry().enabled is False
        for trace in test[:20]:
            pipeline.process(trace)  # would raise if any stage span timed

        assert pipeline.stats.processed == 20

    def test_disabled_handles_are_stateless_singletons(self, split_session, veh_a):
        train, test = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(margin=5.0, sa_clusters=veh_a.sa_clusters)
        )
        pipeline.train(train)
        pipeline.process(test[0])
        # The bound handles are the shared null singletons: no dicts grew.
        from repro.obs.registry import NULL_COUNTER

        assert pipeline._m_processed is NULL_COUNTER
        assert pipeline._m_updated is NULL_COUNTER
        assert obs.get_registry().snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }

    def test_results_identical_enabled_vs_disabled(self, split_session, veh_a):
        train, test = split_session

        def run():
            pipeline = VProfilePipeline(
                PipelineConfig(margin=5.0, sa_clusters=veh_a.sa_clusters)
            )
            pipeline.train(train)
            return [pipeline.process(t).verdict for t in test[:30]]

        disabled = run()
        with obs.enabled():
            enabled = run()
        assert disabled == enabled


class TestAlertObservability:
    def test_alerts_become_counters_and_events(self):
        with obs.enabled() as (registry, events):
            log = AlertLog()
            log.record(Alert(0.1, "voltage", 0x99, "cluster-mismatch"))
            log.record(Alert(0.2, "voltage", 0x99, "cluster-mismatch"))
            log.record(Alert(0.3, "period", 0x42, "early-message"))

        counter = registry.get(
            "vprofile_ids_alerts_total", detector="voltage", reason="cluster-mismatch"
        )
        assert counter.value == 2
        assert registry.get(
            "vprofile_ids_alerts_total", detector="period", reason="early-message"
        ).value == 1
        alert_events = events.records(name="ids.alert")
        assert len(alert_events) == 3
        assert alert_events[0].fields["can_id"] == 0x99

    def test_alert_log_aggregates_unchanged_api(self):
        log = AlertLog()
        log.extend([
            Alert(0.1, "voltage", 0x99, "cluster-mismatch"),
            Alert(0.2, "period", 0x42, "early-message"),
            Alert(0.3, "voltage", 0x17, "distance-exceeded"),
        ])
        assert log.by_detector() == {"voltage": 2, "period": 1}
        assert log.by_can_id() == {0x99: 1, 0x42: 1, 0x17: 1}
        assert log.by_reason() == {
            "cluster-mismatch": 1, "early-message": 1, "distance-exceeded": 1
        }
        assert len(log.in_window(0.0, 0.25)) == 2
        assert "3 alerts" in log.summary()

    def test_alert_log_rebuilds_aggregates_from_list(self):
        alerts = [Alert(0.1, "voltage", 0x99, "cluster-mismatch")]
        log = AlertLog(alerts=alerts)
        assert log.by_detector() == {"voltage": 1}


class TestEvalSuiteObservability:
    def test_suite_emits_experiment_metrics(self, vehicle_a_session):
        from repro.core.model import Metric
        from repro.eval.suite import SuiteInputs, run_detection_suite

        inputs = SuiteInputs.from_session(vehicle_a_session, train_fraction=0.5, seed=7)
        with obs.enabled() as (registry, events):
            run_detection_suite(inputs, Metric.MAHALANOBIS, seed=0)

        for experiment in ("false-positive", "hijack", "foreign"):
            counter = registry.get(
                "vprofile_eval_experiments_total", experiment=experiment
            )
            assert counter is not None and counter.value == 1
        suite_span = registry.get(
            obs.SPAN_METRIC, span="eval.suite",
            vehicle=inputs.vehicle.name, metric="mahalanobis",
        )
        assert suite_span is not None and suite_span.count == 1
        assert len(events.records(name="eval.experiment")) == 3
