"""The bounded time-series store: sampling, aggregation, memory bounds."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore, series_key


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("vprofile_messages_total", help="msgs")
    registry.gauge("vprofile_model_clusters", help="clusters").set(3)
    return registry


class TestSampling:
    def test_sample_snapshots_counters_and_gauges(self, registry):
        store = TimeSeriesStore(registry)
        registry.counter("vprofile_messages_total").inc(5)
        point = store.sample(now=10.0)
        assert point.ts == 10.0
        assert point.values["vprofile_messages_total"] == 5.0
        assert point.values["vprofile_model_clusters"] == 3.0

    def test_labelled_series_get_distinct_keys(self, registry):
        registry.counter("vprofile_anomalies_total", help="h",
                         reason="unknown-sa").inc(2)
        registry.counter("vprofile_anomalies_total", reason="cluster-mismatch").inc()
        store = TimeSeriesStore(registry)
        point = store.sample(now=0.0)
        assert point.values[
            series_key("vprofile_anomalies_total", {"reason": "unknown-sa"})
        ] == 2.0
        assert point.values[
            series_key("vprofile_anomalies_total", {"reason": "cluster-mismatch"})
        ] == 1.0

    def test_histogram_fans_out_into_facets(self, registry):
        histogram = registry.histogram(
            "vprofile_stream_latency_seconds", help="latency"
        )
        for x in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6):
            histogram.observe(x)
        store = TimeSeriesStore(registry)
        values = store.sample(now=0.0).values
        assert values["vprofile_stream_latency_seconds:count"] == 6.0
        assert values["vprofile_stream_latency_seconds:sum"] == pytest.approx(2.1)
        assert any(key.endswith(":p50") for key in values)

    def test_series_extraction_across_points(self, registry):
        store = TimeSeriesStore(registry)
        counter = registry.counter("vprofile_messages_total")
        for i in range(4):
            counter.inc()
            store.sample(now=float(i))
        series = store.series("vprofile_messages_total")
        assert series == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]
        assert "vprofile_messages_total" in store.keys()

    def test_follows_active_registry_when_unbound(self):
        from repro.obs.registry import set_registry

        registry = MetricsRegistry()
        registry.counter("vprofile_messages_total", help="msgs").inc(7)
        store = TimeSeriesStore()  # no registry pinned
        previous = set_registry(registry)
        try:
            point = store.sample(now=0.0)
        finally:
            set_registry(previous)
        assert point.values["vprofile_messages_total"] == 7.0

    def test_maybe_sample_rate_limits(self, registry):
        store = TimeSeriesStore(registry, interval_s=3600.0)
        assert store.due()
        assert store.maybe_sample(now=0.0) is not None
        # Immediately afterwards the interval has not elapsed.
        assert not store.due()
        assert store.maybe_sample(now=1.0) is None
        assert len(store) == 1

    def test_zero_interval_always_samples(self, registry):
        store = TimeSeriesStore(registry, interval_s=0.0)
        assert store.maybe_sample(now=0.0) is not None
        assert store.maybe_sample(now=0.1) is not None
        assert len(store) == 2


class TestMemoryBounds:
    """The acceptance criterion: both rings are provably bounded."""

    def test_fine_ring_is_bounded(self, registry):
        store = TimeSeriesStore(registry, capacity=16, downsample=4)
        for i in range(100):
            store.sample(now=float(i))
        assert len(store) == 16
        assert len(store.points) == 16
        # Oldest points were evicted: the window starts at 84.
        assert store.points[0].ts == 84.0

    def test_coarse_ring_is_bounded(self, registry):
        store = TimeSeriesStore(registry, capacity=8, downsample=2)
        for i in range(200):
            store.sample(now=float(i))
        assert len(store.aggregates) == 8

    def test_capacity_validation(self, registry):
        with pytest.raises(ObservabilityError):
            TimeSeriesStore(registry, capacity=0)
        with pytest.raises(ObservabilityError):
            TimeSeriesStore(registry, downsample=0)
        with pytest.raises(ObservabilityError):
            TimeSeriesStore(registry, interval_s=-1.0)


class TestDownsampling:
    def test_aggregate_carries_min_max_mean_last(self, registry):
        store = TimeSeriesStore(registry, capacity=64, downsample=4)
        gauge = registry.gauge("vprofile_stream_queue_depth", help="depth")
        for i, depth in enumerate((1.0, 5.0, 3.0, 2.0)):
            gauge.set(depth)
            store.sample(now=float(i))
        [aggregate] = store.aggregates
        key = "vprofile_stream_queue_depth"
        assert aggregate.n == 4
        assert aggregate.ts_first == 0.0 and aggregate.ts_last == 3.0
        assert aggregate.minimum[key] == 1.0
        assert aggregate.maximum[key] == 5.0
        assert aggregate.mean[key] == pytest.approx(2.75)
        assert aggregate.last[key] == 2.0

    def test_flush_folds_partial_window(self, registry):
        store = TimeSeriesStore(registry, capacity=64, downsample=10)
        for i in range(3):
            store.sample(now=float(i))
        assert store.aggregates == []
        store.flush()
        [aggregate] = store.aggregates
        assert aggregate.n == 3
        store.flush()  # idempotent on an empty pending list
        assert len(store.aggregates) == 1

    def test_series_appearing_mid_window_aggregates_its_points_only(
        self, registry
    ):
        store = TimeSeriesStore(registry, capacity=64, downsample=2)
        store.sample(now=0.0)
        registry.counter("vprofile_cache_hits_total", help="hits").inc(4)
        store.sample(now=1.0)
        [aggregate] = store.aggregates
        assert aggregate.mean["vprofile_cache_hits_total"] == 4.0


class TestPayload:
    def test_payload_shape_and_last_trimming(self, registry):
        store = TimeSeriesStore(registry, capacity=32, downsample=2)
        for i in range(6):
            store.sample(now=float(i))
        payload = store.to_payload(last=2)
        assert payload["capacity"] == 32
        assert payload["downsample"] == 2
        assert [p["ts"] for p in payload["fine"]] == [4.0, 5.0]
        assert len(payload["coarse"]) == 2
        assert set(payload["coarse"][0]) == {
            "ts_first", "ts_last", "n", "min", "max", "mean", "last"
        }

    def test_payload_is_json_serialisable(self, registry):
        import json

        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        store.flush()
        text = json.dumps(store.to_payload())
        assert "vprofile_messages_total" in text
