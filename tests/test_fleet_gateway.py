"""End-to-end gateway tests: REST, WebSocket, metrics, graceful drain.

The reference for every wire test is a :class:`TenantEngine` run directly
over the same chunk sequence — whatever comes back over HTTP must be the
byte-identical verdict stream, eviction, drain and restart included.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.acquisition.segmentation import assemble_stream
from repro.acquisition.trace import VoltageTrace
from repro.core.model import VProfileModel
from repro.fleet.gateway import (
    CHUNKS_METRIC,
    FRAMES_METRIC,
    WS_CONNECTIONS_METRIC,
    GatewayConfig,
    GatewayThread,
)
from repro.fleet.protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    client_ws_connect,
    encode_ws_frame,
    http_json,
    read_ws_frame,
)
from repro.fleet.tenant import (
    CaptureParams,
    TenantEngine,
    encode_chunk,
    model_to_b64,
)
from repro.obs.registry import MetricsRegistry
from repro.stream import ReplaySource


@pytest.fixture(scope="module")
def fleet_chunks(stream_test_session):
    stream = assemble_stream(stream_test_session.traces)
    short = VoltageTrace(
        counts=stream.counts[:60_000],
        sample_rate=stream.sample_rate,
        resolution_bits=stream.resolution_bits,
        bitrate=stream.bitrate,
        start_s=stream.start_s,
        metadata=dict(stream.metadata),
    )
    return list(ReplaySource(short, 8192).chunks())


@pytest.fixture(scope="module")
def model_b64(stream_model_file):
    path, _extraction = stream_model_file
    return model_to_b64(VProfileModel.load(path))


@pytest.fixture(scope="module")
def reference_verdicts(stream_vehicle, stream_model_file, fleet_chunks):
    """Verdicts of an uninterrupted local engine over the same chunks."""
    path, _extraction = stream_model_file
    engine = TenantEngine(
        "ref",
        vehicle="sterling",
        model=VProfileModel.load(path),
        params=CaptureParams.for_vehicle(stream_vehicle),
        margin=5.0,
    )
    verdicts = []
    for chunk in fleet_chunks:
        verdicts.append(engine.process_chunk(chunk))
    assert sum(len(v) for v in verdicts) > 0
    return verdicts  # one list per chunk


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def gateway(tmp_path, registry):
    config = GatewayConfig(state_dir=tmp_path / "state", max_resident=64)
    with GatewayThread(config, registry) as server:
        yield server


def call(server, method, path, payload=None):
    """One request over a fresh connection; ``(status, decoded body)``."""

    async def go():
        reader, writer = await asyncio.open_connection(server.host, server.port)
        try:
            return await http_json(reader, writer, method, path, payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    return asyncio.run(go())


def register(server, model_b64, tenant="v1", **extra):
    payload = {
        "tenant": tenant,
        "vehicle": "sterling",
        "sample_rate": 2_000_000.0,
        "margin": 5.0,
        "model_b64": model_b64,
        **extra,
    }
    return call(server, "POST", "/tenants", payload)


def flat(verdict_lists):
    return json.dumps(
        [v for chunk in verdict_lists for v in chunk], sort_keys=True
    )


class TestRegistration:
    def test_register_lists_and_status(self, gateway, model_b64):
        status, body = register(gateway, model_b64)
        assert status == 200
        assert body["tenant"] == "v1" and body["resident"]
        status, body = call(gateway, "GET", "/tenants")
        assert [t["tenant"] for t in body["tenants"]] == ["v1"]
        status, body = call(gateway, "GET", "/tenants/v1")
        assert status == 200 and body["chunks"] == 0

    def test_duplicate_is_409(self, gateway, model_b64):
        register(gateway, model_b64)
        status, body = register(gateway, model_b64)
        assert status == 409
        assert "already registered" in body["error"]

    def test_bad_vehicle_and_bad_tenant_id_are_400(self, gateway, model_b64):
        status, body = register(gateway, model_b64, vehicle="tractor")
        assert status == 400 and "unknown vehicle" in body["error"]
        status, body = register(gateway, model_b64, tenant="../escape")
        assert status == 400 and "invalid tenant id" in body["error"]

    def test_register_without_model_or_train_is_400(self, gateway):
        status, body = call(gateway, "POST", "/tenants", {"tenant": "v1"})
        assert status == 400
        assert "model_b64" in body["error"]

    def test_train_duration_cap_is_enforced(self, gateway):
        status, body = call(
            gateway,
            "POST",
            "/tenants",
            {"tenant": "v1", "train": {"duration_s": 1e6}},
        )
        assert status == 400
        assert "train duration" in body["error"]

    def test_unknown_tenant_is_404(self, gateway):
        status, body = call(gateway, "GET", "/tenants/ghost")
        assert status == 404
        assert "unknown tenant" in body["error"]

    def test_unknown_route_and_bad_method(self, gateway):
        status, body = call(gateway, "GET", "/nope")
        assert status == 404 and "/fleet" in body["routes"]
        status, body = call(gateway, "PUT", "/tenants")
        assert status == 405


class TestIngest:
    def test_rest_verdicts_match_local_engine(
        self, gateway, model_b64, fleet_chunks, reference_verdicts
    ):
        register(gateway, model_b64)
        collected = []
        for index, chunk in enumerate(fleet_chunks):
            status, body = call(
                gateway, "POST", "/tenants/v1/ingest", encode_chunk(chunk)
            )
            assert status == 200
            assert body["chunk"] == index
            collected.append(body["verdicts"])
        assert flat(collected) == flat(reference_verdicts)

    def test_out_of_order_chunk_is_409(self, gateway, model_b64, fleet_chunks):
        register(gateway, model_b64)
        call(gateway, "POST", "/tenants/v1/ingest", encode_chunk(fleet_chunks[0]))
        status, body = call(
            gateway, "POST", "/tenants/v1/ingest", encode_chunk(fleet_chunks[0])
        )
        assert status == 409
        assert "out-of-order" in body["error"]

    def test_verdict_ring_and_query_validation(
        self, gateway, model_b64, fleet_chunks, reference_verdicts
    ):
        register(gateway, model_b64)
        for chunk in fleet_chunks:
            call(gateway, "POST", "/tenants/v1/ingest", encode_chunk(chunk))
        total = sum(len(v) for v in reference_verdicts)
        status, body = call(
            gateway, "GET", f"/tenants/v1/verdicts?since={total - 2}&limit=50"
        )
        assert status == 200
        assert [v["seq"] for v in body["verdicts"]] == [total - 2, total - 1]
        status, body = call(gateway, "GET", "/tenants/v1/verdicts?since=abc")
        assert status == 400
        assert "'since'" in body["error"]

    def test_health_endpoint(self, gateway, model_b64, fleet_chunks):
        register(gateway, model_b64)
        for chunk in fleet_chunks:
            call(gateway, "POST", "/tenants/v1/ingest", encode_chunk(chunk))
        status, body = call(gateway, "GET", "/tenants/v1/health")
        assert status == 200
        assert body["overall"] != "unavailable"
        assert body["sources"]

    def test_evict_endpoint_is_invisible_in_verdicts(
        self, gateway, model_b64, fleet_chunks, reference_verdicts
    ):
        register(gateway, model_b64)
        halfway = len(fleet_chunks) // 2
        collected = []
        for index, chunk in enumerate(fleet_chunks):
            if index == halfway:
                status, body = call(gateway, "POST", "/tenants/v1/evict")
                assert status == 200 and body["resident"] is False
                status, body = call(gateway, "GET", "/tenants/v1")
                assert body["evicted"] is True
            status, body = call(
                gateway, "POST", "/tenants/v1/ingest", encode_chunk(chunk)
            )
            assert status == 200
            collected.append(body["verdicts"])
        assert flat(collected) == flat(reference_verdicts)

    def test_delete_forgets_tenant(self, gateway, model_b64):
        register(gateway, model_b64)
        status, body = call(gateway, "DELETE", "/tenants/v1")
        assert status == 200 and body["removed"]
        status, _body = call(gateway, "GET", "/tenants/v1")
        assert status == 404


class TestWebSocket:
    def test_ws_stream_matches_local_engine(
        self, gateway, registry, model_b64, fleet_chunks, reference_verdicts
    ):
        register(gateway, model_b64)

        async def session():
            reader, writer = await asyncio.open_connection(
                gateway.host, gateway.port
            )
            try:
                await client_ws_connect(reader, writer, "/tenants/v1/stream")
                collected = []
                for chunk in fleet_chunks:
                    frame = json.dumps(
                        {"type": "chunk", **encode_chunk(chunk)}
                    ).encode()
                    writer.write(
                        encode_ws_frame(
                            frame, opcode=OP_TEXT, mask_key=b"\x10\x20\x30\x40"
                        )
                    )
                    await writer.drain()
                    opcode, payload = await read_ws_frame(reader)
                    assert opcode == OP_TEXT
                    reply = json.loads(payload)
                    assert reply["type"] == "verdicts"
                    collected.append(reply["verdicts"])
                # Ping/pong keep-alives work mid-session.
                writer.write(
                    encode_ws_frame(
                        b"hb", opcode=OP_PING, mask_key=b"\x01\x02\x03\x04"
                    )
                )
                await writer.drain()
                assert await read_ws_frame(reader) == (OP_PONG, b"hb")
                # Clean close handshake is echoed.
                writer.write(
                    encode_ws_frame(
                        b"", opcode=OP_CLOSE, mask_key=b"\x01\x02\x03\x04"
                    )
                )
                await writer.drain()
                opcode, _payload = await read_ws_frame(reader)
                assert opcode == OP_CLOSE
                return collected
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

        collected = asyncio.run(session())
        assert flat(collected) == flat(reference_verdicts)
        # The server decrements the gauge in its handler's cleanup, which
        # may land just after the client saw the close echo.
        gauge = registry.get(WS_CONNECTIONS_METRIC)
        assert gauge is not None
        deadline = time.monotonic() + 5.0
        while gauge.value != 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert gauge.value == 0

    def test_ws_upgrade_for_unknown_tenant_is_404(self, gateway):
        async def attempt():
            reader, writer = await asyncio.open_connection(
                gateway.host, gateway.port
            )
            try:
                with pytest.raises(Exception, match="refused with status 404"):
                    await client_ws_connect(reader, writer, "/tenants/ghost/stream")
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

        asyncio.run(attempt())

    def test_ws_bad_frame_yields_error_reply(self, gateway, model_b64):
        register(gateway, model_b64)

        async def session():
            reader, writer = await asyncio.open_connection(
                gateway.host, gateway.port
            )
            try:
                await client_ws_connect(reader, writer, "/tenants/v1/stream")
                writer.write(
                    encode_ws_frame(
                        b"not json", mask_key=b"\x01\x02\x03\x04"
                    )
                )
                await writer.drain()
                _opcode, payload = await read_ws_frame(reader)
                return json.loads(payload)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

        reply = asyncio.run(session())
        assert reply["type"] == "error"
        assert "bad frame" in reply["error"]


class TestObservability:
    def test_fleet_summary_and_metrics(
        self, gateway, registry, model_b64, fleet_chunks
    ):
        register(gateway, model_b64)
        for chunk in fleet_chunks:
            call(gateway, "POST", "/tenants/v1/ingest", encode_chunk(chunk))
        status, body = call(gateway, "GET", "/fleet")
        assert status == 200
        assert body["tenants"] == 1 and body["resident"] == 1
        assert body["chunks"] == len(fleet_chunks)
        assert body["frames"] > 0
        assert body["verdict_latency"]["count"] == len(fleet_chunks)
        assert body["verdict_latency"]["p99"] >= body["verdict_latency"]["p50"]
        assert registry.get(CHUNKS_METRIC).value == len(fleet_chunks)
        assert registry.get(FRAMES_METRIC).value == body["frames"]

        async def scrape():
            reader, writer = await asyncio.open_connection(
                gateway.host, gateway.port
            )
            try:
                from repro.fleet.protocol import http_request

                return await http_request(reader, writer, "GET", "/metrics")
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

        _status, headers, text = asyncio.run(scrape())
        assert headers["content-type"].startswith("text/plain")
        exposition = text.decode()
        assert "# TYPE vprofile_fleet_chunks_total counter" in exposition
        assert 'vprofile_fleet_tenants{state="resident"} 1' in exposition


class TestGracefulDrain:
    def test_no_verdicts_lost_across_drain_and_restart(
        self, tmp_path, model_b64, fleet_chunks, reference_verdicts
    ):
        """Satellite guarantee: accepted chunks survive a drain; the
        restarted gateway continues the verdict stream byte-identically."""
        state = tmp_path / "state"
        halfway = len(fleet_chunks) // 2
        collected = []
        with GatewayThread(
            GatewayConfig(state_dir=state), MetricsRegistry()
        ) as first:
            register(first, model_b64)
            for chunk in fleet_chunks[:halfway]:
                status, body = call(
                    first, "POST", "/tenants/v1/ingest", encode_chunk(chunk)
                )
                assert status == 200
                collected.append(body["verdicts"])
            assert first.drain() == 1
            # Draining gateway refuses new work but stays queryable.
            status, body = call(
                first,
                "POST",
                "/tenants/v1/ingest",
                encode_chunk(fleet_chunks[halfway]),
            )
            assert status == 503 and "draining" in body["error"]
            status, _body = register(first, model_b64, tenant="late")
            assert status == 503
            status, body = call(first, "GET", "/fleet")
            assert body["draining"] is True and body["resident"] == 0

        with GatewayThread(
            GatewayConfig(state_dir=state), MetricsRegistry()
        ) as second:
            status, body = call(second, "GET", "/tenants")
            assert [t["tenant"] for t in body["tenants"]] == ["v1"]
            assert body["tenants"][0]["evicted"] is True
            for chunk in fleet_chunks[halfway:]:
                status, body = call(
                    second, "POST", "/tenants/v1/ingest", encode_chunk(chunk)
                )
                assert status == 200
                collected.append(body["verdicts"])
        assert flat(collected) == flat(reference_verdicts)

    @pytest.mark.slow
    def test_sigterm_drains_the_serve_process(
        self, tmp_path, model_b64, fleet_chunks, reference_verdicts
    ):
        """``repro fleet serve`` + SIGTERM flushes in-flight tenants; a
        restart picks the fleet up with zero verdicts lost."""
        state = tmp_path / "state"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli",
                "fleet", "serve",
                "--address", "127.0.0.1:0",
                "--state-dir", str(state),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            banner = process.stdout.readline()
            assert "fleet gateway on http://" in banner
            address = banner.split("http://", 1)[1].split(" ", 1)[0]
            host, port_text = address.rsplit(":", 1)
            server = type(
                "Addr", (), {"host": host, "port": int(port_text)}
            )()
            halfway = len(fleet_chunks) // 2
            collected = []
            register(server, model_b64)
            for chunk in fleet_chunks[:halfway]:
                status, body = call(
                    server, "POST", "/tenants/v1/ingest", encode_chunk(chunk)
                )
                assert status == 200
                collected.append(body["verdicts"])
            process.send_signal(signal.SIGTERM)
            _stdout, stderr = process.communicate(timeout=60)
            assert process.returncode == 0
            assert "drained: 1 tenant checkpoint flushed" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        with GatewayThread(
            GatewayConfig(state_dir=state), MetricsRegistry()
        ) as revived:
            for chunk in fleet_chunks[halfway:]:
                status, body = call(
                    revived, "POST", "/tenants/v1/ingest", encode_chunk(chunk)
                )
                assert status == 200
                collected.append(body["verdicts"])
        assert flat(collected) == flat(reference_verdicts)


class TestBudgetOverWire:
    def test_many_tenants_share_a_small_residency_budget(
        self, tmp_path, model_b64, fleet_chunks
    ):
        config = GatewayConfig(state_dir=tmp_path / "state", max_resident=2)
        with GatewayThread(config, MetricsRegistry()) as server:
            for index in range(4):
                status, _body = register(
                    server, model_b64, tenant=f"v{index}"
                )
                assert status == 200
            status, body = call(server, "GET", "/fleet")
            assert body["tenants"] == 4
            assert body["resident"] == 2
            assert body["evictions"] >= 2
            # Every tenant still answers ingest (rehydrating on demand).
            for index in range(4):
                status, body = call(
                    server,
                    "POST",
                    f"/tenants/v{index}/ingest",
                    encode_chunk(fleet_chunks[0]),
                )
                assert status == 200
