"""Algorithm 2: model training and SA clustering."""

import numpy as np
import pytest

from repro.core.distances import euclidean_distances, mahalanobis_distances
from repro.core.model import Metric
from repro.core.training import (
    TrainingData,
    cluster_sas_by_distance,
    train_from_grouped,
    train_model,
)
from repro.errors import TrainingError


def synthetic_data(rng, *, n_per_sa=60, dim=6):
    """Three ECUs; ECU 'A' owns two SAs with identical statistics."""
    centers = {
        0x10: np.zeros(dim),
        0x11: np.zeros(dim),          # same ECU as 0x10
        0x20: np.full(dim, 10.0),
        0x30: np.full(dim, -10.0),
    }
    vectors, sas = [], []
    for sa, center in centers.items():
        vectors.append(center + rng.normal(scale=0.5, size=(n_per_sa, dim)))
        sas.extend([sa] * n_per_sa)
    return TrainingData(np.concatenate(vectors), np.array(sas))


LUT = {0x10: "A", 0x11: "A", 0x20: "B", 0x30: "C"}


class TestTrainingData:
    def test_length_mismatch(self):
        with pytest.raises(TrainingError):
            TrainingData(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_empty(self):
        with pytest.raises(TrainingError):
            TrainingData(np.zeros((0, 2)), np.zeros(0, dtype=int))


class TestTrainWithLut:
    def test_clusters_follow_lut(self, rng):
        model = train_model(synthetic_data(rng), metric="euclidean", sa_clusters=LUT)
        assert [c.name for c in model.clusters] == ["A", "B", "C"]
        assert model.clusters[0].count == 120  # both SAs of ECU A
        assert model.sa_to_cluster == {0x10: 0, 0x11: 0, 0x20: 1, 0x30: 2}

    def test_cluster_means(self, rng):
        model = train_model(synthetic_data(rng), metric="euclidean", sa_clusters=LUT)
        b = model.cluster_named("B")
        assert np.allclose(b.mean, 10.0, atol=0.3)

    def test_max_distance_is_training_max(self, rng):
        data = synthetic_data(rng)
        model = train_model(data, metric="euclidean", sa_clusters=LUT)
        for index, cluster in enumerate(model.clusters):
            rows = np.array(
                [model.sa_to_cluster[int(sa)] == index for sa in data.source_addresses]
            )
            distances = euclidean_distances(data.vectors[rows], cluster.mean)
            assert cluster.max_distance == pytest.approx(distances.max())

    def test_mahalanobis_stores_covariances(self, rng):
        model = train_model(synthetic_data(rng), metric="mahalanobis", sa_clusters=LUT)
        for cluster in model.clusters:
            assert cluster.covariance is not None
            assert np.allclose(
                cluster.inv_covariance @ cluster.covariance,
                np.eye(model.dim),
                atol=1e-6,
            )

    def test_mahalanobis_max_distance(self, rng):
        data = synthetic_data(rng)
        model = train_model(data, metric="mahalanobis", sa_clusters=LUT)
        cluster = model.clusters[1]
        rows = data.source_addresses == 0x20
        distances = mahalanobis_distances(
            data.vectors[rows], cluster.mean, cluster.inv_covariance
        )
        assert cluster.max_distance == pytest.approx(distances.max())

    def test_unknown_sa_rejected(self, rng):
        with pytest.raises(TrainingError):
            train_model(synthetic_data(rng), sa_clusters={0x10: "A"})

    def test_min_cluster_size(self, rng):
        data = TrainingData(np.zeros((3, 2)), np.array([1, 1, 2]))
        with pytest.raises(TrainingError):
            train_model(data, metric="euclidean", sa_clusters={1: "A", 2: "B"})


class TestClusterByDistance:
    def test_merges_same_ecu_sas(self, rng):
        model = train_from_grouped(synthetic_data(rng), metric="euclidean")
        assert model.n_clusters == 3
        # 0x10 and 0x11 land in the same cluster.
        assert model.cluster_of_sa(0x10) == model.cluster_of_sa(0x11)
        assert model.cluster_of_sa(0x20) != model.cluster_of_sa(0x10)

    def test_explicit_threshold(self):
        means = {1: np.array([0.0]), 2: np.array([0.1]), 3: np.array([5.0])}
        clusters = cluster_sas_by_distance(means, threshold=1.0)
        groups = sorted(tuple(v) for v in clusters.values())
        assert groups == [(1, 2), (3,)]

    def test_gap_heuristic(self):
        means = {
            1: np.array([0.0]),
            2: np.array([0.01]),
            3: np.array([10.0]),
            4: np.array([10.01]),
        }
        clusters = cluster_sas_by_distance(means)
        groups = sorted(tuple(v) for v in clusters.values())
        assert groups == [(1, 2), (3, 4)]

    def test_no_gap_means_singletons(self):
        means = {1: np.array([0.0]), 2: np.array([1.0]), 3: np.array([2.0])}
        clusters = cluster_sas_by_distance(means)
        assert len(clusters) == 3

    def test_single_sa(self):
        assert cluster_sas_by_distance({7: np.array([1.0])}) == {"cluster0": [7]}

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            cluster_sas_by_distance({})


class TestRealCapture:
    def test_auto_clusters_match_vehicle(self, veh_a, vehicle_a_edge_sets):
        """ClusterByDist discovers the vehicle's true ECU partition."""
        data = TrainingData.from_edge_sets(vehicle_a_edge_sets)
        model = train_from_grouped(data, metric="euclidean")
        assert model.n_clusters == len(veh_a.ecus)
        # Every pair of SAs of the same ECU shares a cluster.
        for ecu in veh_a.ecus:
            sas = ecu.source_addresses
            clusters = {model.cluster_of_sa(sa) for sa in sas}
            assert len(clusters) == 1
