"""Distance metrics and streaming statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distances import (
    RunningStats,
    euclidean_distance,
    euclidean_distances,
    invert_covariance,
    mahalanobis_distance,
    mahalanobis_distances,
)
from repro.errors import SingularCovarianceError, TrainingError

vectors = arrays(
    np.float64,
    st.integers(2, 6),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_zero_for_identical(self):
        assert euclidean_distance([1.5, 2.5], [1.5, 2.5]) == 0.0

    @given(vectors)
    def test_symmetric(self, x):
        y = x + 1.0
        assert euclidean_distance(x, y) == pytest.approx(euclidean_distance(y, x))

    def test_batch_matches_single(self):
        points = np.random.default_rng(0).normal(size=(10, 4))
        center = np.zeros(4)
        batch = euclidean_distances(points, center)
        singles = [euclidean_distance(p, center) for p in points]
        assert np.allclose(batch, singles)


class TestMahalanobis:
    def test_identity_covariance_reduces_to_euclidean(self):
        x = np.array([1.0, 2.0, 3.0])
        mean = np.zeros(3)
        inv = np.eye(3)
        assert mahalanobis_distance(x, mean, inv) == pytest.approx(
            euclidean_distance(x, mean)
        )

    def test_scales_by_variance(self):
        """A 2-sigma deviation scores 2 regardless of the actual sigma."""
        inv = np.diag([1 / 0.25, 1.0])  # var 0.25 in dim 0
        assert mahalanobis_distance([1.0, 0.0], [0.0, 0.0], inv) == pytest.approx(2.0)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(20, 3))
        mean = rng.normal(size=3)
        cov = np.cov(rng.normal(size=(100, 3)).T)
        inv = np.linalg.inv(cov)
        batch = mahalanobis_distances(points, mean, inv)
        singles = [mahalanobis_distance(p, mean, inv) for p in points]
        assert np.allclose(batch, singles)

    def test_whitened_data_has_unit_scale(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(50_000, 4)) * np.array([1.0, 5.0, 0.1, 2.0])
        mean = data.mean(axis=0)
        cov = np.cov(data.T, bias=True)
        inv = np.linalg.inv(cov)
        d2 = mahalanobis_distances(data, mean, inv) ** 2
        assert d2.mean() == pytest.approx(4.0, rel=0.05)  # chi^2_4 mean


class TestInvertCovariance:
    def test_inverts(self):
        cov = np.array([[2.0, 0.3], [0.3, 1.0]])
        inv = invert_covariance(cov)
        assert np.allclose(inv @ cov, np.eye(2), atol=1e-10)

    def test_singular_detected(self):
        cov = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(SingularCovarianceError):
            invert_covariance(cov)

    def test_shrinkage_rescues_singular(self):
        cov = np.array([[1.0, 1.0], [1.0, 1.0]])
        inv = invert_covariance(cov, shrinkage=0.1)
        assert np.all(np.isfinite(inv))

    def test_rejects_nonsquare(self):
        with pytest.raises(TrainingError):
            invert_covariance(np.zeros((2, 3)))

    def test_rejects_bad_shrinkage(self):
        with pytest.raises(TrainingError):
            invert_covariance(np.eye(2), shrinkage=2.0)


class TestRunningStats:
    def test_from_data_matches_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(40, 5))
        stats = RunningStats.from_data(data)
        assert np.allclose(stats.mean, data.mean(axis=0))
        assert np.allclose(stats.covariance, np.cov(data.T, bias=True))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 30), st.integers(2, 4), st.integers(0, 10_000))
    def test_incremental_equals_batch(self, n, d, seed):
        """Eq. 5.1 streaming updates match batch statistics exactly."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, d))
        stats = RunningStats(d)
        for row in data:
            stats.update(row)
        batch = RunningStats.from_data(data)
        assert np.allclose(stats.mean, batch.mean)
        assert np.allclose(stats.covariance, batch.covariance, atol=1e-10)

    def test_sherman_morrison_matches_direct_inverse(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(30, 4))
        stats = RunningStats.from_data(data)
        stats.inverse_covariance()  # prime the cache
        for row in rng.normal(size=(20, 4)):
            stats.update(row)
        direct = np.linalg.inv(stats.covariance)
        assert np.allclose(stats.inverse_covariance(), direct, rtol=1e-6, atol=1e-9)

    def test_covariance_requires_data(self):
        with pytest.raises(TrainingError):
            RunningStats(3).covariance

    def test_update_checks_shape(self):
        stats = RunningStats(3)
        with pytest.raises(TrainingError):
            stats.update(np.zeros(4))

    def test_rejects_bad_dimension(self):
        with pytest.raises(TrainingError):
            RunningStats(0)
