"""Continuous-capture segmentation and stream assembly."""

import numpy as np
import pytest

from repro.acquisition.segmentation import (
    SegmentationConfig,
    assemble_stream,
    segment_capture,
)
from repro.acquisition.trace import VoltageTrace
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set
from repro.errors import AcquisitionError


@pytest.fixture(scope="module")
def message_traces(sterling_session):
    """Per-message traces with enough spacing to assemble cleanly."""
    return sterling_session.traces[:40]


class TestAssemble:
    def test_stream_length_covers_all_messages(self, message_traces):
        stream = assemble_stream(message_traces)
        last = message_traces[-1]
        expected_end = last.start_s + last.duration_s
        assert stream.duration_s == pytest.approx(
            expected_end - message_traces[0].start_s, rel=1e-6
        )

    def test_idle_gaps_are_recessive(self, message_traces):
        stream = assemble_stream(message_traces)
        first = message_traces[0]
        gap_start = len(first) + 5
        config = ExtractionConfig.for_trace(stream)
        # Just past the first message the stream should sit below the
        # dominant threshold (idle).
        assert stream.counts[gap_start + 50] < config.threshold

    def test_empty_rejected(self):
        with pytest.raises(AcquisitionError):
            assemble_stream([])

    def test_overlap_rejected(self, message_traces):
        from dataclasses import replace

        a = message_traces[0]
        b = replace(message_traces[1], start_s=a.start_s + 1e-6)
        with pytest.raises(AcquisitionError):
            assemble_stream([a, b])


class TestSegment:
    def test_round_trip_counts(self, message_traces):
        """assemble -> segment recovers every message's samples."""
        stream = assemble_stream(message_traces)
        segments = segment_capture(stream)
        assert len(segments) == len(message_traces)
        for original, segment in zip(message_traces, segments):
            # The segment must contain the original's dominant region.
            config = ExtractionConfig.for_trace(original)
            original_first = np.nonzero(
                np.asarray(original.counts) >= config.threshold
            )[0][0]
            segment_first = np.nonzero(
                np.asarray(segment.counts) >= config.threshold
            )[0][0]
            o = np.asarray(original.counts)[original_first:]
            s = np.asarray(segment.counts)[segment_first:]
            length = min(o.size, s.size)
            assert np.array_equal(o[:length], s[:length])

    def test_round_trip_extraction(self, message_traces):
        """Edge sets extracted from segments match the originals."""
        stream = assemble_stream(message_traces)
        segments = segment_capture(stream)
        config = ExtractionConfig.for_trace(message_traces[0])
        for original, segment in zip(message_traces[:15], segments[:15]):
            a = extract_edge_set(original, config)
            b = extract_edge_set(segment, config)
            assert a.source_address == b.source_address
            assert np.array_equal(a.vector, b.vector)

    def test_start_times_preserved(self, message_traces):
        stream = assemble_stream(message_traces)
        segments = segment_capture(stream)
        for original, segment in zip(message_traces, segments):
            assert segment.start_s == pytest.approx(original.start_s, abs=1e-5)

    def test_silent_stream_yields_nothing(self):
        silent = VoltageTrace(
            counts=np.zeros(50_000, dtype=np.int32),
            sample_rate=10e6,
            resolution_bits=16,
        )
        assert segment_capture(silent) == []

    def test_glitch_discarded(self):
        counts = np.zeros(50_000, dtype=np.int32)
        counts[10_000:10_004] = 50_000  # 4-sample spike, way under a frame
        glitchy = VoltageTrace(counts=counts, sample_rate=10e6, resolution_bits=16)
        assert segment_capture(glitchy) == []

    def test_config_validation(self):
        with pytest.raises(AcquisitionError):
            SegmentationConfig(threshold=100.0, min_idle_bits=0)
