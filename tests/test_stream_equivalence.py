"""Chunk-boundary equivalence: streaming extraction == batch extraction.

The incremental segmenter/extractor must produce *byte-identical* edge
sets to ``segment_capture`` + ``extract_many`` on the concatenated
stream, no matter where the chunk boundaries fall — sub-bit chunks,
chunks that split a frame, chunks spanning many frames, and irregular
random chunkings all land on the same cut points.
"""

from __future__ import annotations

import json
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.acquisition.segmentation import assemble_stream, segment_capture
from repro.acquisition.trace import VoltageTrace
from repro.core.edge_extraction import extract_many
from repro.core.model import VProfileModel
from repro.fleet import CaptureParams, TenantEngine
from repro.stream import ReplaySource, SampleChunk, StreamingExtractor


@pytest.fixture(scope="module")
def full_stream(stream_test_session):
    return assemble_stream(stream_test_session.traces)


@pytest.fixture(scope="module")
def short_stream(full_stream):
    """~10 frames' worth of samples, cheap enough for 1-sample chunks."""
    counts = full_stream.counts[:60_000]
    return VoltageTrace(
        counts=counts,
        sample_rate=full_stream.sample_rate,
        resolution_bits=full_stream.resolution_bits,
        bitrate=full_stream.bitrate,
        start_s=full_stream.start_s,
        metadata=dict(full_stream.metadata),
    )


def _batch_reference(stream):
    traces = segment_capture(stream)
    return extract_many(traces, None, skip_failures=True), traces


def _stream_messages(stream, chunk_sizes):
    """Push ``stream`` through a fresh extractor with the given cuts."""
    extractor = StreamingExtractor(metadata=dict(stream.metadata))
    messages = []
    position = 0
    for seq, size in enumerate(chunk_sizes):
        counts = stream.counts[position : position + size]
        messages.extend(
            extractor.push(
                SampleChunk(
                    counts=counts,
                    seq=seq,
                    start_s=stream.start_s + position / stream.sample_rate,
                    sample_rate=stream.sample_rate,
                    resolution_bits=stream.resolution_bits,
                    bitrate=stream.bitrate,
                )
            )
        )
        position += len(counts)
        if position >= len(stream):
            break
    messages.extend(extractor.finish())
    return messages


def _assert_equivalent(messages, reference):
    edge_sets, traces = reference
    assert len(messages) == len(edge_sets)
    for message, expected, trace in zip(messages, edge_sets, traces):
        assert message.edge_set.source_address == expected.source_address
        np.testing.assert_array_equal(message.edge_set.vector, expected.vector)
        assert message.start_s == pytest.approx(trace.start_s, abs=0.0)


@pytest.mark.parametrize("chunk_samples", [7, 40, 333, 4096, 100_000])
def test_fixed_chunk_sizes_match_batch(full_stream, chunk_samples):
    reference = _batch_reference(full_stream)
    n_chunks = -(-len(full_stream) // chunk_samples)
    messages = _stream_messages(full_stream, [chunk_samples] * n_chunks)
    _assert_equivalent(messages, reference)


def test_whole_stream_in_one_chunk(full_stream):
    reference = _batch_reference(full_stream)
    messages = _stream_messages(full_stream, [len(full_stream)])
    _assert_equivalent(messages, reference)


@pytest.mark.parametrize("chunk_samples", [1, 3])
def test_sub_sample_chunks_match_batch(short_stream, chunk_samples):
    """Even one-sample chunks reproduce the batch cut points."""
    reference = _batch_reference(short_stream)
    assert reference[0], "short stream must contain extractable frames"
    n_chunks = -(-len(short_stream) // chunk_samples)
    messages = _stream_messages(short_stream, [chunk_samples] * n_chunks)
    _assert_equivalent(messages, reference)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    cuts=st.lists(
        st.integers(min_value=1, max_value=59_999), max_size=12, unique=True
    )
)
def test_random_irregular_chunking_matches_batch(short_stream, cuts):
    """Property: any partition of the stream yields identical edge sets."""
    total = len(short_stream)
    bounds = [0, *sorted(cuts), total]
    sizes = [hi - lo for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
    reference = _batch_reference(short_stream)
    messages = _stream_messages(short_stream, sizes)
    _assert_equivalent(messages, reference)


# ----------------------------------------------------------------------
# Fleet eviction equivalence: an evicted-then-rehydrated tenant engine
# reproduces the uninterrupted verdict sequence byte-for-byte.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_chunks(short_stream):
    return list(ReplaySource(short_stream, 4096).chunks())


def _fresh_engine(stream_vehicle, stream_model_file):
    path, _extraction = stream_model_file
    return TenantEngine(
        "prop",
        vehicle="sterling",
        model=VProfileModel.load(path),
        params=CaptureParams.for_vehicle(stream_vehicle),
        margin=5.0,
        online_update=True,
    )


def _verdict_bytes(verdicts):
    return json.dumps(verdicts, sort_keys=True)


@pytest.fixture(scope="module")
def uninterrupted_verdicts(stream_vehicle, stream_model_file, fleet_chunks):
    engine = _fresh_engine(stream_vehicle, stream_model_file)
    verdicts = []
    for chunk in fleet_chunks:
        verdicts.extend(engine.process_chunk(chunk))
    assert verdicts, "reference run must produce verdicts"
    return _verdict_bytes(verdicts)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    evict_after=st.sets(
        st.integers(min_value=-1, max_value=13), min_size=1, max_size=4
    )
)
def test_eviction_is_invisible_in_the_verdict_stream(
    stream_vehicle, stream_model_file, fleet_chunks,
    uninterrupted_verdicts, evict_after,
):
    """Property: evicting (checkpoint + rehydrate) at any set of chunk
    boundaries — including before the first chunk (-1) — leaves the
    verdict sequence byte-identical to the uninterrupted run, online
    profile updates included."""
    engine = _fresh_engine(stream_vehicle, stream_model_file)
    verdicts = []
    with tempfile.TemporaryDirectory() as spill:
        if -1 in evict_after:
            engine.checkpoint(spill)
            engine = TenantEngine.rehydrate(spill)
        for index, chunk in enumerate(fleet_chunks):
            verdicts.extend(engine.process_chunk(chunk))
            if index in evict_after:
                engine.checkpoint(spill)
                engine = TenantEngine.rehydrate(spill)
    assert _verdict_bytes(verdicts) == uninterrupted_verdicts


def test_state_roundtrip_at_every_boundary(short_stream):
    """Serialising and restoring the extractor between every chunk is
    invisible in the output — the checkpoint/resume guarantee."""
    reference = _batch_reference(short_stream)
    chunk = 4096
    source = ReplaySource(short_stream, chunk)
    extractor = StreamingExtractor(metadata=dict(short_stream.metadata))
    messages = []
    for sample_chunk in source.chunks():
        if sample_chunk.seq > 0:  # checkpoints only exist after ingest begins
            state = extractor.state_dict()
            restored = StreamingExtractor(
                extractor.extraction, metadata=dict(short_stream.metadata)
            )
            restored.load_state(state)
            extractor = restored
        messages.extend(extractor.push(sample_chunk))
    messages.extend(extractor.finish())
    _assert_equivalent(messages, reference)
