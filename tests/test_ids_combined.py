"""Combined IDS: the Section 6.1 deployment, end to end."""

import numpy as np
import pytest

from repro.can.frame import CanFrame
from repro.core import PipelineConfig, VProfilePipeline
from repro.errors import DetectionError
from repro.ids import CombinedIds, ObservedMessage


@pytest.fixture(scope="module")
def trained_ids(vehicle_a_session, veh_a):
    # Chronological split: the timing monitors need unbroken streams.
    train, test = vehicle_a_session.split_time(0.5)
    ids = CombinedIds(
        VProfilePipeline(PipelineConfig(margin=8.0, sa_clusters=veh_a.sa_clusters))
    )
    ids.fit([ObservedMessage.from_trace(t) for t in train])
    return ids, test


class TestCombinedIds:
    def test_clean_replay_quiet(self, trained_ids):
        ids, test = trained_ids
        verdicts = [
            ids.process(ObservedMessage.from_trace(t)) for t in test[:500]
        ]
        anomaly_rate = np.mean([v.is_anomaly for v in verdicts])
        assert anomaly_rate < 0.03

    def test_voltage_channel_catches_hijack(self, trained_ids, veh_a):
        """A hijacked ECU transmits under another ECU's SA: the forged SA
        is inside the waveform, and the voltage fingerprint disagrees."""
        ids, test = trained_ids
        genuine = next(t for t in test if t.metadata["sender"] == "ECU2")
        original = genuine.metadata["frame"]
        forged_frame = CanFrame(
            can_id=(original.can_id & ~0xFF) | 0x17,  # claim ECU3's SA
            data=original.data,
            extended=True,
        )
        # The hijacked ECU2 transmits the forged frame itself.
        chain = veh_a.capture_chain()
        forged_trace = chain.capture_frame(
            forged_frame,
            veh_a.transceiver_of("ECU2"),
            rng=np.random.default_rng(5),
            start_s=genuine.start_s,
        )
        verdict = ids.process(
            ObservedMessage(
                timestamp_s=genuine.start_s, frame=forged_frame, trace=forged_trace
            )
        )
        assert verdict.is_anomaly
        assert any(a.detector == "voltage" for a in verdict.alerts)

    def test_period_channel_catches_flood(self, trained_ids):
        """Message flooding trips the period monitor without analog data."""
        ids, test = trained_ids
        template = test[0].metadata["frame"]
        base = test[-1].start_s + 1.0
        alerts = 0
        for k in range(10):
            message = ObservedMessage(
                timestamp_s=base + k * 1e-4,  # 0.1 ms apart: a flood
                frame=template,
                trace=None,
            )
            verdict = ids.process(message)
            alerts += sum(a.detector == "period" for a in verdict.alerts)
        assert alerts >= 8

    def test_payload_channel_catches_forged_content(self, trained_ids):
        """Forged constant/bounded bytes trip the payload monitor."""
        ids, test = trained_ids
        template = test[0]
        original = template.metadata["frame"]
        forged_frame = CanFrame(
            can_id=original.can_id,
            data=b"\xff" * len(original.data),
            extended=True,
        )
        message = ObservedMessage(
            timestamp_s=template.start_s + 100.0, frame=forged_frame, trace=None
        )
        verdict = ids.process(message)
        assert any(a.detector == "payload" for a in verdict.alerts)

    def test_alert_log_accumulates(self, trained_ids):
        ids, _ = trained_ids
        assert len(ids.log) > 0  # earlier tests fed it attacks
        assert "alerts" in ids.log.summary()

    def test_untrained_rejected(self):
        ids = CombinedIds(VProfilePipeline(PipelineConfig()))
        with pytest.raises(DetectionError):
            ids.process(
                ObservedMessage(
                    timestamp_s=0.0, frame=CanFrame(can_id=1), trace=None
                )
            )

    def test_from_trace_requires_frame(self, vehicle_a_session):
        from dataclasses import replace

        trace = vehicle_a_session.traces[0]
        bare = replace(trace, metadata={})
        with pytest.raises(DetectionError):
            ObservedMessage.from_trace(bare)
