"""Bounded queues: overflow policies, close semantics, batched gets."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import StreamError
from repro.stream import BoundedQueue, OverflowPolicy, QueueClosed


class TestPolicies:
    def test_drop_newest_rejects_incoming(self):
        queue = BoundedQueue(2, OverflowPolicy.DROP_NEWEST)
        assert queue.put("a") and queue.put("b")
        assert not queue.put("c")
        assert queue.dropped == 1
        assert queue.get_batch(10) == ["a", "b"]

    def test_drop_oldest_evicts_head(self):
        queue = BoundedQueue(2, OverflowPolicy.DROP_OLDEST)
        queue.put("a"), queue.put("b")
        assert queue.put("c")  # accepted, "a" evicted
        assert queue.dropped == 1
        assert queue.get_batch(10) == ["b", "c"]

    def test_block_waits_for_consumer(self):
        queue = BoundedQueue(1, OverflowPolicy.BLOCK)
        queue.put("a")
        unblocked = threading.Event()

        def producer():
            queue.put("b")  # must wait until "a" is consumed
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not unblocked.is_set()
        assert queue.get_batch(1) == ["a"]
        thread.join(timeout=2.0)
        assert unblocked.is_set()
        assert queue.get_batch(1) == ["b"]

    def test_policy_from_string(self):
        assert BoundedQueue(1, "drop-oldest").policy is OverflowPolicy.DROP_OLDEST
        with pytest.raises(ValueError):
            BoundedQueue(1, "nonsense")


class TestGetBatch:
    def test_respects_max_items(self):
        queue = BoundedQueue(8)
        for item in range(5):
            queue.put(item)
        assert queue.get_batch(3) == [0, 1, 2]
        assert queue.get_batch(3) == [3, 4]

    def test_timeout_returns_empty(self):
        queue = BoundedQueue(4)
        assert queue.get_batch(1, timeout=0.01) == []

    def test_on_batch_runs_with_dequeue(self):
        queue = BoundedQueue(4)
        queue.put("x"), queue.put("y")
        seen = []
        queue.get_batch(2, on_batch=seen.append)
        assert seen == [2]

    def test_rejects_bad_max_items(self):
        with pytest.raises(StreamError):
            BoundedQueue(4).get_batch(0)


class TestLifecycle:
    def test_close_drains_then_raises(self):
        queue = BoundedQueue(4)
        queue.put("leftover")
        queue.close()
        assert queue.get_batch(4) == ["leftover"]
        with pytest.raises(QueueClosed):
            queue.get_batch(1)

    def test_put_after_close_raises(self):
        queue = BoundedQueue(4)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("late")

    def test_close_unblocks_waiting_producer(self):
        queue = BoundedQueue(1, OverflowPolicy.BLOCK)
        queue.put("a")
        outcome = []

        def producer():
            try:
                queue.put("b")
            except QueueClosed:
                outcome.append("closed")

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=2.0)
        assert outcome == ["closed"]

    def test_counters_and_watermark(self):
        queue = BoundedQueue(3, name="shard0")
        for item in range(3):
            queue.put(item)
        assert queue.high_watermark == 3
        assert queue.depth == 3
        queue.get_batch(2)
        assert queue.puts == 3 and queue.gets == 2 and queue.depth == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(StreamError):
            BoundedQueue(0)
