"""CAN frame encoding, decoding and field layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.bits import destuff_bits
from repro.can.frame import (
    EXT_FIRST_BIT_AFTER_ARBITRATION,
    EXT_SA_FIRST_BIT,
    EXT_SA_LAST_BIT,
    CanFrame,
)
from repro.errors import CanDecodingError, CanEncodingError, CrcError

ext_ids = st.integers(0, (1 << 29) - 1)
std_ids = st.integers(0, (1 << 11) - 1)
payloads = st.binary(min_size=0, max_size=8)


class TestConstruction:
    def test_extended_id_range(self):
        CanFrame(can_id=(1 << 29) - 1, extended=True)
        with pytest.raises(CanEncodingError):
            CanFrame(can_id=1 << 29, extended=True)

    def test_standard_id_range(self):
        CanFrame(can_id=(1 << 11) - 1, extended=False)
        with pytest.raises(CanEncodingError):
            CanFrame(can_id=1 << 11, extended=False)

    def test_data_too_long(self):
        with pytest.raises(CanEncodingError):
            CanFrame(can_id=1, data=b"123456789")

    def test_dlc(self):
        assert CanFrame(can_id=1, data=b"abc").dlc == 3

    def test_source_address(self):
        frame = CanFrame(can_id=0x18F00423, extended=True)
        assert frame.source_address == 0x23

    def test_standard_frame_has_no_sa(self):
        with pytest.raises(CanEncodingError):
            CanFrame(can_id=5, extended=False).source_address


class TestLayout:
    def test_extended_header_length(self):
        frame = CanFrame(can_id=0x1ABCDEF0, data=b"\x11" * 8)
        # SOF + 11 + SRR + IDE + 18 + RTR + r1 + r0 + DLC(4) + 64 data
        assert len(frame.header_bits()) == 1 + 11 + 2 + 18 + 1 + 2 + 4 + 64

    def test_standard_header_length(self):
        frame = CanFrame(can_id=0x123, data=b"\x22" * 2, extended=False)
        # SOF + 11 + RTR + IDE + r0 + DLC(4) + 16 data
        assert len(frame.header_bits()) == 1 + 11 + 3 + 4 + 16

    def test_unstuffed_total_length(self):
        frame = CanFrame(can_id=0x1ABCDEF0, data=b"\x11" * 8)
        header = len(frame.header_bits())
        # header + CRC(15) + CRC delim + ACK + ACK delim + EOF(7)
        assert len(frame.unstuffed_bits()) == header + 15 + 1 + 1 + 1 + 7

    def test_sof_is_dominant(self):
        assert CanFrame(can_id=1).unstuffed_bits()[0] == 0

    def test_eof_is_recessive(self):
        assert CanFrame(can_id=1).unstuffed_bits()[-7:] == [1] * 7

    def test_sa_bit_positions(self):
        """The J1939 SA occupies logical bits 24-31, as Algorithm 1 assumes."""
        frame = CanFrame(can_id=0x0CF004A5, extended=True)  # SA = 0xA5
        bits = frame.unstuffed_bits()
        sa_bits = bits[EXT_SA_FIRST_BIT : EXT_SA_LAST_BIT + 1]
        value = 0
        for bit in sa_bits:
            value = (value << 1) | bit
        assert value == 0xA5

    def test_bit_33_is_first_after_arbitration(self):
        frame = CanFrame(can_id=0x0CF004A5, extended=True)
        arb = frame.arbitration_bits()
        # Arbitration covers SOF..RTR = 33 bits, so bit index 33 is next.
        assert len(arb) == EXT_FIRST_BIT_AFTER_ARBITRATION
        # r1 (bit 33) is transmitted dominant.
        assert frame.unstuffed_bits()[33] == 0

    def test_ack_slot_dominant(self):
        bits = CanFrame(can_id=1).unstuffed_bits()
        # [..., CRC delim(1), ACK(0), ACK delim(1), EOF x7]
        assert bits[-10] == 1 and bits[-9] == 0 and bits[-8] == 1


class TestRoundTrip:
    @given(ext_ids, payloads)
    def test_extended_stuffed_round_trip(self, can_id, data):
        frame = CanFrame(can_id=can_id, data=data, extended=True)
        decoded = CanFrame.from_stuffed_bits(frame.stuffed_bits())
        assert decoded == frame

    @given(std_ids, payloads)
    def test_standard_stuffed_round_trip(self, can_id, data):
        frame = CanFrame(can_id=can_id, data=data, extended=False)
        decoded = CanFrame.from_stuffed_bits(frame.stuffed_bits())
        assert decoded == frame

    @given(ext_ids, payloads)
    def test_unstuffed_round_trip(self, can_id, data):
        frame = CanFrame(can_id=can_id, data=data, extended=True)
        assert CanFrame.from_unstuffed_bits(frame.unstuffed_bits()) == frame

    def test_stuffing_consistency(self):
        """Destuffing the CRC-covered wire region recovers the logical bits."""
        from repro.can.bits import stuffed_length

        frame = CanFrame(can_id=0, data=b"\x00" * 8)  # heavy stuffing
        header_and_crc = len(frame.header_bits()) + 15
        logical = frame.unstuffed_bits()[:header_and_crc]
        wire = frame.stuffed_bits()[: stuffed_length(logical)]
        assert destuff_bits(wire) == logical

    def test_len_is_stuffed_length(self):
        frame = CanFrame(can_id=0x1FFFFFFF, data=b"\xff" * 8)
        assert len(frame) == len(frame.stuffed_bits())


class TestDecodingErrors:
    def test_rejects_missing_sof(self):
        with pytest.raises(CanDecodingError):
            CanFrame.from_unstuffed_bits([1, 0, 1])

    def test_rejects_truncated(self):
        frame = CanFrame(can_id=0x155, data=b"ab")
        with pytest.raises(CanDecodingError):
            CanFrame.from_unstuffed_bits(frame.unstuffed_bits()[:20])

    def test_crc_error_detected(self):
        frame = CanFrame(can_id=0x18F00400, data=b"\x01\x02")
        bits = frame.unstuffed_bits()
        bits[40] ^= 1  # corrupt a payload-region bit
        with pytest.raises((CrcError, CanDecodingError)):
            CanFrame.from_unstuffed_bits(bits)

    def test_remote_frames_unsupported(self):
        frame = CanFrame(can_id=0x18F00400, data=b"")
        bits = frame.unstuffed_bits()
        rtr_index = 1 + 11 + 2 + 18  # SOF + base + SRR/IDE + ext id
        bits[rtr_index] = 1
        with pytest.raises(CanDecodingError):
            CanFrame.from_unstuffed_bits(bits)
