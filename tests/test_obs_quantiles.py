"""Accuracy properties of the P² streaming quantile estimator.

The time-series store persists histogram quantiles every sampling
interval, so their accuracy is now part of the telemetry contract:
these tests pin the estimator against known distributions before the
store starts recording what it says.
"""

import numpy as np
import pytest

from repro.obs.registry import P2Quantile


def _feed(estimator, values):
    for value in values:
        estimator.observe(float(value))
    return estimator


class TestDegenerateCases:
    """Below five observations P² is exact (sorted interpolation)."""

    def test_no_observations_value_is_none(self):
        assert P2Quantile(0.5).value is None

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exact_against_numpy_below_five(self, n):
        rng = np.random.default_rng(100 + n)
        data = rng.uniform(-3.0, 7.0, size=n)
        for q in (0.1, 0.5, 0.9):
            estimate = _feed(P2Quantile(q), data).value
            assert estimate == pytest.approx(
                float(np.quantile(data, q)), rel=1e-12, abs=1e-12
            )

    def test_single_observation_is_every_quantile(self):
        for q in (0.01, 0.5, 0.99):
            assert _feed(P2Quantile(q), [4.25]).value == 4.25

    def test_constant_stream_stays_exact(self):
        estimator = _feed(P2Quantile(0.9), [2.5] * 100)
        assert estimator.value == 2.5
        assert estimator.count == 100

    def test_rejects_out_of_range_quantiles(self):
        from repro.errors import ObservabilityError

        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ObservabilityError):
                P2Quantile(q)


class TestUniform:
    """On U(a, b) the q-quantile is a + q(b - a)."""

    @pytest.mark.parametrize("q", [0.1, 0.25, 0.5, 0.75, 0.9, 0.99])
    def test_converges_to_analytic_quantile(self, q):
        rng = np.random.default_rng(7)
        a, b = -2.0, 10.0
        data = rng.uniform(a, b, size=20_000)
        estimate = _feed(P2Quantile(q), data).value
        expected = a + q * (b - a)
        # Tolerance relative to the support width, not the value (the
        # analytic 0.5-quantile of this support crosses zero).
        assert abs(estimate - expected) / (b - a) < 0.01

    def test_estimate_brackets_true_quantile_order(self):
        rng = np.random.default_rng(8)
        data = rng.uniform(0.0, 1.0, size=5_000)
        estimates = [
            _feed(P2Quantile(q), data).value for q in (0.1, 0.5, 0.9)
        ]
        assert estimates[0] < estimates[1] < estimates[2]

    def test_order_independence_is_approximate(self):
        # P² is order-sensitive by construction, but on a large iid
        # sample shuffled orders must land close together.
        rng = np.random.default_rng(9)
        data = rng.uniform(0.0, 1.0, size=10_000)
        forward = _feed(P2Quantile(0.5), data).value
        shuffled = data.copy()
        rng.shuffle(shuffled)
        assert _feed(P2Quantile(0.5), shuffled).value == pytest.approx(
            forward, abs=0.02
        )


class TestBimodal:
    """Two well-separated modes: the hard case for five-marker sketches."""

    @staticmethod
    def _bimodal(rng, n, w=0.5):
        modes = rng.random(n) < w
        return np.where(
            modes, rng.normal(0.0, 0.25, n), rng.normal(10.0, 0.25, n)
        )

    def test_median_lands_between_balanced_modes(self):
        rng = np.random.default_rng(21)
        data = self._bimodal(rng, 20_000, w=0.5)
        estimate = _feed(P2Quantile(0.5), data).value
        # Anywhere in the gap is a defensible median; it must not sit
        # inside either mode.
        assert 1.0 < estimate < 9.0

    @pytest.mark.parametrize("q", [0.1, 0.9])
    def test_tail_quantiles_land_in_the_right_mode(self, q):
        rng = np.random.default_rng(22)
        data = self._bimodal(rng, 20_000, w=0.5)
        estimate = _feed(P2Quantile(q), data).value
        expected = float(np.quantile(data, q))
        assert estimate == pytest.approx(expected, abs=0.2)

    def test_skewed_mixture_tracks_numpy(self):
        rng = np.random.default_rng(23)
        data = self._bimodal(rng, 20_000, w=0.9)  # 90% low mode
        for q in (0.5, 0.8):
            estimate = _feed(P2Quantile(q), data).value
            expected = float(np.quantile(data, q))
            assert estimate == pytest.approx(expected, abs=0.3)


class TestHistogramQuantileSurface:
    """The registry-facing surface the time-series store snapshots."""

    def test_histogram_quantiles_match_standalone_estimators(self):
        from repro.obs.registry import MetricsRegistry

        rng = np.random.default_rng(31)
        data = rng.exponential(0.01, size=2_000)
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "vprofile_stream_latency_seconds", help="latency"
        )
        standalone = {q: P2Quantile(q) for q in (0.5, 0.9, 0.99)}
        for x in data:
            histogram.observe(float(x))
            for est in standalone.values():
                est.observe(float(x))
        for q, est in standalone.items():
            assert histogram.quantiles[q] == est.value
