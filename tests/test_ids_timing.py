"""Timing-based IDS: period monitor and clock-skew fingerprinting."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ids.timing import ClockSkewIdentifier, PeriodMonitor


def periodic_stream(can_id, period, n, *, skew=0.0, jitter=0.0, start=0.0, seed=0):
    """Arrivals of a periodic sender with clock skew and release jitter."""
    rng = np.random.default_rng(seed)
    times = start + np.arange(n) * period * (1.0 + skew)
    if jitter:
        times = times + rng.uniform(0, jitter, size=n)
    return [(float(t), can_id) for t in times]


class TestPeriodMonitor:
    def make(self, **kwargs):
        monitor = PeriodMonitor(**kwargs)
        monitor.fit(periodic_stream(0x100, 0.01, 200, jitter=2e-4, seed=1))
        return monitor

    def test_learns_period(self):
        monitor = self.make()
        assert monitor.monitored_ids == {0x100}

    def test_normal_cadence_passes(self):
        monitor = self.make()
        t = 2.0
        for _ in range(50):
            t += 0.01
            assert monitor.observe(t, 0x100) is None

    def test_injection_flagged(self):
        """An extra message squeezed between two periodic ones."""
        monitor = self.make()
        assert monitor.observe(2.0, 0x100) is None
        alert = monitor.observe(2.0005, 0x100)  # 0.5 ms after the last
        assert alert is not None
        assert alert.reason == "too-early"
        assert alert.detector == "period"

    def test_suspension_flagged(self):
        monitor = self.make()
        assert monitor.observe(2.0, 0x100) is None
        alert = monitor.observe(2.5, 0x100)  # 50 periods of silence
        assert alert is not None
        assert alert.reason == "gap"

    def test_unknown_id_flagged(self):
        monitor = self.make()
        alert = monitor.observe(2.0, 0x999)
        assert alert is not None and alert.reason == "unknown-id"

    def test_sparse_ids_unmonitored(self):
        monitor = PeriodMonitor()
        data = periodic_stream(0x100, 0.01, 100, seed=2) + [(0.5, 0x200)] * 2
        monitor.fit(data)
        assert 0x200 not in monitor.monitored_ids

    def test_needs_periodic_data(self):
        with pytest.raises(TrainingError):
            PeriodMonitor().fit([(0.0, 0x1)])

    def test_invalid_thresholds(self):
        with pytest.raises(TrainingError):
            PeriodMonitor(early_sigma=0)


class TestClockSkewIdentifier:
    def test_learns_skew_sign(self):
        ident = ClockSkewIdentifier()
        fast = periodic_stream(0x10, 0.02, 400, skew=+200e-6, jitter=5e-5, seed=3)
        slow = periodic_stream(0x20, 0.02, 400, skew=-200e-6, jitter=5e-5, seed=4)
        ident.fit(fast + slow)
        assert ident.skew_of(0x10) > ident.skew_of(0x20)

    def test_consistent_sender_stays_quiet(self):
        ident = ClockSkewIdentifier()
        stream = periodic_stream(0x10, 0.02, 500, skew=150e-6, jitter=5e-5, seed=5)
        ident.fit(stream[:300])
        alarms = sum(
            1 for t, cid in stream[300:] if ident.observe(t, cid) is not None
        )
        assert alarms <= 2  # near-zero false alarms

    def test_masquerading_sender_detected(self):
        """Another ECU (different crystal) takes over the stream."""
        ident = ClockSkewIdentifier()
        genuine = periodic_stream(0x10, 0.02, 400, skew=150e-6, jitter=5e-5, seed=6)
        ident.fit(genuine)
        # Attacker continues the id at the same period but with a very
        # different clock skew.
        takeover_start = genuine[-1][0] + 0.02
        attacker = periodic_stream(
            0x10, 0.02, 400, skew=-450e-6, jitter=5e-5, start=takeover_start, seed=7
        )
        alarms = sum(1 for t, cid in attacker if ident.observe(t, cid) is not None)
        assert alarms >= 1

    def test_unfingerprinted_id_ignored(self):
        ident = ClockSkewIdentifier()
        ident.fit(periodic_stream(0x10, 0.02, 100, seed=8))
        assert ident.observe(1.0, 0x99) is None

    def test_skew_of_unknown_raises(self):
        ident = ClockSkewIdentifier()
        ident.fit(periodic_stream(0x10, 0.02, 100, seed=9))
        with pytest.raises(TrainingError):
            ident.skew_of(0x77)

    def test_too_little_data(self):
        with pytest.raises(TrainingError):
            ClockSkewIdentifier().fit(periodic_stream(0x10, 0.02, 5))

    def test_invalid_forgetting(self):
        with pytest.raises(TrainingError):
            ClockSkewIdentifier(forgetting=0.5)
