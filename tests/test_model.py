"""Model container: validation and persistence."""

import numpy as np
import pytest

from repro.core.model import ClusterProfile, Metric, VProfileModel
from repro.core.training import TrainingData, train_model
from repro.errors import DetectionError, TrainingError


def small_model(metric="mahalanobis"):
    rng = np.random.default_rng(55)
    vectors = np.concatenate(
        [rng.normal(size=(80, 3)), 6 + rng.normal(size=(80, 3))]
    )
    sas = np.array([0x10] * 80 + [0x20] * 80)
    return train_model(
        TrainingData(vectors, sas),
        metric=metric,
        sa_clusters={0x10: "A", 0x20: "B"},
    )


class TestValidation:
    def test_requires_clusters(self):
        with pytest.raises(TrainingError):
            VProfileModel(metric=Metric.EUCLIDEAN, clusters=[])

    def test_sa_map_range_checked(self):
        cluster = ClusterProfile(name="A", mean=np.zeros(2), max_distance=1.0, count=5)
        with pytest.raises(TrainingError):
            VProfileModel(
                metric=Metric.EUCLIDEAN, clusters=[cluster], sa_to_cluster={1: 3}
            )

    def test_dimension_consistency(self):
        a = ClusterProfile(name="A", mean=np.zeros(2), max_distance=1.0, count=5)
        b = ClusterProfile(name="B", mean=np.zeros(3), max_distance=1.0, count=5)
        with pytest.raises(TrainingError):
            VProfileModel(metric=Metric.EUCLIDEAN, clusters=[a, b])

    def test_mahalanobis_needs_covariances(self):
        cluster = ClusterProfile(name="A", mean=np.zeros(2), max_distance=1.0, count=5)
        with pytest.raises(TrainingError):
            VProfileModel(metric=Metric.MAHALANOBIS, clusters=[cluster])


class TestAccessors:
    def test_known_sas(self):
        model = small_model()
        assert model.known_sas == {0x10, 0x20}
        assert model.cluster_of_sa(0x10) == 0
        assert model.cluster_of_sa(0x99) is None

    def test_means_stacked(self):
        model = small_model()
        assert model.means.shape == (2, 3)

    def test_cluster_named_missing(self):
        with pytest.raises(DetectionError):
            small_model().cluster_named("nope")

    def test_euclidean_has_no_covariances(self):
        with pytest.raises(DetectionError):
            small_model("euclidean").inv_covariances


class TestPersistence:
    @pytest.mark.parametrize("metric", ["euclidean", "mahalanobis"])
    def test_save_load_round_trip(self, metric, tmp_path):
        model = small_model(metric)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = VProfileModel.load(path)
        assert loaded.metric == model.metric
        assert loaded.sa_to_cluster == model.sa_to_cluster
        assert [c.name for c in loaded.clusters] == ["A", "B"]
        assert np.allclose(loaded.means, model.means)
        assert np.allclose(loaded.max_distances, model.max_distances)
        if metric == "mahalanobis":
            assert np.allclose(loaded.inv_covariances, model.inv_covariances)

    def test_loaded_model_detects_identically(self, tmp_path):
        from repro.core.detection import Detector

        model = small_model()
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = VProfileModel.load(path)
        rng = np.random.default_rng(8)
        vectors = rng.normal(scale=4, size=(50, 3))
        sas = rng.choice([0x10, 0x20], size=50)
        a = Detector(model, 0.5).classify_batch(vectors, sas)
        b = Detector(loaded, 0.5).classify_batch(vectors, sas)
        assert np.array_equal(a.anomalies(), b.anomalies())
