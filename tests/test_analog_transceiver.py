"""Transceiver electrical model: levels, dynamics, environment response."""

import math

import pytest

from repro.analog.environment import Environment, NOMINAL_ENVIRONMENT
from repro.analog.transceiver import EdgeDynamics, TransceiverParams, perturbed
from repro.errors import WaveformError


def make(name="T", **overrides):
    params = dict(
        name=name,
        v_dominant=2.0,
        v_recessive=0.01,
        rise=EdgeDynamics(2.0e6, 0.7),
        fall=EdgeDynamics(1.1e6, 1.05),
        temp_coeff_v_per_c=-3e-4,
        temp_coeff_freq_per_c=8e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1e-4,
    )
    params.update(overrides)
    return TransceiverParams(**params)


class TestEdgeDynamics:
    def test_rejects_bad_frequency(self):
        with pytest.raises(WaveformError):
            EdgeDynamics(0.0, 0.7)

    def test_rejects_bad_damping(self):
        with pytest.raises(WaveformError):
            EdgeDynamics(1e6, 0.0)

    def test_omega_n(self):
        dyn = EdgeDynamics(1e6, 0.7)
        assert dyn.omega_n == pytest.approx(2 * math.pi * 1e6)

    def test_settle_time_scales_inversely_with_frequency(self):
        fast = EdgeDynamics(4e6, 0.7)
        slow = EdgeDynamics(1e6, 0.7)
        assert fast.settle_time_s() == pytest.approx(slow.settle_time_s() / 4)


class TestLevels:
    def test_dominant_must_exceed_recessive(self):
        with pytest.raises(WaveformError):
            make(v_dominant=0.0, v_recessive=0.01)

    def test_nominal_levels_unchanged(self):
        v_dom, v_rec = make().effective_levels(NOMINAL_ENVIRONMENT)
        assert v_dom == pytest.approx(2.0)
        assert v_rec == pytest.approx(0.01)

    def test_cold_raises_dominant_level(self):
        """Negative temp coefficient: colder -> higher drive level."""
        cold = Environment(temperature_c=-5.0)
        v_cold, _ = make().effective_levels(cold)
        v_nom, _ = make().effective_levels(NOMINAL_ENVIRONMENT)
        assert v_cold > v_nom
        assert v_cold - v_nom == pytest.approx(3e-4 * 30.0, rel=0.05)

    def test_battery_scaling_is_relative(self):
        high = Environment(battery_v=14.6)
        v_high, _ = make().effective_levels(high)
        assert v_high == pytest.approx(2.0 * (1 + 4e-4), rel=1e-6)

    def test_load_sags_dominant(self):
        loaded = Environment(load_current_a=40.0)
        v_loaded, _ = make().effective_levels(loaded)
        assert v_loaded == pytest.approx(2.0 - 1e-4 * 40.0)

    def test_recessive_moves_less_than_dominant(self):
        cold = Environment(temperature_c=-5.0)
        t = make()
        dv_dom = t.effective_levels(cold)[0] - t.effective_levels(NOMINAL_ENVIRONMENT)[0]
        dv_rec = t.effective_levels(cold)[1] - t.effective_levels(NOMINAL_ENVIRONMENT)[1]
        assert abs(dv_rec) < abs(dv_dom)


class TestDynamicsDrift:
    def test_temperature_scales_edge_frequency(self):
        hot = Environment(temperature_c=45.0)
        rise, fall = make().effective_dynamics(hot)
        scale = 1 + 8e-4 * 20.0
        assert rise.natural_freq_hz == pytest.approx(2.0e6 * scale)
        assert fall.natural_freq_hz == pytest.approx(1.1e6 * scale)

    def test_damping_unchanged(self):
        rise, fall = make().effective_dynamics(Environment(temperature_c=-10))
        assert rise.damping == 0.7
        assert fall.damping == 1.05

    def test_frequency_never_nonpositive(self):
        # An absurd temperature must not produce a negative frequency.
        rise, _ = make().effective_dynamics(Environment(temperature_c=-2000))
        assert rise.natural_freq_hz > 0


class TestPerturbed:
    def test_applies_deltas(self):
        base = make()
        variant = perturbed(base, "V", dv_dominant=0.05, rise_freq_scale=1.1)
        assert variant.name == "V"
        assert variant.v_dominant == pytest.approx(2.05)
        assert variant.rise.natural_freq_hz == pytest.approx(2.2e6)
        assert variant.fall.natural_freq_hz == base.fall.natural_freq_hz

    def test_keeps_environment_coefficients(self):
        variant = perturbed(make(), "V")
        assert variant.temp_coeff_v_per_c == -3e-4


class TestEnvironment:
    def test_with_helpers(self):
        env = NOMINAL_ENVIRONMENT.with_temperature(0.0).with_battery(12.0).with_load(10.0)
        assert env.temperature_c == 0.0
        assert env.battery_v == 12.0
        assert env.load_current_a == 10.0
        # Original is untouched (frozen value object).
        assert NOMINAL_ENVIRONMENT.temperature_c == 25.0
