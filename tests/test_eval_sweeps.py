"""Rate/resolution sweep mechanics (Tables 4.6/4.7 at reduced scale)."""

import pytest

from repro.errors import SingularCovarianceError
from repro.eval.sweeps import rate_resolution_sweep
from repro.eval.reporting import format_sweep


@pytest.fixture(scope="module")
def sweep_cells(vehicle_b_session):
    """Vehicle B (32-dim edge sets) keeps the sweep affordable."""
    return rate_resolution_sweep(
        vehicle_b_session, rate_divisors=(1, 2), resolutions=(12,), seed=6
    )


class TestSweep:
    def test_grid_size(self, sweep_cells):
        assert len(sweep_cells) == 2

    def test_rates_derived(self, sweep_cells):
        rates = sorted(c.sample_rate for c in sweep_cells)
        assert rates == [5e6, 10e6]

    def test_scores_high_at_native_rate(self, sweep_cells):
        native = next(c for c in sweep_cells if c.sample_rate == 10e6)
        assert not native.singular
        assert native.fp_accuracy >= 0.995
        assert native.hijack_f >= 0.99
        assert native.foreign_f >= 0.95

    def test_downsampled_still_usable(self, sweep_cells):
        half = next(c for c in sweep_cells if c.sample_rate == 5e6)
        assert not half.singular
        assert half.fp_accuracy >= 0.99

    def test_labels(self, sweep_cells):
        labels = {c.label for c in sweep_cells}
        assert "10 MS/s @ 12 bit" in labels

    def test_low_resolution_goes_singular(self, vehicle_b_session):
        """The paper's <= 10-bit failure: coarse codes collapse the
        covariance.  At 6 bits the edge-set columns quantise to constants."""
        cells = rate_resolution_sweep(
            vehicle_b_session, rate_divisors=(1,), resolutions=(6,), seed=6
        )
        assert cells[0].singular
        assert cells[0].fp_accuracy is None

    def test_formatting(self, sweep_cells):
        text = format_sweep(sweep_cells, "test sweep")
        assert "False positive" in text
        assert "12 bit" in text
