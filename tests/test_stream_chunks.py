"""Chunk sources: replay partitioning, live synthesis, restartability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition.archive import save_traces
from repro.acquisition.segmentation import assemble_stream
from repro.errors import StreamError
from repro.stream import ChunkSource, LiveSource, ReplaySource, SampleChunk


@pytest.fixture(scope="module")
def stream(stream_test_session):
    return assemble_stream(stream_test_session.traces)


class TestReplaySource:
    def test_implements_protocol(self, stream):
        assert isinstance(ReplaySource(stream), ChunkSource)

    def test_partitions_exactly(self, stream):
        source = ReplaySource(stream, 4096)
        chunks = list(source.chunks())
        assert len(chunks) == source.n_chunks
        assert [c.seq for c in chunks] == list(range(len(chunks)))
        np.testing.assert_array_equal(
            np.concatenate([c.counts for c in chunks]), stream.counts
        )

    def test_chunk_timing_and_parameters(self, stream):
        source = ReplaySource(stream, 1000)
        chunk = next(iter(source.chunks()))
        assert isinstance(chunk, SampleChunk)
        assert len(chunk) == 1000
        assert chunk.start_s == stream.start_s
        assert chunk.sample_rate == stream.sample_rate
        assert chunk.resolution_bits == stream.resolution_bits
        assert chunk.bitrate == stream.bitrate

    def test_restart_from_chunk(self, stream):
        source = ReplaySource(stream, 4096)
        full = list(source.chunks())
        suffix = list(source.chunks(start_chunk=3))
        assert [c.seq for c in suffix] == [c.seq for c in full[3:]]
        for resumed, original in zip(suffix, full[3:]):
            np.testing.assert_array_equal(resumed.counts, original.counts)

    def test_from_traces_matches_assembled(self, stream_test_session, stream):
        source = ReplaySource.from_traces(stream_test_session.traces, 4096)
        np.testing.assert_array_equal(source.stream.counts, stream.counts)

    def test_from_archive(self, stream_test_session, stream, tmp_path):
        path = tmp_path / "capture.npz"
        save_traces(path, stream_test_session.traces)
        source = ReplaySource.from_archive(path, 4096)
        np.testing.assert_array_equal(source.stream.counts, stream.counts)

    def test_rejects_bad_chunk_size(self, stream):
        with pytest.raises(StreamError):
            ReplaySource(stream, 0)


class TestLiveSource:
    @pytest.fixture(scope="class")
    def source(self, stream_vehicle):
        return LiveSource(stream_vehicle, 0.25, chunk_samples=4096, seed=7)

    def test_implements_protocol(self, source):
        assert isinstance(source, ChunkSource)

    def test_emits_exact_duration(self, source, stream_vehicle):
        chunks = list(source.chunks())
        total = sum(len(c) for c in chunks)
        assert total == int(round(0.25 * stream_vehicle.sample_rate))
        assert [c.seq for c in chunks] == list(range(len(chunks)))
        assert all(len(c) == 4096 for c in chunks[:-1])

    def test_deterministic(self, source):
        first = np.concatenate([c.counts for c in source.chunks()])
        second = np.concatenate([c.counts for c in source.chunks()])
        np.testing.assert_array_equal(first, second)

    def test_resume_discards_prefix_only(self, source):
        full = list(source.chunks())
        resumed = list(source.chunks(start_chunk=5))
        assert [c.seq for c in resumed] == [c.seq for c in full[5:]]
        for a, b in zip(resumed, full[5:]):
            np.testing.assert_array_equal(a.counts, b.counts)

    def test_contains_traffic_not_just_idle(self, source):
        counts = np.concatenate([c.counts for c in source.chunks()])
        assert counts.max() > counts.min()  # dominant bits present

    def test_rejects_bad_parameters(self, stream_vehicle):
        with pytest.raises(StreamError):
            LiveSource(stream_vehicle, 0.0)
        with pytest.raises(StreamError):
            LiveSource(stream_vehicle, 1.0, chunk_samples=0)
