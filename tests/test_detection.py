"""Algorithm 3: detection paths and batch consistency."""

import numpy as np
import pytest

from repro.core.detection import AnomalyReason, Detector, Verdict
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.errors import DetectionError


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(77)
    dim = 4
    vectors, sas = [], []
    for sa, center in ((0x10, 0.0), (0x20, 10.0)):
        vectors.append(center + rng.normal(scale=0.5, size=(200, dim)))
        sas.extend([sa] * 200)
    data = TrainingData(np.concatenate(vectors), np.array(sas))
    return train_model(
        data, metric=Metric.MAHALANOBIS, sa_clusters={0x10: "A", 0x20: "B"}
    )


class TestClassify:
    def test_legitimate_message_ok(self, model):
        result = Detector(model, margin=1.0).classify(np.zeros(4), sa=0x10)
        assert result.verdict is Verdict.OK
        assert result.reason is None
        assert result.expected_cluster == result.predicted_cluster

    def test_unknown_sa(self, model):
        result = Detector(model).classify(np.zeros(4), sa=0x99)
        assert result.is_anomaly
        assert result.reason is AnomalyReason.UNKNOWN_SA
        assert result.predicted_cluster is None

    def test_cluster_mismatch(self, model):
        """A message shaped like ECU B but claiming ECU A's SA."""
        result = Detector(model, margin=100.0).classify(np.full(4, 10.0), sa=0x10)
        assert result.is_anomaly
        assert result.reason is AnomalyReason.CLUSTER_MISMATCH
        assert result.origin_name(model) == "B"

    def test_distance_exceeded(self, model):
        """Close to A's mean direction but far outside its spread."""
        outlier = np.array([3.0, -3.0, 3.0, -3.0])  # ~8+ sigma, nearest to A
        result = Detector(model, margin=0.0).classify(outlier, sa=0x10)
        assert result.is_anomaly
        assert result.reason is AnomalyReason.DISTANCE_EXCEEDED

    def test_margin_suppresses_distance_alarm(self, model):
        outlier = np.array([3.0, -3.0, 3.0, -3.0])
        slack = Detector(model).classify(outlier, sa=0x10).slack
        relaxed = Detector(model, margin=slack + 1.0).classify(outlier, sa=0x10)
        assert relaxed.verdict is Verdict.OK

    def test_raw_vector_requires_sa(self, model):
        with pytest.raises(DetectionError):
            Detector(model).classify(np.zeros(4))

    def test_negative_margin_rejected(self, model):
        with pytest.raises(DetectionError):
            Detector(model, margin=-1.0)


class TestBatch:
    def test_batch_matches_single(self, model):
        rng = np.random.default_rng(5)
        vectors = rng.normal(scale=3.0, size=(100, 4))
        sas = rng.choice([0x10, 0x20, 0x99], size=100)
        detector = Detector(model, margin=0.5)
        batch = detector.classify_batch(vectors, sas)
        flags = batch.anomalies()
        for i in range(100):
            single = detector.classify(vectors[i], sa=int(sas[i]))
            assert single.is_anomaly == bool(flags[i])

    def test_hard_anomalies_ignore_margin(self, model):
        vectors = np.vstack([np.zeros(4), np.full(4, 10.0)])
        sas = np.array([0x99, 0x10])  # unknown SA; mismatch
        batch = Detector(model).classify_batch(vectors, sas)
        assert batch.hard_anomalies.all()
        assert batch.anomalies(margin=1e9).all()

    def test_length_mismatch(self, model):
        with pytest.raises(DetectionError):
            Detector(model).classify_batch(np.zeros((2, 4)), np.zeros(3, dtype=int))

    def test_euclidean_model_batch(self):
        rng = np.random.default_rng(9)
        data = TrainingData(
            np.concatenate([rng.normal(size=(50, 3)), 8 + rng.normal(size=(50, 3))]),
            np.array([1] * 50 + [2] * 50),
        )
        model = train_model(data, metric="euclidean", sa_clusters={1: "A", 2: "B"})
        batch = Detector(model, margin=1.0).classify_batch(
            np.array([[0.0, 0, 0], [8.0, 8, 8]]), np.array([1, 2])
        )
        assert not batch.anomalies().any()
