"""Figure data generators (Figures 2.5, 3.1, 4.2, 4.4, 4.5)."""

import numpy as np
import pytest

from repro.eval.figures import (
    distance_comparison,
    edge_set_overlay,
    sample_stddev_profile,
    sampling_effects,
    vehicle_voltage_profiles,
)


class TestEdgeSetOverlay:
    @pytest.fixture(scope="class")
    def overlay(self, sterling):
        return edge_set_overlay(sterling, traces_per_ecu=100, duration_s=5.0, seed=7)

    def test_both_ecus_present(self, overlay):
        assert overlay.ecu_names() == ["ECU0", "ECU1"]

    def test_waveforms_cluster_by_ecu(self, overlay):
        """Figure 2.5's claim: same-ECU traces are near-identical, the
        two ECUs' waveforms are clearly distinct."""
        mean0 = overlay.vectors_by_ecu["ECU0"].mean(axis=0)
        mean1 = overlay.vectors_by_ecu["ECU1"].mean(axis=0)
        inter = np.linalg.norm(mean0 - mean1)
        intra0 = np.linalg.norm(
            overlay.vectors_by_ecu["ECU0"] - mean0, axis=1
        ).mean()
        assert inter > 2 * intra0


class TestSamplingEffects:
    @pytest.fixture(scope="class")
    def effects(self, sterling):
        return sampling_effects(sterling, seed=8)

    def test_rate_series_shrink(self, effects):
        sizes = [v.size for _, v in sorted(effects.by_rate.items())]
        assert sizes == sorted(sizes)  # lower rate -> fewer samples

    def test_resolution_series_same_length(self, effects):
        lengths = {v.size for v in effects.by_resolution.values()}
        assert len(lengths) == 1

    def test_lower_resolution_smaller_codes(self, effects):
        v16 = effects.by_resolution[16]
        v8 = effects.by_resolution[8]
        assert v8.max() <= v16.max() / 200  # 8 fewer bits ~ /256


class TestVoltageProfiles:
    def test_five_profiles(self, veh_a):
        profiles = vehicle_voltage_profiles(veh_a, duration_s=2.0, seed=9)
        assert sorted(profiles) == [f"ECU{i}" for i in range(5)]
        dims = {v.size for v in profiles.values()}
        assert len(dims) == 1

    def test_profiles_distinct(self, veh_a):
        profiles = vehicle_voltage_profiles(veh_a, duration_s=2.0, seed=9)
        names = sorted(profiles)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert np.linalg.norm(profiles[a] - profiles[b]) > 100


class TestStdDevProfile:
    def test_edges_much_noisier_than_steady(self, veh_a):
        """Figure 4.4: edge samples have far higher standard deviation."""
        profile = sample_stddev_profile(veh_a, "ECU0", duration_s=2.5, seed=10)
        assert profile.edge_to_steady_ratio > 3.0

    def test_edge_indices_are_argmax(self, veh_a):
        profile = sample_stddev_profile(veh_a, "ECU0", duration_s=2.5, seed=10)
        top = set(np.argsort(profile.per_index_std)[-4:])
        assert set(profile.edge_indices) == top


class TestDistanceComparison:
    @pytest.fixture(scope="class")
    def comparison(self, sterling):
        return distance_comparison(sterling, duration_s=4.0, seed=11)

    def test_both_metrics_pick_own_cluster(self, comparison):
        assert comparison.euclidean["ECU0"] < comparison.euclidean["ECU1"]
        assert comparison.mahalanobis["ECU0"] < comparison.mahalanobis["ECU1"]

    def test_mahalanobis_quotient_much_larger(self, comparison):
        """Table 4.5: the Mahalanobis quotient is ~an order of magnitude
        larger than the Euclidean one."""
        assert comparison.quotient("mahalanobis") > 3 * comparison.quotient("euclidean")
