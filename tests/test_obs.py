"""Unit tests for the observability layer (:mod:`repro.obs`)."""

import json
import logging
import math

import numpy as np
import pytest

from repro import obs
from repro.errors import ObservabilityError


class TestRegistry:
    def test_counter_accumulates(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            obs.MetricsRegistry().counter("x_total").inc(-1)

    def test_same_name_and_labels_share_instrument(self):
        registry = obs.MetricsRegistry()
        a = registry.counter("hits_total", stage="extract", vehicle="a")
        b = registry.counter("hits_total", vehicle="a", stage="extract")
        assert a is b  # label order must not matter

    def test_distinct_labels_are_distinct_children(self):
        registry = obs.MetricsRegistry()
        a = registry.counter("hits_total", stage="extract")
        b = registry.counter("hits_total", stage="classify")
        a.inc()
        assert a is not b
        assert b.value == 0.0

    def test_type_conflict_raises(self):
        registry = obs.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_gauge_up_and_down(self):
        gauge = obs.MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 3.0

    def test_get_does_not_create(self):
        registry = obs.MetricsRegistry()
        assert registry.get("nope") is None
        registry.counter("yep", x="1")
        assert registry.get("yep", x="1") is not None
        assert registry.get("yep", x="2") is None

    def test_samples_enumerates_family_children(self):
        registry = obs.MetricsRegistry()
        registry.counter("hits_total", stage="extract").inc(2)
        registry.counter("hits_total", stage="classify").inc()
        by_labels = {
            labels["stage"]: c.value for labels, c in registry.samples("hits_total")
        }
        assert by_labels == {"extract": 2.0, "classify": 1.0}
        assert list(registry.samples("absent")) == []
        assert list(obs.NULL_REGISTRY.samples("hits_total")) == []


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        h = obs.Histogram(buckets=(1.0, 2.0, 4.0), quantiles=())
        h.observe(1.0)   # == bound -> first bucket (le semantics)
        h.observe(1.5)
        h.observe(4.0)
        h.observe(100.0)  # +Inf bucket
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[2.0] == 2
        assert cumulative[4.0] == 3
        assert cumulative[math.inf] == 4

    def test_summary_stats(self):
        h = obs.Histogram(buckets=(10.0,), quantiles=())
        for value in (2.0, 4.0, 6.0):
            h.observe(value)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.mean == 4.0
        assert h.min == 2.0
        assert h.max == 6.0

    def test_streaming_quantiles_converge(self):
        h = obs.Histogram(buckets=(1.0,), quantiles=(0.5, 0.9))
        rng = np.random.default_rng(42)
        for value in rng.uniform(0.0, 1.0, 20_000):
            h.observe(value)
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.02)
        assert h.quantile(0.9) == pytest.approx(0.9, abs=0.02)

    def test_quantile_exact_below_five_samples(self):
        h = obs.Histogram(buckets=(1.0,), quantiles=(0.5,))
        for value in (3.0, 1.0, 2.0):
            h.observe(value)
        assert h.quantile(0.5) == 2.0

    def test_untracked_quantile_raises(self):
        h = obs.Histogram(buckets=(1.0,), quantiles=(0.5,))
        with pytest.raises(ObservabilityError):
            h.quantile(0.25)


class TestP2Quantile:
    def test_matches_numpy_on_normal_data(self):
        rng = np.random.default_rng(7)
        data = rng.normal(10.0, 2.0, 50_000)
        estimator = obs.P2Quantile(0.99)
        for value in data:
            estimator.observe(value)
        exact = float(np.quantile(data, 0.99))
        assert estimator.value == pytest.approx(exact, rel=0.02)

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ObservabilityError):
            obs.P2Quantile(1.0)


class TestSpans:
    def test_span_records_into_histogram(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("work") as sp:
                pass
        assert sp.wall_s >= 0.0
        histogram = registry.get(obs.SPAN_METRIC, span="work")
        assert histogram is not None and histogram.count == 1

    def test_nesting_paths_and_trace_id(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None
        assert inner.path == "outer/inner"
        assert inner.parent is outer
        assert inner.trace_id == outer.trace_id

    def test_exception_safety(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with pytest.raises(ValueError):
                with obs.span("boom") as sp:
                    raise ValueError("nope")
        assert obs.current_span() is None  # stack popped
        assert isinstance(sp.error, ValueError)
        assert registry.get(obs.SPAN_METRIC, span="boom").count == 1  # still timed
        assert registry.get(obs.SPAN_ERRORS_METRIC, span="boom").value == 1

    def test_stage_timer_feeds_stage_histogram(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.stage_timer("extract"):
                pass
        histogram = registry.get(obs.STAGE_METRIC, stage="extract")
        assert histogram.count == 1

    def test_stage_timer_disabled_is_null_singleton(self):
        with obs.use_registry(obs.NULL_REGISTRY):
            assert obs.stage_timer("extract") is obs.NULL_TIMER
            assert obs.stage_timer("classify") is obs.NULL_TIMER

    def test_span_label_named_metric_does_not_collide(self):
        # Regression: a user label called "metric" used to be swallowed
        # by Span's metric-name parameter, renaming the whole family.
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("eval", metric="mahalanobis", vehicle="A"):
                pass
        histogram = registry.get(
            obs.SPAN_METRIC, span="eval", metric="mahalanobis", vehicle="A"
        )
        assert histogram is not None and histogram.count == 1
        assert registry.get("mahalanobis", span="eval", vehicle="A") is None

    def test_stopwatch_accumulates(self):
        sw = obs.Stopwatch()
        with sw:
            sum(range(100))
        first = sw.wall_s
        with sw:
            sum(range(100))
        assert sw.wall_s > first >= 0.0
        assert sw.cpu_s >= 0.0


class TestEvents:
    def test_level_filtering(self):
        log = obs.EventLog(level="warning")
        assert log.info("quiet") is None
        assert log.warning("loud", code=7) is not None
        events = log.records()
        assert len(events) == 1
        assert events[0].fields["code"] == 7

    def test_ring_buffer_capacity(self):
        log = obs.EventLog(level="debug", capacity=3)
        for i in range(10):
            log.info("tick", i=i)
        assert [e.fields["i"] for e in log.records()] == [7, 8, 9]

    def test_sink_writes_json_lines(self, tmp_path):
        sink_path = tmp_path / "events.jsonl"
        with sink_path.open("w") as sink:
            log = obs.EventLog(level="debug", sink=sink)
            log.info("hello", value=1.5)
            log.error("broken", detail="x")
        lines = sink_path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "hello" and first["value"] == 1.5
        assert json.loads(lines[1])["level"] == "error"

    def test_events_inherit_span_trace_id(self):
        log = obs.EventLog(level="debug")
        with obs.span("ctx") as sp:
            event = log.info("inside")
        assert event.trace_id == sp.trace_id

    def test_unknown_level_rejected(self):
        with pytest.raises(ObservabilityError):
            obs.EventLog(level="chatty")

    def test_stdlib_bridge(self):
        log = obs.EventLog(level="debug")
        handler = obs.bridge_stdlib("repro.test_bridge", event_log=log)
        try:
            logging.getLogger("repro.test_bridge.sub").warning("careful: %d", 3)
        finally:
            logging.getLogger("repro.test_bridge").removeHandler(handler)
        events = log.records(name="log.repro.test_bridge.sub")
        assert len(events) == 1
        assert events[0].level == "warning"
        assert events[0].fields["message"] == "careful: 3"


class TestExporters:
    def _populated_registry(self):
        registry = obs.MetricsRegistry()
        registry.counter("msgs_total", help="Messages seen").inc(4)
        registry.counter("odd_total", label='quote " back \\ slash').inc()
        registry.gauge("depth", shard="0").set(2.5)
        histogram = registry.histogram(
            "lat_seconds", help="Latency", buckets=(0.001, 0.01), stage="x"
        )
        histogram.observe(0.0005)
        histogram.observe(0.5)
        return registry

    def test_prometheus_format(self):
        text = obs.to_prometheus(self._populated_registry())
        assert "# HELP msgs_total Messages seen" in text
        assert "# TYPE msgs_total counter" in text
        assert "msgs_total 4" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.001",stage="x"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf",stage="x"} 2' in text
        assert 'lat_seconds_count{stage="x"} 2' in text
        assert 'label="quote \\" back \\\\ slash"' in text

    def test_prometheus_round_trip(self):
        registry = self._populated_registry()
        snapshot = obs.parse_prometheus(obs.to_prometheus(registry))
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snapshot["counters"]
        }
        assert counters[("msgs_total", ())] == 4
        assert counters[("odd_total", (("label", 'quote " back \\ slash'),))] == 1
        (histogram,) = snapshot["histograms"]
        assert histogram["name"] == "lat_seconds"
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(0.5005)
        assert histogram["buckets"][-1]["count"] == 2
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        assert gauges["depth"] == 2.5

    def test_json_snapshot_carries_quantiles(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("t_seconds", quantiles=(0.5,))
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        snapshot = obs.to_json(registry)
        (entry,) = snapshot["histograms"]
        assert entry["quantiles"]["0.5"] == 2.0
        assert entry["mean"] == 2.0

    def test_write_and_load_both_formats(self, tmp_path):
        registry = self._populated_registry()
        for filename in ("m.prom", "m.json"):
            path = obs.write_metrics(registry, tmp_path / filename)
            snapshot = obs.load_snapshot(path)
            names = {c["name"] for c in snapshot["counters"]}
            assert "msgs_total" in names

    def test_load_rejects_garbage_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ObservabilityError):
            obs.load_snapshot(path)

    def test_summarize_mentions_everything(self):
        summary = obs.summarize_snapshot(
            obs.to_json(self._populated_registry()), source="m.prom"
        )
        assert "m.prom" in summary
        assert "lat_seconds" in summary
        assert "msgs_total" in summary
        assert "depth" in summary

    def test_summarize_empty(self):
        registry = obs.MetricsRegistry()
        assert "no metrics" in obs.summarize_snapshot(obs.to_json(registry))


class TestGlobalToggles:
    def test_default_is_disabled(self):
        # Nothing in this suite should leave observability enabled.
        assert obs.get_registry().enabled is False
        assert obs.get_event_log().enabled is False

    def test_enabled_context_restores(self):
        before_registry = obs.get_registry()
        before_log = obs.get_event_log()
        with obs.enabled() as (registry, log):
            assert obs.get_registry() is registry
            assert obs.get_event_log() is log
            registry.counter("x_total").inc()
            log.info("hi")
        assert obs.get_registry() is before_registry
        assert obs.get_event_log() is before_log

    def test_null_instruments_are_shared_singletons(self):
        registry = obs.NULL_REGISTRY
        assert registry.counter("a") is registry.counter("b", any_label="z")
        assert registry.histogram("h") is registry.histogram("h2")
        assert registry.snapshot() == {"counters": [], "gauges": [], "histograms": []}

    def test_preregister_creates_stable_surface(self):
        registry = obs.MetricsRegistry()
        obs.preregister_pipeline_metrics(registry)
        text = obs.to_prometheus(registry)
        for stage in obs.PIPELINE_STAGES:
            assert f'vprofile_stage_seconds_count{{stage="{stage}"}} 0' in text
        for reason in obs.ANOMALY_REASONS:
            assert f'vprofile_anomalies_total{{reason="{reason}"}} 0' in text


class TestExportHardening:
    """Escaping corners and crash-safety of the exposition writer."""

    def test_help_text_is_escaped_onto_one_line(self):
        registry = obs.MetricsRegistry()
        registry.counter("odd_total", help="line one\nline two \\ slash").inc()
        text = obs.to_prometheus(registry)
        assert "# HELP odd_total line one\\nline two \\\\ slash" in text
        # The family still occupies exactly one HELP line.
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP odd_total")]
        assert len(help_lines) == 1

    def test_label_newline_round_trips(self):
        registry = obs.MetricsRegistry()
        registry.counter("odd_total", note="up\ndown").inc()
        snapshot = obs.parse_prometheus(obs.to_prometheus(registry))
        (counter,) = snapshot["counters"]
        assert counter["labels"]["note"] == "up\ndown"

    def test_escaped_backslash_before_n_round_trips(self):
        # '\' followed by a literal 'n' encodes as '\\' + 'n'; a naive
        # chained-replace decoder would misread that as a newline.
        registry = obs.MetricsRegistry()
        registry.counter("odd_total", path="C:\\notes").inc()
        text = obs.to_prometheus(registry)
        assert 'path="C:\\\\notes"' in text
        snapshot = obs.parse_prometheus(text)
        (counter,) = snapshot["counters"]
        assert counter["labels"]["path"] == "C:\\notes"

    def test_adversarial_label_values_round_trip(self):
        values = ['\\n', '\\', '"', '\\"', 'a\nb\\c"d', '\\\\n']
        registry = obs.MetricsRegistry()
        for i, value in enumerate(values):
            registry.counter("odd_total", idx=str(i), v=value).inc()
        snapshot = obs.parse_prometheus(obs.to_prometheus(registry))
        decoded = {c["labels"]["idx"]: c["labels"]["v"] for c in snapshot["counters"]}
        assert decoded == {str(i): v for i, v in enumerate(values)}

    def test_write_metrics_is_atomic(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.counter("msgs_total").inc()
        path = tmp_path / "m.prom"
        path.write_text("stale contents")
        out = obs.write_metrics(registry, path)
        assert out == path
        assert "msgs_total 1" in path.read_text()
        # No temp droppings left next to the target.
        assert list(tmp_path.iterdir()) == [path]
