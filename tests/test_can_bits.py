"""Bit stuffing, destuffing and integer/bit conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.bits import (
    bits_to_int,
    count_stuff_bits,
    destuff_bits,
    int_to_bits,
    stuff_bits,
    stuffed_length,
)
from repro.errors import CanEncodingError, StuffingError

bit_lists = st.lists(st.integers(0, 1), max_size=200)


class TestIntBits:
    def test_round_trip_known(self):
        assert int_to_bits(0b1011, 4) == [1, 0, 1, 1]
        assert bits_to_int([1, 0, 1, 1]) == 0b1011

    def test_msb_first(self):
        assert int_to_bits(1, 8) == [0, 0, 0, 0, 0, 0, 0, 1]
        assert int_to_bits(128, 8) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_zero_width(self):
        assert int_to_bits(0, 0) == []

    def test_value_too_large(self):
        with pytest.raises(CanEncodingError):
            int_to_bits(16, 4)

    def test_negative_value(self):
        with pytest.raises(CanEncodingError):
            int_to_bits(-1, 4)

    def test_negative_width(self):
        with pytest.raises(CanEncodingError):
            int_to_bits(0, -1)

    @given(st.integers(0, 2**29 - 1))
    def test_round_trip_property(self, value):
        assert bits_to_int(int_to_bits(value, 29)) == value


class TestStuffing:
    def test_inserts_after_five_identical(self):
        assert stuff_bits([0, 0, 0, 0, 0]) == [0, 0, 0, 0, 0, 1]
        assert stuff_bits([1, 1, 1, 1, 1]) == [1, 1, 1, 1, 1, 0]

    def test_no_stuffing_needed(self):
        bits = [0, 1, 0, 1, 0, 1]
        assert stuff_bits(bits) == bits

    def test_stuff_bit_seeds_next_run(self):
        # 00000 -> stuff 1; then four more 1s complete a run of five 1s
        # (stuff bit included) -> stuff 0.
        stuffed = stuff_bits([0, 0, 0, 0, 0, 1, 1, 1, 1])
        assert stuffed == [0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0]

    def test_long_run_multiple_stuffs(self):
        stuffed = stuff_bits([0] * 10)
        # 00000 1 0000 1 0 -> one stuff after 5, another after next 4+prev? no:
        # after stuff bit (1) the run restarts; five more 0s trigger again.
        assert stuffed == [0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1]

    def test_never_six_identical(self):
        stuffed = stuff_bits([0] * 50 + [1] * 50)
        run, prev = 0, None
        for bit in stuffed:
            run = run + 1 if bit == prev else 1
            prev = bit
            assert run <= 5

    @given(bit_lists)
    def test_round_trip_property(self, bits):
        assert destuff_bits(stuff_bits(bits)) == bits

    @given(bit_lists)
    def test_stuffed_never_six_identical(self, bits):
        run, prev = 0, None
        for bit in stuff_bits(bits):
            run = run + 1 if bit == prev else 1
            prev = bit
            assert run <= 5

    @given(bit_lists)
    def test_stuffed_length_matches(self, bits):
        assert stuffed_length(bits) == len(stuff_bits(bits))
        assert count_stuff_bits(bits) == len(stuff_bits(bits)) - len(bits)

    def test_destuff_rejects_six_identical(self):
        with pytest.raises(StuffingError):
            destuff_bits([0, 0, 0, 0, 0, 0])

    def test_destuff_empty(self):
        assert destuff_bits([]) == []
