"""Batched synthesis byte-identity and the step-response micro-fix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog.channel import NOISY_CHANNEL, QUIET_CHANNEL
from repro.analog.transceiver import EdgeDynamics
from repro.analog.waveform import SynthesisConfig, step_response, synthesize_waveform
from repro.errors import PerfError
from repro.perf.batch import synthesize_waveform_batch, synthesize_waveform_matrix
from repro.perf.parallel import message_seed


def _reference_step_response(dt_s, v_start, v_target, dynamics):
    """The pre-refactor inline formulas, kept verbatim as the oracle."""
    wn = dynamics.omega_n
    zeta = dynamics.damping
    dt = np.asarray(dt_s, dtype=float)
    if zeta < 1.0:
        wd = wn * np.sqrt(1.0 - zeta**2)
        envelope = np.exp(-zeta * wn * dt)
        transient = envelope * (
            np.cos(wd * dt) + (zeta / np.sqrt(1.0 - zeta**2)) * np.sin(wd * dt)
        )
    elif zeta == 1.0:
        transient = np.exp(-wn * dt) * (1.0 + wn * dt)
    else:
        root = np.sqrt(zeta**2 - 1.0)
        s1 = wn * (-zeta + root)
        s2 = wn * (-zeta - root)
        transient = (s1 * np.exp(s2 * dt) - s2 * np.exp(s1 * dt)) / (s1 - s2)
    return v_target + (v_start - v_target) * transient


class TestStepConstantsMicroFix:
    @pytest.mark.parametrize("zeta", [0.25, 0.62, 0.999, 1.0, 1.01, 2.7])
    def test_bit_identical_to_inline_formulas(self, zeta):
        dynamics = EdgeDynamics(natural_freq_hz=2.3e6, damping=zeta)
        rng = np.random.default_rng(9)
        dt = rng.uniform(0.0, 2.5e-6, size=512)
        ours = step_response(dt, 0.12, 2.05, dynamics)
        oracle = _reference_step_response(dt, 0.12, 2.05, dynamics)
        assert np.array_equal(ours, oracle)

    def test_constants_are_cached_per_dynamics(self):
        dynamics = EdgeDynamics(natural_freq_hz=1.7e6, damping=0.4)
        assert dynamics.step_constants() is dynamics.step_constants()
        # Equal parameters share the cache entry regardless of instance.
        twin = EdgeDynamics(natural_freq_hz=1.7e6, damping=0.4)
        assert twin.step_constants() is dynamics.step_constants()

    def test_regimes(self):
        assert EdgeDynamics(1e6, 0.5).step_constants().kind == "under"
        assert EdgeDynamics(1e6, 1.0).step_constants().kind == "critical"
        assert EdgeDynamics(1e6, 1.5).step_constants().kind == "over"


class TestNdarrayPassthrough:
    def test_ndarray_input_matches_list_input(self):
        from repro.vehicles.profiles import sterling_acterra

        vehicle = sterling_acterra()
        transceiver = vehicle.ecus[0].transceiver
        config = SynthesisConfig(sample_rate=2_000_000.0, max_frame_bits=60)
        bits_list = [1, 0, 0, 1, 0, 1, 1, 0] * 8
        bits_array = np.asarray(bits_list, dtype=np.int8)
        for noise in (None, QUIET_CHANNEL):
            a = synthesize_waveform(
                bits_list, transceiver, config,
                noise=noise, rng=np.random.default_rng(5),
            )
            b = synthesize_waveform(
                bits_array, transceiver, config,
                noise=noise, rng=np.random.default_rng(5),
            )
            assert np.array_equal(a, b)


def _batch_rngs(seed, n):
    return [np.random.default_rng(message_seed(seed, i)) for i in range(n)]


class TestBatchedSynthesis:
    @pytest.mark.parametrize("noise", [None, QUIET_CHANNEL, NOISY_CHANNEL])
    def test_byte_identical_to_serial(self, noise):
        from repro.vehicles.profiles import vehicle_a

        vehicle = vehicle_a()
        transceiver = vehicle.ecus[0].transceiver
        config = SynthesisConfig(
            sample_rate=vehicle.sample_rate, max_frame_bits=60
        )
        bit_rng = np.random.default_rng(7)
        wire = bit_rng.integers(0, 2, size=(12, 60)).astype(np.int8)
        wire[:, 0] = 0  # SOF is dominant

        batched = synthesize_waveform_batch(
            wire, transceiver, config, noise=noise, rngs=_batch_rngs(11, 12)
        )
        serial_rngs = _batch_rngs(11, 12)
        for row, volts, rng in zip(wire, batched, serial_rngs):
            expected = synthesize_waveform(
                row, transceiver, config, noise=noise, rng=rng
            )
            assert np.array_equal(volts, expected)

    def test_group_of_one_matches_serial(self):
        from repro.vehicles.profiles import sterling_acterra

        transceiver = sterling_acterra().ecus[1].transceiver
        config = SynthesisConfig(sample_rate=2_000_000.0)
        wire = np.array([[0, 1, 1, 0, 0, 0, 1, 0, 1, 1]], dtype=np.int8)
        [volts] = synthesize_waveform_batch(
            wire, transceiver, config,
            noise=QUIET_CHANNEL, rngs=_batch_rngs(3, 1),
        )
        expected = synthesize_waveform(
            wire[0], transceiver, config,
            noise=QUIET_CHANNEL, rng=_batch_rngs(3, 1)[0],
        )
        assert np.array_equal(volts, expected)

    @pytest.mark.parametrize("noise", [None, NOISY_CHANNEL])
    def test_mixed_lengths_pad_batched_matches_serial(self, noise):
        """Pad-batching: rows of different wire lengths render in one
        matrix, each byte-identical to the serial render of its own
        (unpadded) bit sequence."""
        from repro.vehicles.profiles import vehicle_a

        transceiver = vehicle_a().ecus[0].transceiver
        config = SynthesisConfig(sample_rate=2_000_000.0, max_frame_bits=80)
        lengths = [40, 64, 52, 64, 33]
        bit_rng = np.random.default_rng(21)
        wire = bit_rng.integers(0, 2, size=(5, 64)).astype(np.int8)
        wire[:, 0] = 0  # SOF is dominant
        batched = synthesize_waveform_batch(
            wire, transceiver, config, noise=noise,
            rngs=_batch_rngs(17, 5), wire_lengths=lengths,
        )
        serial_rngs = _batch_rngs(17, 5)
        for row, n, volts, rng in zip(wire, lengths, batched, serial_rngs):
            expected = synthesize_waveform(
                row[:n], transceiver, config, noise=noise, rng=rng
            )
            assert np.array_equal(volts, expected)

    def test_matrix_rows_are_batch_rows(self):
        """The matrix variant is the batch minus the final slicing."""
        from repro.vehicles.profiles import vehicle_a

        transceiver = vehicle_a().ecus[0].transceiver
        config = SynthesisConfig(sample_rate=2_000_000.0, max_frame_bits=80)
        lengths = [48, 64, 36]
        wire = np.random.default_rng(2).integers(0, 2, size=(3, 64)).astype(np.int8)
        wire[:, 0] = 0
        volts, n_samples = synthesize_waveform_matrix(
            wire, transceiver, config, noise=QUIET_CHANNEL,
            rngs=_batch_rngs(9, 3), wire_lengths=lengths,
        )
        rows = synthesize_waveform_batch(
            wire, transceiver, config, noise=QUIET_CHANNEL,
            rngs=_batch_rngs(9, 3), wire_lengths=lengths,
        )
        assert volts.shape == (3, int(n_samples.max()))
        for i, row in enumerate(rows):
            assert row.size == int(n_samples[i])
            assert np.array_equal(volts[i, : row.size], row)

    def test_rejects_bad_wire_lengths(self):
        from repro.vehicles.profiles import sterling_acterra

        transceiver = sterling_acterra().ecus[0].transceiver
        config = SynthesisConfig(sample_rate=2_000_000.0)
        wire = np.zeros((2, 8), dtype=np.int8)
        with pytest.raises(PerfError):
            synthesize_waveform_batch(
                wire, transceiver, config,
                rngs=_batch_rngs(0, 2), wire_lengths=[8],
            )
        with pytest.raises(PerfError):
            synthesize_waveform_batch(
                wire, transceiver, config,
                rngs=_batch_rngs(0, 2), wire_lengths=[8, 9],
            )
        with pytest.raises(PerfError):
            synthesize_waveform_batch(
                wire, transceiver, config,
                rngs=_batch_rngs(0, 2), wire_lengths=[0, 8],
            )

    def test_rejects_bad_shapes(self):
        from repro.vehicles.profiles import sterling_acterra

        transceiver = sterling_acterra().ecus[0].transceiver
        config = SynthesisConfig(sample_rate=2_000_000.0)
        with pytest.raises(PerfError):
            synthesize_waveform_batch(
                np.zeros(8, dtype=np.int8), transceiver, config, rngs=[]
            )
        with pytest.raises(PerfError):
            synthesize_waveform_batch(
                np.zeros((2, 8), dtype=np.int8), transceiver, config,
                rngs=_batch_rngs(0, 1),
            )
        with pytest.raises(PerfError):
            synthesize_waveform_batch(
                np.zeros((1, 0), dtype=np.int8), transceiver, config,
                rngs=_batch_rngs(0, 1),
            )
