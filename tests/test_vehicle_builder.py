"""Vehicle inference: capture -> synthetic twin round trip."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.vehicles.builder import (
    estimate_channel_noise,
    infer_schedules,
    infer_vehicle,
)
from repro.vehicles.dataset import capture_session


@pytest.fixture(scope="module")
def twin(sterling, sterling_session):
    return infer_vehicle(sterling_session.traces, name="SterlingTwin")


class TestInferVehicle:
    def test_ecu_count_recovered(self, sterling, twin):
        assert len(twin.ecus) == len(sterling.ecus)

    def test_sa_partition_recovered(self, sterling, twin):
        truth = {
            frozenset(ecu.source_addresses) for ecu in sterling.ecus
        }
        inferred = {
            frozenset(ecu.source_addresses) for ecu in twin.ecus
        }
        assert inferred == truth

    def test_levels_recovered(self, sterling, twin):
        truth_levels = sorted(e.transceiver.v_dominant for e in sterling.ecus)
        inferred_levels = sorted(e.transceiver.v_dominant for e in twin.ecus)
        for a, b in zip(truth_levels, inferred_levels):
            assert b == pytest.approx(a, abs=0.02)

    def test_capture_parameters_copied(self, sterling, twin):
        assert twin.bitrate == sterling.bitrate
        assert twin.sample_rate == sterling.sample_rate
        assert twin.resolution_bits == sterling.resolution_bits

    def test_twin_is_capturable(self, twin):
        """The inferred vehicle feeds straight back into the simulator."""
        session = capture_session(twin, 0.5, seed=9)
        assert len(session) > 10

    def test_twin_trains_a_transferable_model(self, sterling, sterling_session, twin):
        """A model trained on the twin classifies the real capture."""
        from repro.core import (
            Detector,
            ExtractionConfig,
            Metric,
            TrainingData,
            extract_many,
            train_model,
        )

        twin_session = capture_session(twin, 4.0, seed=10)
        config = ExtractionConfig.for_trace(twin_session.traces[0])
        model = train_model(
            TrainingData.from_edge_sets(extract_many(twin_session.traces, config)),
            metric=Metric.MAHALANOBIS,
            sa_clusters=twin.sa_clusters,
        )
        real_sets = extract_many(sterling_session.traces[:300], config)
        vectors = np.stack([e.vector for e in real_sets])
        sas = np.array([e.source_address for e in real_sets])
        batch = Detector(model).classify_batch(vectors, sas)
        # Cluster prediction must transfer (thresholds may not).
        mismatches = (batch.expected_cluster != batch.predicted_cluster).mean()
        assert mismatches < 0.05

    def test_empty_capture_rejected(self):
        with pytest.raises(DatasetError):
            infer_vehicle([])


class TestInferSchedules:
    def test_periods_recovered(self, sterling, sterling_session):
        schedules = infer_schedules(sterling_session.traces)
        truth = {
            s.j1939_id.to_can_id(): s.period_s
            for ecu in sterling.ecus
            for s in ecu.schedules
        }
        assert set(schedules) == set(truth)
        for can_id, schedule in schedules.items():
            assert schedule.period_s == pytest.approx(truth[can_id], rel=0.08)


class TestEstimateNoise:
    def test_white_noise_magnitude(self, sterling, sterling_session):
        noise = estimate_channel_noise(sterling_session.traces[:200])
        truth = sterling.noise
        combined_truth = np.hypot(truth.white_sigma_v, truth.ar_sigma_v)
        assert noise.white_sigma_v == pytest.approx(combined_truth, rel=0.5)

    def test_too_few_traces_rejected(self):
        with pytest.raises(DatasetError):
            estimate_channel_noise([])
