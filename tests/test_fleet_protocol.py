"""The fleet gateway's wire codec: HTTP/1.1 parsing and RFC 6455 frames."""

import asyncio
import json

import pytest

from repro.fleet.protocol import (
    MAX_FRAME_BYTES,
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    HttpRequest,
    ProtocolError,
    client_handshake_request,
    encode_ws_frame,
    read_http_request,
    read_http_response,
    read_ws_frame,
    render_json,
    render_response,
    render_ws_handshake,
    websocket_accept,
)


def run(coro):
    return asyncio.run(coro)


def fed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def parse_request(data: bytes, **kwargs):
    async def go():
        return await read_http_request(fed_reader(data), **kwargs)

    return run(go())


def parse_response(data: bytes):
    async def go():
        return await read_http_response(fed_reader(data))

    return run(go())


def parse_frame(data: bytes):
    async def go():
        return await read_ws_frame(fed_reader(data))

    return run(go())


# ----------------------------------------------------------------------
# HTTP request parsing
# ----------------------------------------------------------------------
class TestHttpRequests:
    def test_parses_line_query_headers_and_body(self):
        body = b'{"x": 1}'
        raw = (
            b"POST /tenants/v1/verdicts?since=3&limit=9 HTTP/1.1\r\n"
            b"Host: fleet\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse_request(raw)
        assert request.method == "POST"
        assert request.path == "/tenants/v1/verdicts"
        assert request.query == {"since": ["3"], "limit": ["9"]}
        assert request.headers["host"] == "fleet"
        assert request.body == body
        assert request.json() == {"x": 1}

    def test_trailing_slash_is_normalised(self):
        request = parse_request(b"GET /tenants/ HTTP/1.1\r\n\r\n")
        assert request.path == "/tenants"
        assert parse_request(b"GET / HTTP/1.1\r\n\r\n").path == "/"

    def test_clean_eof_between_requests_is_none(self):
        assert parse_request(b"") is None

    def test_truncated_request_raises(self):
        with pytest.raises(ProtocolError, match="mid-request"):
            parse_request(b"GET /fleet HTTP/1.1\r\nHost: x\r\n")

    def test_malformed_request_line_raises(self):
        with pytest.raises(ProtocolError, match="request line"):
            parse_request(b"NOT-HTTP\r\n\r\n")

    def test_non_numeric_content_length_raises(self):
        with pytest.raises(ProtocolError, match="Content-Length"):
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_oversize_body_rejected_before_reading_it(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n" + b"x" * 1000
        with pytest.raises(ProtocolError, match="Content-Length"):
            parse_request(raw, max_body=64)

    def test_keep_alive_default_and_explicit_close(self):
        assert parse_request(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        request = parse_request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_websocket_upgrade_detection(self):
        raw = (
            b"GET /tenants/v1/stream HTTP/1.1\r\n"
            b"Connection: keep-alive, Upgrade\r\n"
            b"Upgrade: websocket\r\n"
            b"Sec-WebSocket-Key: abc\r\n\r\n"
        )
        assert parse_request(raw).is_websocket_upgrade
        assert not parse_request(b"GET / HTTP/1.1\r\n\r\n").is_websocket_upgrade

    def test_json_of_empty_or_invalid_body_raises(self):
        with pytest.raises(ProtocolError, match="empty"):
            parse_request(b"GET / HTTP/1.1\r\n\r\n").json()
        request = HttpRequest(
            method="POST", target="/", path="/", body=b"not json"
        )
        with pytest.raises(ProtocolError, match="not valid JSON"):
            request.json()


# ----------------------------------------------------------------------
# HTTP response rendering (parsed back with the client-side reader)
# ----------------------------------------------------------------------
class TestHttpResponses:
    def test_render_json_roundtrip(self):
        status, headers, body = parse_response(
            render_json(200, {"ok": True, "n": 3})
        )
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert headers["connection"] == "keep-alive"
        assert json.loads(body) == {"ok": True, "n": 3}

    def test_connection_close_and_extra_headers(self):
        raw = render_response(
            503,
            b"busy",
            content_type="text/plain",
            keep_alive=False,
            extra_headers={"Retry-After": "1"},
        )
        status, headers, body = parse_response(raw)
        assert status == 503
        assert headers["connection"] == "close"
        assert headers["retry-after"] == "1"
        assert body == b"busy"

    def test_unknown_status_still_renders(self):
        assert b"418 Unknown" in render_response(418)


# ----------------------------------------------------------------------
# WebSocket
# ----------------------------------------------------------------------
class TestWebSocket:
    def test_accept_key_matches_rfc6455_example(self):
        # The worked example from RFC 6455 section 1.3.
        key = "dGhlIHNhbXBsZSBub25jZQ=="
        assert websocket_accept(key) == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_handshake_response_carries_accept(self):
        raw = render_ws_handshake("dGhlIHNhbXBsZSBub25jZQ==")
        assert raw.startswith(b"HTTP/1.1 101 ")
        assert b"Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in raw

    def test_client_handshake_request_carries_key(self):
        raw = client_handshake_request("/tenants/v1/stream", "abc123")
        assert raw.startswith(b"GET /tenants/v1/stream HTTP/1.1")
        assert b"Sec-WebSocket-Key: abc123" in raw

    @pytest.mark.parametrize(
        "size", [0, 5, 125, 126, 1000, 1 << 16, (1 << 16) + 17]
    )
    def test_frame_roundtrip_across_length_encodings(self, size):
        payload = bytes(i % 251 for i in range(size))
        opcode, decoded = parse_frame(encode_ws_frame(payload))
        assert opcode == OP_TEXT
        assert decoded == payload

    def test_masked_client_frame_roundtrip(self):
        payload = b"masked chunk payload"
        raw = encode_ws_frame(
            payload, opcode=OP_BINARY, mask_key=b"\x01\x02\x03\x04"
        )
        assert payload not in raw  # actually masked on the wire
        opcode, decoded = parse_frame(raw)
        assert opcode == OP_BINARY
        assert decoded == payload

    def test_control_opcodes_survive(self):
        assert parse_frame(encode_ws_frame(b"hi", opcode=OP_PING)) == (
            OP_PING,
            b"hi",
        )

    def test_bad_mask_key_length_raises(self):
        with pytest.raises(ProtocolError, match="4 bytes"):
            encode_ws_frame(b"x", mask_key=b"\x01\x02")

    def test_fragmented_frames_rejected(self):
        raw = bytearray(encode_ws_frame(b"frag"))
        raw[0] &= 0x7F  # clear FIN
        with pytest.raises(ProtocolError, match="fragmented"):
            parse_frame(bytes(raw))

    def test_oversize_frame_rejected_before_reading_payload(self):
        head = bytes([0x81, 127]) + (MAX_FRAME_BYTES + 1).to_bytes(8, "big")
        with pytest.raises(ProtocolError, match="too large"):
            parse_frame(head)

    def test_bare_eof_reads_as_close(self):
        assert parse_frame(b"") == (OP_CLOSE, b"")
