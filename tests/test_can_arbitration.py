"""Bitwise arbitration behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.arbitration import arbitrate, arbitration_order
from repro.can.frame import CanFrame
from repro.errors import CanError


def ext(can_id: int) -> CanFrame:
    return CanFrame(can_id=can_id, data=b"\x00", extended=True)


class TestArbitrate:
    def test_single_frame_wins(self):
        result = arbitrate([ext(0x100)])
        assert result.winner_index == 0
        assert result.loss_bit == (None,)

    def test_lower_id_wins(self):
        result = arbitrate([ext(0x200), ext(0x100)])
        assert result.winner_index == 1

    def test_loser_records_loss_bit(self):
        result = arbitrate([ext(0x1FFFFFFF), ext(0x00000000)])
        assert result.winner_index == 1
        loss = result.loss_bit[0]
        assert loss is not None and loss >= 1  # lost somewhere after SOF

    def test_figure_2_3_example(self):
        """ECU1 loses to ECU0 at the first differing identifier bit."""
        # ids differing in one bit: 0b...0100... vs 0b...0000...
        winner = ext(0b0_0000_0000_0000_0000_0000_0000_0000)
        loser = ext(0b0_0000_0100_0000_0000_0000_0000_0000)
        result = arbitrate([loser, winner])
        assert result.winner_index == 1
        # Differing id bit is base-id bit index 6 -> logical bit 7 (after SOF).
        assert result.loss_bit[0] == 7

    def test_standard_beats_extended_same_base(self):
        """A standard frame's dominant RTR beats extended SRR (bit 12)."""
        standard = CanFrame(can_id=0x123, data=b"", extended=False)
        extended = CanFrame(can_id=(0x123 << 18) | 0x45, data=b"", extended=True)
        result = arbitrate([extended, standard])
        assert result.winner_index == 1

    def test_identical_arbitration_fields_rejected(self):
        with pytest.raises(CanError):
            arbitrate([ext(0x100), ext(0x100)])

    def test_empty_rejected(self):
        with pytest.raises(CanError):
            arbitrate([])

    @given(st.lists(st.integers(0, (1 << 29) - 1), min_size=2, max_size=6, unique=True))
    def test_minimum_id_always_wins(self, ids):
        frames = [ext(i) for i in ids]
        result = arbitrate(frames)
        assert frames[result.winner_index].can_id == min(ids)


class TestArbitrationOrder:
    @given(st.lists(st.integers(0, (1 << 29) - 1), min_size=1, max_size=6, unique=True))
    def test_drains_in_priority_order(self, ids):
        frames = [ext(i) for i in ids]
        order = arbitration_order(frames)
        drained = [frames[i].can_id for i in order]
        assert drained == sorted(ids)
