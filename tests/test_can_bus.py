"""Bus scheduling: serialisation, arbitration under contention, timing."""

import pytest

from repro.can.bus import INTERFRAME_SPACE_BITS, CanBus
from repro.can.frame import CanFrame
from repro.can.j1939 import J1939Id
from repro.can.traffic import MessageSchedule, ScheduledFrame, TrafficGenerator
from repro.errors import CanError


def release(t: float, can_id: int, sender: str) -> ScheduledFrame:
    return ScheduledFrame(t, CanFrame(can_id=can_id, data=b"\x00" * 4), sender)


class TestSchedule:
    def test_empty(self):
        assert CanBus().schedule([]) == []

    def test_single_frame_at_release(self):
        txs = CanBus().schedule([release(0.5, 0x100, "a")])
        assert len(txs) == 1
        assert txs[0].start_s == pytest.approx(0.5)
        assert not txs[0].contended

    def test_no_overlap(self):
        bus = CanBus(bitrate=250_000)
        releases = [release(0.0, 0x100 + i, f"e{i}") for i in range(6)]
        txs = bus.schedule(releases)
        for first, second in zip(txs, txs[1:]):
            end = first.start_s + first.duration_s(bus.bitrate)
            assert second.start_s >= end

    def test_interframe_space_respected(self):
        bus = CanBus(bitrate=250_000)
        txs = bus.schedule([release(0.0, 0x100, "a"), release(0.0, 0x200, "b")])
        gap = txs[1].start_s - (txs[0].start_s + txs[0].duration_s(bus.bitrate))
        assert gap >= INTERFRAME_SPACE_BITS * bus.bit_time_s - 1e-12

    def test_simultaneous_releases_resolved_by_priority(self):
        txs = CanBus().schedule([release(0.0, 0x300, "low"), release(0.0, 0x100, "high")])
        assert [t.sender for t in txs] == ["high", "low"]
        # The winner fought an arbitration round; the loser retries on an
        # idle bus afterwards.
        assert txs[0].contended and not txs[1].contended

    def test_later_release_waits_for_busy_bus(self):
        bus = CanBus(bitrate=250_000)
        first = release(0.0, 0x100, "a")
        # Released in the middle of the first transmission.
        second = release(0.0001, 0x200, "b")
        txs = bus.schedule([first, second])
        first_end = txs[0].start_s + txs[0].duration_s(bus.bitrate)
        assert txs[1].start_s >= first_end

    def test_result_sorted_by_start(self):
        releases = [release(0.01 * i, 0x100 + (i % 3), f"e{i}") for i in range(10)]
        txs = CanBus().schedule(releases)
        starts = [t.start_s for t in txs]
        assert starts == sorted(starts)

    def test_invalid_bitrate(self):
        with pytest.raises(CanError):
            CanBus(bitrate=0)


class TestUtilisation:
    def test_utilisation_fraction(self):
        bus = CanBus(bitrate=250_000)
        txs = bus.schedule([release(0.0, 0x100, "a")])
        u = bus.utilisation(txs, horizon_s=1.0)
        assert 0.0 < u < 0.01

    def test_invalid_horizon(self):
        with pytest.raises(CanError):
            CanBus().utilisation([], horizon_s=0.0)


class TestEndToEndTraffic:
    def test_generator_through_bus(self):
        j = J1939Id(priority=6, pgn=0xFEF1, source_address=0x10)
        generator = TrafficGenerator(
            schedules=[("ecu", MessageSchedule(j1939_id=j, period_s=0.01))], seed=3
        )
        bus = CanBus(bitrate=250_000)
        txs = bus.schedule(generator.frames_until(0.2))
        assert len(txs) == 20
        assert all(t.sender == "ecu" for t in txs)
