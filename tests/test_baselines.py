"""Related-work baselines and their ML substrates."""

import numpy as np
import pytest

from repro.baselines.fda import FisherDiscriminant
from repro.baselines.features import (
    message_feature_vector,
    segment_features,
    segment_message,
    steady_state_averages,
)
from repro.baselines.logistic import LogisticRegression
from repro.baselines.murvay import MurvayGrozaIdentifier
from repro.baselines.scission import ScissionIdentifier
from repro.baselines.simple_ids import SimpleAuthenticator, _equal_error_threshold
from repro.baselines.viden import VidenIdentifier
from repro.core.edge_extraction import ExtractionConfig
from repro.errors import TrainingError


@pytest.fixture(scope="module")
def capture(vehicle_a_session):
    train, test = vehicle_a_session.split(0.6, seed=9)
    train, test = train[:900], test[:300]
    return (
        train,
        [t.metadata["sender"] for t in train],
        test,
        [t.metadata["sender"] for t in test],
        ExtractionConfig.for_trace(train[0]).threshold,
    )


class TestLogisticRegression:
    def test_separable_blobs(self, rng):
        X = np.concatenate([rng.normal(size=(100, 3)), 5 + rng.normal(size=(100, 3))])
        y = ["a"] * 100 + ["b"] * 100
        clf = LogisticRegression(epochs=200).fit(X, y)
        assert clf.score(X, y) > 0.98

    def test_three_classes(self, rng):
        X = np.concatenate(
            [rng.normal(size=(80, 2)), [0, 8] + rng.normal(size=(80, 2)), [8, 0] + rng.normal(size=(80, 2))]
        )
        y = ["a"] * 80 + ["b"] * 80 + ["c"] * 80
        clf = LogisticRegression().fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_probabilities_normalised(self, rng):
        X = np.concatenate([rng.normal(size=(50, 2)), 4 + rng.normal(size=(50, 2))])
        y = ["a"] * 50 + ["b"] * 50
        clf = LogisticRegression().fit(X, y)
        probs = clf.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_needs_two_classes(self, rng):
        with pytest.raises(TrainingError):
            LogisticRegression().fit(rng.normal(size=(10, 2)), ["a"] * 10)

    def test_unfitted_predict(self, rng):
        with pytest.raises(TrainingError):
            LogisticRegression().predict(rng.normal(size=(3, 2)))


class TestFisherDiscriminant:
    def test_projection_separates(self, rng):
        X = np.concatenate([rng.normal(size=(100, 5)), 3 + rng.normal(size=(100, 5))])
        y = ["a"] * 100 + ["b"] * 100
        fda = FisherDiscriminant().fit(X, y)
        projected = fda.transform(X)
        assert projected.shape == (200, 1)  # k-1 components
        assert abs(projected[:100].mean() - projected[100:].mean()) > 3 * projected[:100].std()

    def test_predict_nearest_mean(self, rng):
        X = np.concatenate([rng.normal(size=(60, 4)), 6 + rng.normal(size=(60, 4))])
        y = ["a"] * 60 + ["b"] * 60
        fda = FisherDiscriminant().fit(X, y)
        predictions = fda.predict(X)
        accuracy = np.mean([p == t for p, t in zip(predictions, y)])
        assert accuracy > 0.98

    def test_component_cap(self, rng):
        X = rng.normal(size=(90, 6))
        X[30:60] += 4
        X[60:] -= 4
        y = ["a"] * 30 + ["b"] * 30 + ["c"] * 30
        fda = FisherDiscriminant(n_components=10).fit(X, y)
        assert fda.projection_.shape[1] == 2  # capped at k-1

    def test_small_class_rejected(self, rng):
        with pytest.raises(TrainingError):
            FisherDiscriminant().fit(rng.normal(size=(3, 2)), ["a", "a", "b"])


class TestFeatures:
    def test_segments_partition_message(self, capture):
        train, _, _, _, threshold = capture
        segments = segment_message(train[0], threshold)
        assert segments.dominant.size > 0
        assert segments.recessive.size > 0
        assert segments.rising.size > 0
        assert segments.falling.size > 0
        assert segments.dominant.min() >= threshold
        assert segments.recessive.max() < threshold

    def test_segment_features_shape(self, rng):
        assert segment_features(rng.normal(size=100)).shape == (9,)
        assert segment_features(np.empty(0)).shape == (9,)

    def test_message_vector_dimension(self, capture):
        train, _, _, _, threshold = capture
        assert message_feature_vector(train[0], threshold).shape == (36,)

    def test_steady_state_averages(self, capture):
        train, _, _, _, threshold = capture
        features = steady_state_averages(train[0], threshold, samples_per_state=8)
        assert features.shape == (16,)
        # Dominant averages clearly above recessive averages.
        assert features[:8].mean() > features[8:].mean() + 1000


class TestIdentifiers:
    def test_viden_accuracy(self, capture):
        train, y_train, test, y_test, threshold = capture
        viden = VidenIdentifier(threshold).fit(train, y_train)
        assert viden.score(test, y_test) > 0.9

    def test_viden_update_moves_profile(self, capture):
        train, y_train, _, _, threshold = capture
        viden = VidenIdentifier(threshold).fit(train, y_train)
        before = viden.profiles_[y_train[0]].copy()
        viden.update(train[0], y_train[0])
        assert not np.array_equal(before, viden.profiles_[y_train[0]])

    def test_scission_accuracy(self, capture):
        train, y_train, test, y_test, threshold = capture
        scission = ScissionIdentifier(threshold, epochs=150).fit(train, y_train)
        assert scission.score(test, y_test) > 0.9

    def test_simple_accuracy(self, capture):
        train, y_train, test, y_test, threshold = capture
        simple = SimpleAuthenticator(threshold).fit(train, y_train)
        assert simple.score(test, y_test) > 0.95

    def test_simple_authenticate(self, capture):
        train, y_train, test, y_test, threshold = capture
        simple = SimpleAuthenticator(threshold).fit(train, y_train)
        genuine = np.mean(
            [simple.authenticate(t, l) for t, l in zip(test[:100], y_test[:100])]
        )
        imposter_label = "ECU0"
        imposter = np.mean(
            [
                simple.authenticate(t, imposter_label)
                for t, l in zip(test[:100], y_test[:100])
                if l != imposter_label
            ]
        )
        assert genuine > 0.9
        assert imposter < 0.1

    def test_simple_unknown_claim_rejected(self, capture):
        train, y_train, test, _, threshold = capture
        simple = SimpleAuthenticator(threshold).fit(train, y_train)
        assert not simple.authenticate(test[0], "ECU99")

    def test_murvay_beats_chance_but_weak(self, capture):
        """Murvay & Groza is the weak baseline (paper Section 1.2.1)."""
        train, y_train, test, y_test, _ = capture
        murvay = MurvayGrozaIdentifier("mse", prefix_samples=1200).fit(train, y_train)
        accuracy = murvay.score(test, y_test)
        assert accuracy > 0.3  # well above 1/5 chance

    def test_murvay_methods_disagree_allowed(self, capture):
        train, y_train, test, _, _ = capture
        for method in MurvayGrozaIdentifier.METHODS:
            ident = MurvayGrozaIdentifier(method, prefix_samples=1200).fit(train, y_train)
            assert ident.predict_one(test[0]) in set(y_train)

    def test_murvay_invalid_method(self):
        with pytest.raises(TrainingError):
            MurvayGrozaIdentifier("dtw")

    def test_fit_validates_lengths(self, capture):
        train, y_train, _, _, threshold = capture
        with pytest.raises(TrainingError):
            VidenIdentifier(threshold).fit(train, y_train[:-1])


class TestEqualErrorThreshold:
    def test_separable(self):
        genuine = np.array([1.0, 2.0, 3.0])
        imposter = np.array([10.0, 11.0, 12.0])
        threshold = _equal_error_threshold(genuine, imposter)
        # Both error rates are zero anywhere in [3, 10); the search
        # settles on the tightest such threshold.
        assert 3.0 <= threshold < 10.0
        assert (genuine <= threshold).all()
        assert (imposter > threshold).all()

    def test_balances_rates(self, rng):
        genuine = np.abs(rng.normal(0, 1, size=2000))
        imposter = np.abs(rng.normal(4, 1, size=2000))
        threshold = _equal_error_threshold(genuine, imposter)
        frr = np.mean(genuine > threshold)
        far = np.mean(imposter <= threshold)
        assert abs(frr - far) < 0.03
