"""Payload envelope monitor."""

import pytest

from repro.errors import TrainingError
from repro.ids.alerts import Alert, AlertLog
from repro.ids.payload import PayloadMonitor


def training_records(can_id=0x100, n=256):
    """Four signal kinds: bounded walk, constant, wrapping counter, free.

    * byte 0 — random walk confined to [95, 105], steps of at most 1
      (training deterministically ends at 96);
    * byte 1 — constant 0x55;
    * byte 2 — full-range counter (k mod 256), ends at 255;
    * byte 3 — pseudo-random, full range.
    """
    records = []
    walk = 100
    for k in range(n):
        walk = min(105, max(95, walk + (1 if (k * 7) % 3 == 0 else -1)))
        free = (k * 101 + 17) % 256
        records.append(
            (k * 0.01, can_id, bytes([walk, 0x55, k % 256, free]))
        )
    return records


class TestPayloadMonitor:
    def make(self):
        return PayloadMonitor().fit(training_records())

    def test_in_envelope_passes(self):
        monitor = self.make()
        assert monitor.observe(2.0, 0x100, bytes([96, 0x55, 0, 7])) is None

    def test_out_of_range_flagged(self):
        monitor = self.make()
        alert = monitor.observe(2.0, 0x100, bytes([250, 0x55, 0, 7]))
        assert alert is not None
        assert alert.reason == "out-of-range"

    def test_impossible_step_flagged(self):
        """Both values in range, but the jump is physically impossible."""
        monitor = self.make()
        assert monitor.observe(2.0, 0x100, bytes([96, 0x55, 0, 7])) is None
        alert = monitor.observe(2.01, 0x100, bytes([99, 0x55, 1, 8]))
        assert alert is not None
        assert alert.reason == "step"

    def test_wrapping_counter_not_flagged(self):
        """255 -> 0 is a modular step of 1; the monitor must not alarm."""
        monitor = self.make()
        assert monitor.observe(2.0, 0x100, bytes([96, 0x55, 255, 7])) is None
        assert monitor.observe(2.01, 0x100, bytes([96, 0x55, 0, 8])) is None

    def test_constant_byte_deviation_flagged(self):
        monitor = self.make()
        alert = monitor.observe(2.0, 0x100, bytes([96, 0xAA, 0, 7]))
        assert alert is not None
        assert alert.reason in ("out-of-range", "step")

    def test_truncated_payload_flagged(self):
        monitor = self.make()
        alert = monitor.observe(2.0, 0x100, bytes([96]))
        assert alert is not None
        assert alert.reason == "truncated"

    def test_unmonitored_id_ignored(self):
        monitor = self.make()
        assert monitor.observe(2.0, 0x999, bytes([1, 2, 3])) is None

    def test_needs_data(self):
        with pytest.raises(TrainingError):
            PayloadMonitor().fit([(0.0, 0x1, b"\x00")])

    def test_invalid_guards(self):
        with pytest.raises(TrainingError):
            PayloadMonitor(step_guard=0.5)


class TestAlertLog:
    def test_aggregation(self):
        log = AlertLog()
        log.record(Alert(1.0, "voltage", 0x100, "cluster-mismatch"))
        log.record(Alert(2.0, "period", 0x100, "too-early"))
        log.record(Alert(3.0, "period", 0x200, "gap"))
        assert len(log) == 3
        assert log.by_detector() == {"voltage": 1, "period": 2}
        assert log.by_can_id() == {0x100: 2, 0x200: 1}
        assert log.by_reason()["too-early"] == 1
        assert len(log.in_window(1.5, 2.5)) == 1
        assert "3 alerts" in log.summary()

    def test_empty_summary(self):
        assert AlertLog().summary() == "no alerts"
