"""The live telemetry endpoint: /metrics, /health, /timeseries."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.model import ClusterProfile, Metric, VProfileModel
from repro.errors import ObservabilityError
from repro.obs.health import HealthConfig, ProfileHealthMonitor
from repro.obs.registry import MetricsRegistry
from repro.obs.server import (
    JSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    parse_host_port,
)
from repro.obs.timeseries import TimeSeriesStore


def make_model(dim=4):
    clusters = [
        ClusterProfile(
            name="ECU0",
            mean=np.zeros(dim),
            max_distance=3.0,
            count=10,
            covariance=np.eye(dim),
            inv_covariance=np.eye(dim),
        )
    ]
    return VProfileModel(
        metric=Metric.MAHALANOBIS, clusters=clusters, sa_to_cluster={0x10: 0}
    )


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("vprofile_messages_total", help="msgs").inc(42)
    return registry


@pytest.fixture
def full_server(registry):
    health = ProfileHealthMonitor(make_model(), HealthConfig(hysteresis=1))
    health.record_verdict(0x10, False)
    timeseries = TimeSeriesStore(registry, interval_s=0.0)
    timeseries.sample(now=1.0)
    timeseries.sample(now=2.0)
    server = MetricsServer(registry, health=health, timeseries=timeseries)
    with server:
        yield server


class TestEndpoints:
    def test_metrics_in_prometheus_format(self, full_server):
        status, content_type, body = fetch(full_server.url + "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        assert "# TYPE vprofile_messages_total counter" in text
        assert "vprofile_messages_total 42" in text

    def test_health_verdicts_json(self, full_server):
        status, content_type, body = fetch(full_server.url + "/health")
        assert status == 200
        assert content_type == JSON_CONTENT_TYPE
        payload = json.loads(body)
        assert payload["overall"] == "healthy"
        assert payload["sources"]["0x10"]["state"] == "healthy"

    def test_timeseries_payload(self, full_server):
        status, _, body = fetch(full_server.url + "/timeseries")
        assert status == 200
        payload = json.loads(body)
        assert [p["ts"] for p in payload["fine"]] == [1.0, 2.0]

    def test_timeseries_last_param(self, full_server):
        _, _, body = fetch(full_server.url + "/timeseries?last=1")
        payload = json.loads(body)
        assert [p["ts"] for p in payload["fine"]] == [2.0]

    def test_timeseries_non_integer_last_is_400(self, full_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(full_server.url + "/timeseries?last=abc")
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert "'last'" in payload["error"]
        assert "'abc'" in payload["error"]

    def test_unknown_route_is_404_with_directory(self, full_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(full_server.url + "/nope")
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read())
        assert "/metrics" in payload["routes"]

    def test_url_reflects_ephemeral_port(self, full_server):
        assert full_server.port != 0
        assert full_server.url == f"http://127.0.0.1:{full_server.port}"

    def test_port_zero_binds_distinct_ephemeral_ports(self, registry):
        """Two port-0 servers coexist: each gets its own OS-chosen port,
        reachable at the URL built from the bound address."""
        with MetricsServer(registry) as first, MetricsServer(registry) as second:
            assert first.port != 0 and second.port != 0
            assert first.port != second.port
            for server in (first, second):
                status, _, body = fetch(server.url + "/metrics")
                assert status == 200
                assert b"vprofile_messages_total" in body


class TestDegradedModes:
    def test_health_unavailable_is_503(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/health")
            assert excinfo.value.code == 503

    def test_timeseries_unavailable_is_503(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/timeseries")
            assert excinfo.value.code == 503

    def test_metrics_still_serves_without_optional_components(self, registry):
        with MetricsServer(registry) as server:
            status, _, body = fetch(server.url + "/metrics")
        assert status == 200
        assert b"vprofile_messages_total" in body

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry)
        server.start()
        server.stop()
        server.stop()


class TestParseHostPort:
    def test_host_and_port(self):
        assert parse_host_port("127.0.0.1:9100") == ("127.0.0.1", 9100)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_host_port(":9100") == ("127.0.0.1", 9100)

    def test_port_zero_means_ephemeral(self):
        assert parse_host_port("localhost:0") == ("localhost", 0)

    @pytest.mark.parametrize("spec", ["", "nohost", "host:", "host:notaport", "host:-1", "host:70000"])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ObservabilityError):
            parse_host_port(spec)
