"""Chapter 5 enhancement studies (Tables 5.1 and 5.2)."""

import pytest

from repro.eval.enhancements import multi_edge_enhancement, threshold_enhancement
from repro.vehicles.dataset import capture_session


@pytest.fixture(scope="module")
def long_session(veh_a):
    """Traces long enough for three edge sets 25 us apart."""
    return capture_session(veh_a, 5.0, seed=200, truncate_bits=85)


class TestThresholdEnhancement:
    @pytest.fixture(scope="class")
    def result(self, long_session):
        return threshold_enhancement(long_session.traces)

    def test_all_ecus_covered(self, result):
        assert [s.ecu for s in result.baseline] == [f"ECU{i}" for i in range(5)]
        assert len(result.enhanced) == 5

    def test_statistics_positive(self, result):
        for base, enhanced in result.paired():
            assert base.std > 0 and enhanced.std > 0
            assert base.max_distance > 0 and enhanced.max_distance > 0

    def test_thresholds_change_values(self, result):
        """The paper: cluster thresholds move the statistics (in either
        direction) without changing the headline detection rates."""
        deltas = [
            abs(b.std - e.std) + abs(b.max_distance - e.max_distance)
            for b, e in result.paired()
        ]
        assert any(d > 1e-6 for d in deltas)

    def test_labels(self, result):
        assert result.baseline_label == "static threshold"
        assert result.enhanced_label == "cluster threshold"


class TestMultiEdgeEnhancement:
    @pytest.fixture(scope="class")
    def result(self, long_session):
        return multi_edge_enhancement(long_session.traces)

    def test_std_reduced_for_every_cluster(self, result):
        """Table 5.2: averaging three edge sets lowers every cluster's
        per-sample standard deviation."""
        for base, enhanced in result.paired():
            assert enhanced.std < base.std

    def test_max_distance_mostly_reduced(self, result):
        """Measured in the single-edge metric, the averaged edge sets sit
        closer to their mean for most clusters (paper: all but ECU 1)."""
        improved = sum(
            1 for b, e in result.paired() if e.max_distance < b.max_distance
        )
        assert improved >= len(result.baseline) - 1

    def test_counts_match(self, result):
        for base, enhanced in result.paired():
            assert base.count == enhanced.count


class TestReporting:
    def test_format(self, long_session):
        from repro.eval.reporting import format_enhancement

        result = threshold_enhancement(long_session.traces)
        text = format_enhancement(result, "Table 5.1")
        assert "Table 5.1" in text
        assert "ECU0" in text
