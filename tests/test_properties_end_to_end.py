"""End-to-end property tests across the whole synthesis/extraction stack.

These are the invariants the reproduction rests on:

* every well-formed J1939 frame, synthesised through any plausible
  transceiver at any sampling phase, yields an edge set whose decoded SA
  equals the frame's SA;
* waveform voltages stay inside the physical envelope implied by the
  transceiver's levels and damping;
* distance metrics behave like metrics on the extracted features.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acquisition.adc import AdcConfig
from repro.acquisition.sampler import CaptureChain
from repro.analog.channel import ChannelNoise
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import SynthesisConfig, synthesize_waveform
from repro.can.frame import CanFrame
from repro.can.j1939 import J1939Id
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set

transceivers = st.builds(
    TransceiverParams,
    name=st.just("T"),
    v_dominant=st.floats(1.7, 2.4),
    v_recessive=st.floats(0.0, 0.05),
    rise=st.builds(
        EdgeDynamics,
        natural_freq_hz=st.floats(0.9e6, 3.0e6),
        damping=st.floats(0.45, 1.0),
    ),
    fall=st.builds(
        EdgeDynamics,
        natural_freq_hz=st.floats(0.7e6, 2.0e6),
        damping=st.floats(0.9, 1.4),
    ),
)

j1939_frames = st.builds(
    lambda priority, pgn, sa, data: CanFrame(
        can_id=J1939Id(priority=priority, pgn=pgn, source_address=sa).to_can_id(),
        data=data,
    ),
    priority=st.integers(0, 7),
    pgn=st.integers(240 << 8, (1 << 18) - 1),  # PDU2 broadcast PGNs
    sa=st.integers(0, 255),
    data=st.binary(min_size=0, max_size=8),
)


class TestSaDecodingProperty:
    @settings(max_examples=60, deadline=None)
    @given(frame=j1939_frames, transceiver=transceivers, phase=st.floats(0.0, 0.999))
    def test_decoded_sa_matches_frame(self, frame, transceiver, phase):
        """Algorithm 1 recovers the SA for arbitrary frames/fingerprints."""
        chain = CaptureChain(
            synthesis=SynthesisConfig(max_frame_bits=60),
            adc=AdcConfig(resolution_bits=16),
            noise=None,
        )
        wire = frame.stuffed_bits()
        volts = synthesize_waveform(
            wire, transceiver, chain.synthesis, phase=phase
        )
        trace_counts = chain.adc.quantize(volts)
        from repro.acquisition.trace import VoltageTrace

        trace = VoltageTrace(
            counts=trace_counts,
            sample_rate=chain.synthesis.sample_rate,
            resolution_bits=16,
        )
        config = ExtractionConfig.for_trace(trace)
        result = extract_edge_set(trace, config)
        assert result.source_address == frame.source_address

    @settings(max_examples=30, deadline=None)
    @given(frame=j1939_frames, seed=st.integers(0, 2**31 - 1))
    def test_decoded_sa_survives_noise(self, frame, seed):
        """Realistic channel noise never corrupts the digital decode."""
        transceiver = TransceiverParams(
            name="T",
            v_dominant=2.0,
            v_recessive=0.01,
            rise=EdgeDynamics(1.9e6, 0.7),
            fall=EdgeDynamics(1.1e6, 1.05),
        )
        chain = CaptureChain(
            synthesis=SynthesisConfig(max_frame_bits=60),
            adc=AdcConfig(resolution_bits=16),
            noise=ChannelNoise(
                white_sigma_v=0.008, ar_sigma_v=0.005, baseline_sigma_v=0.02
            ),
        )
        trace = chain.capture_frame(
            frame, transceiver, rng=np.random.default_rng(seed)
        )
        result = extract_edge_set(trace, ExtractionConfig.for_trace(trace))
        assert result.source_address == frame.source_address


class TestWaveformEnvelopeProperty:
    @settings(max_examples=60, deadline=None)
    @given(transceiver=transceivers, phase=st.floats(0.0, 0.999))
    def test_voltages_stay_in_physical_envelope(self, transceiver, phase):
        """No sample may exceed the step-response overshoot bound."""
        bits = [0, 1, 0, 0, 1, 1, 0, 1] * 4
        volts = synthesize_waveform(
            bits, transceiver, SynthesisConfig(), phase=phase
        )
        v_dom, v_rec = transceiver.v_dominant, transceiver.v_recessive
        swing = v_dom - v_rec
        zeta = min(transceiver.rise.damping, transceiver.fall.damping)
        if zeta < 1.0:
            overshoot = float(np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2)))
        else:
            overshoot = 0.0
        upper = v_dom + swing * overshoot + 1e-9
        lower = v_rec - swing * overshoot - 1e-9
        assert volts.max() <= upper
        assert volts.min() >= lower

    @settings(max_examples=40, deadline=None)
    @given(transceiver=transceivers)
    def test_waveform_settles_to_levels(self, transceiver):
        """Long runs settle to exactly the configured plateau levels."""
        bits = [0] * 6 + [1] * 6
        volts = synthesize_waveform(bits, transceiver, SynthesisConfig(), phase=0.0)
        spb = 40
        dominant_sample = volts[(2 + 5) * spb + spb // 2]   # 6th dominant bit
        recessive_sample = volts[(2 + 11) * spb + spb // 2]  # 6th recessive bit
        assert dominant_sample == pytest.approx(transceiver.v_dominant, abs=0.02)
        assert recessive_sample == pytest.approx(transceiver.v_recessive, abs=0.02)


class TestMetricProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(-50, 50), min_size=4, max_size=4),
            min_size=3,
            max_size=3,
        )
    )
    def test_mahalanobis_triangle_like_symmetry(self, rows):
        """With a shared covariance the induced norm is a true metric."""
        from repro.core.distances import mahalanobis_distance

        x, y, z = (np.array(r) for r in rows)
        inv_cov = np.diag([1.0, 0.5, 2.0, 4.0])

        def d(a, b):
            return mahalanobis_distance(a, b, inv_cov)

        assert d(x, y) == pytest.approx(d(y, x), rel=1e-9, abs=1e-9)
        assert d(x, z) <= d(x, y) + d(y, z) + 1e-9
        assert d(x, x) == pytest.approx(0.0, abs=1e-12)
