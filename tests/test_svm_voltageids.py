"""Linear SVM substrate and the VoltageIDS baseline."""

import numpy as np
import pytest

from repro.baselines.svm import LinearSvm, OneVsRestSvm
from repro.baselines.voltageids import (
    SECTION_STATISTIC_NAMES,
    VoltageIdsIdentifier,
    section_statistics,
)
from repro.core.edge_extraction import ExtractionConfig
from repro.errors import TrainingError


class TestLinearSvm:
    def test_separable_blobs(self, rng):
        X = np.concatenate([rng.normal(size=(150, 3)), 4 + rng.normal(size=(150, 3))])
        y = np.array([-1.0] * 150 + [1.0] * 150)
        svm = LinearSvm(epochs=20).fit(X, y)
        accuracy = np.mean(svm.predict(X) == y)
        assert accuracy > 0.98

    def test_decision_sign_matches_predict(self, rng):
        X = np.concatenate([rng.normal(size=(50, 2)), 3 + rng.normal(size=(50, 2))])
        y = np.array([-1.0] * 50 + [1.0] * 50)
        svm = LinearSvm().fit(X, y)
        margins = svm.decision_function(X)
        assert np.array_equal(np.sign(margins) >= 0, svm.predict(X) == 1.0)

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(80, 2))
        y = np.where(X[:, 0] > 0, 1.0, -1.0)
        a = LinearSvm(seed=3).fit(X, y)
        b = LinearSvm(seed=3).fit(X, y)
        assert np.allclose(a.weights_, b.weights_)

    def test_rejects_bad_labels(self, rng):
        with pytest.raises(TrainingError):
            LinearSvm().fit(rng.normal(size=(4, 2)), np.array([0.0, 1, 1, 0]))

    def test_rejects_unfitted_predict(self, rng):
        with pytest.raises(TrainingError):
            LinearSvm().predict(rng.normal(size=(3, 2)))

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(TrainingError):
            LinearSvm(regularisation=0.0)


class TestOneVsRest:
    def test_three_classes(self, rng):
        X = np.concatenate(
            [
                rng.normal(size=(80, 2)),
                [6, 0] + rng.normal(size=(80, 2)),
                [0, 6] + rng.normal(size=(80, 2)),
            ]
        )
        y = ["a"] * 80 + ["b"] * 80 + ["c"] * 80
        clf = OneVsRestSvm(epochs=15).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_decision_matrix_shape(self, rng):
        X = np.concatenate([rng.normal(size=(40, 3)), 5 + rng.normal(size=(40, 3))])
        y = ["a"] * 40 + ["b"] * 40
        clf = OneVsRestSvm().fit(X, y)
        assert clf.decision_matrix(X).shape == (80, 2)

    def test_needs_two_classes(self, rng):
        with pytest.raises(TrainingError):
            OneVsRestSvm().fit(rng.normal(size=(10, 2)), ["a"] * 10)


class TestSectionStatistics:
    def test_dimension(self, rng):
        assert section_statistics(rng.normal(size=200)).shape == (
            len(SECTION_STATISTIC_NAMES),
        )

    def test_empty_section(self):
        assert np.allclose(section_statistics(np.empty(0)), 0.0)

    def test_known_values(self):
        stats = section_statistics(np.array([1.0, 2.0, 3.0, 4.0]))
        names = list(SECTION_STATISTIC_NAMES)
        assert stats[names.index("mean")] == pytest.approx(2.5)
        assert stats[names.index("max")] == 4.0
        assert stats[names.index("min")] == 1.0
        assert stats[names.index("median")] == pytest.approx(2.5)


class TestVoltageIds:
    @pytest.fixture(scope="class")
    def capture(self, vehicle_a_session):
        train, test = vehicle_a_session.split(0.6, seed=31)
        train, test = train[:800], test[:250]
        threshold = ExtractionConfig.for_trace(train[0]).threshold
        return (
            train,
            [t.metadata["sender"] for t in train],
            test,
            [t.metadata["sender"] for t in test],
            threshold,
        )

    def test_feature_dimension(self, capture):
        train, _, _, _, threshold = capture
        ident = VoltageIdsIdentifier(threshold)
        assert ident.features(train[0]).shape == (3 * len(SECTION_STATISTIC_NAMES),)

    def test_identification_accuracy(self, capture):
        train, y_train, test, y_test, threshold = capture
        ident = VoltageIdsIdentifier(threshold, epochs=12).fit(train, y_train)
        assert ident.score(test, y_test) > 0.9

    def test_fit_validates_lengths(self, capture):
        train, y_train, _, _, threshold = capture
        with pytest.raises(TrainingError):
            VoltageIdsIdentifier(threshold).fit(train, y_train[:-1])
