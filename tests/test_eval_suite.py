"""Detection-suite experiments on a small Vehicle A capture.

These are the integration tests for the paper's headline claims
(Tables 4.1 and 4.3) at reduced scale.
"""

import pytest

from repro.core.model import Metric
from repro.eval.suite import SuiteInputs, run_detection_suite


@pytest.fixture(scope="module")
def inputs(vehicle_a_session):
    return SuiteInputs.from_session(vehicle_a_session, train_fraction=0.5, seed=2)


@pytest.fixture(scope="module")
def mahalanobis_result(inputs):
    return run_detection_suite(inputs, Metric.MAHALANOBIS, seed=4)


@pytest.fixture(scope="module")
def euclidean_result(inputs):
    return run_detection_suite(inputs, Metric.EUCLIDEAN, seed=4)


class TestMahalanobisSuite:
    def test_false_positive_accuracy(self, mahalanobis_result):
        assert mahalanobis_result.false_positive.accuracy >= 0.999

    def test_hijack_f_score(self, mahalanobis_result):
        assert mahalanobis_result.hijack.f_score >= 0.999

    def test_foreign_f_score(self, mahalanobis_result):
        assert mahalanobis_result.foreign.f_score >= 0.99

    def test_hijack_has_attacks(self, mahalanobis_result):
        cm = mahalanobis_result.hijack.confusion
        attacks = cm.true_positive + cm.false_negative
        assert 0.15 <= attacks / cm.total <= 0.25  # ~20 % rewrite rate

    def test_foreign_pair_is_ecu1_ecu4(self, mahalanobis_result):
        pair = {
            mahalanobis_result.foreign_scenario.imposter,
            mahalanobis_result.foreign_scenario.victim,
        }
        assert pair == {"ECU1", "ECU4"}


class TestEuclideanSuite:
    def test_false_positive_accuracy_high(self, euclidean_result):
        assert euclidean_result.false_positive.accuracy >= 0.99

    def test_hijack_f_score_high(self, euclidean_result):
        assert euclidean_result.hijack.f_score >= 0.97

    def test_foreign_attack_mostly_missed(self, euclidean_result):
        """The paper's key negative result: Euclidean F-score ~ 0."""
        assert euclidean_result.foreign.f_score <= 0.3

    def test_foreign_pair_matches_paper(self, euclidean_result):
        pair = {
            euclidean_result.foreign_scenario.imposter,
            euclidean_result.foreign_scenario.victim,
        }
        assert pair == {"ECU1", "ECU4"}

    def test_similarity_ranking_matches_paper(self, euclidean_result):
        """Closest pair ECU1-ECU4, next ECU0-ECU1 (Section 4.2.1)."""
        ranking = euclidean_result.similarity_ranking
        assert {ranking[0][1], ranking[0][2]} == {"ECU1", "ECU4"}
        assert {ranking[1][1], ranking[1][2]} == {"ECU0", "ECU1"}


class TestMetricComparison:
    def test_mahalanobis_beats_euclidean_on_foreign(
        self, mahalanobis_result, euclidean_result
    ):
        assert (
            mahalanobis_result.foreign.f_score
            > euclidean_result.foreign.f_score + 0.5
        )

    def test_report_formatting(self, mahalanobis_result):
        from repro.eval.reporting import format_suite

        text = format_suite(mahalanobis_result)
        assert "False positive test" in text
        assert "Hijack imitation test" in text
        assert "Foreign device imitation test" in text
