"""Engine equivalence: jobs, batching and fusion never change bytes."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.obs as obs
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.errors import DatasetError, PerfError
from repro.perf.engine import (
    capture_and_extract,
    capture_session_engine,
    extract_many_parallel,
    plan_transmissions,
    render_transmissions,
)
from repro.perf.parallel import (
    chunk_slices,
    default_jobs,
    message_seed,
    parallel_map,
    resolve_jobs,
    spawn_seeds,
)


def _assert_traces_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert np.array_equal(left.counts, right.counts)
        assert left.start_s == right.start_s
        assert left.metadata["sender"] == right.metadata["sender"]
        assert left.metadata["frame"] == right.metadata["frame"]


def _assert_edges_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.source_address == right.source_address
        assert np.array_equal(left.vector, right.vector)


class TestSeeding:
    def test_message_seed_matches_spawn(self):
        parent = np.random.SeedSequence(42)
        children = parent.spawn(6)
        for i, child in enumerate(children):
            assert np.array_equal(
                message_seed(42, i).generate_state(4), child.generate_state(4)
            )

    def test_spawn_seeds_offsets(self):
        tail = spawn_seeds(7, 3, start=2)
        for offset, seq in enumerate(tail):
            assert np.array_equal(
                seq.generate_state(4), message_seed(7, 2 + offset).generate_state(4)
            )


class TestJobsResolution:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() is None
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert resolve_jobs(None) == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(2) == 2

    @pytest.mark.parametrize("raw", ["zero", "1.5", "0", "-2"])
    def test_bad_env_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.raises(PerfError):
            default_jobs()

    def test_blank_env_is_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert default_jobs() is None

    def test_bad_explicit_jobs(self):
        with pytest.raises(PerfError):
            resolve_jobs(0)


class TestParallelMap:
    def test_preserves_order(self):
        items = [-5, 3, -1, 0, 9, -2, 4]
        assert parallel_map(abs, items, jobs=2) == [abs(x) for x in items]

    def test_inline_when_single_job(self):
        assert parallel_map(abs, [-1, -2], jobs=1) == [1, 2]

    def test_chunk_slices_cover_range(self):
        for n, jobs in [(1, 1), (7, 2), (16, 4), (5, 8)]:
            slices = chunk_slices(n, jobs)
            flat = [i for lo, hi in slices for i in range(lo, hi)]
            assert flat == list(range(n))
        assert chunk_slices(0, 4) == []
        assert chunk_slices(10, 2, chunk_size=4) == [(0, 4), (4, 8), (8, 10)]


class TestEngineEquivalence:
    def test_plan_rejects_bad_duration(self, stream_vehicle):
        with pytest.raises(DatasetError):
            plan_transmissions(stream_vehicle, 0.0)

    def test_jobs_do_not_change_traces(self, stream_vehicle):
        serial = capture_session_engine(stream_vehicle, 1.0, seed=7, jobs=1)
        fanned = capture_session_engine(stream_vehicle, 1.0, seed=7, jobs=2)
        _assert_traces_equal(serial.traces, fanned.traces)

    def test_batched_matches_unbatched(self, stream_vehicle):
        transmissions = plan_transmissions(stream_vehicle, 1.0, seed=7)
        batched = render_transmissions(
            stream_vehicle, transmissions, seed=7, batch=True
        )
        unbatched = render_transmissions(
            stream_vehicle, transmissions, seed=7, batch=False
        )
        _assert_traces_equal(batched, unbatched)
        starts = [trace.start_s for trace in batched]
        assert starts == sorted(starts)

    def test_fused_matches_capture_then_extract(self, stream_vehicle):
        session, edges = capture_and_extract(
            stream_vehicle, 1.0, seed=7, jobs=2
        )
        reference = capture_session_engine(stream_vehicle, 1.0, seed=7, jobs=1)
        _assert_traces_equal(session.traces, reference.traces)
        expected = extract_many(
            reference.traces, ExtractionConfig.for_trace(reference.traces[0])
        )
        _assert_edges_equal(edges, expected)


class TestExtractManyParallel:
    def test_matches_serial(self, stream_train_session):
        traces = stream_train_session.traces[:40]
        config = ExtractionConfig.for_trace(traces[0])
        serial = extract_many(traces, config)
        fanned = extract_many_parallel(traces, config, jobs=2)
        _assert_edges_equal(serial, fanned)

    def test_empty_input(self):
        assert extract_many_parallel([], jobs=2) == []

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_skip_counting(self, stream_train_session, jobs):
        traces = list(stream_train_session.traces[:10])
        bad = dataclasses.replace(traces[3], counts=traces[3].counts[:8])
        traces[3] = bad
        traces[7] = bad
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            edges = extract_many_parallel(
                traces, jobs=jobs, skip_failures=True
            )
        assert len(edges) == 8
        skipped = registry.get("vprofile_extraction_skipped_total")
        assert skipped is not None and skipped.value == 2
