"""The repo's own source must satisfy its invariant checker.

This is the PR-blocking contract behind the CI ``lint`` job: every
determinism / seed / concurrency / observability rule — including the
whole-program family (VPL210/310/311/320) — holds over ``src/`` and
``tests/`` modulo the checked-in baseline, the capture-cache schema
lock matches the current dataclass layout, and the CLI front ends
report violations with ``file:line`` diagnostics and a non-zero exit
code.  CI runs ``--baseline``; these tests assert the same split: no
*new* findings, no *stale* waivers, and every waived finding is one of
the documented registry introspection reads.
"""

import io
from pathlib import Path

from repro.lint import Baseline, lint_paths, load_config
from repro.lint.cli import main as lint_main
from repro.lint.fingerprint import (
    current_schema_version,
    read_lock,
    schema_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_and_tests_are_violation_free_modulo_baseline():
    config = load_config(REPO_ROOT)
    diagnostics = lint_paths(["src", "tests"], config, root=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT, config)
    assert baseline is not None, f"{config.baseline} missing or unreadable"
    split = baseline.apply(diagnostics)
    assert split.new == [], "\n".join(d.format() for d in split.new)
    # Fixed findings must leave the record — the baseline only shrinks.
    assert split.stale == [], split.stale
    # Every waiver is a documented read-only introspection path on the
    # metric registry (benign torn reads; see lint-baseline.json).
    assert {(d.path, d.code) for d in split.waived} <= {
        ("src/repro/obs/registry.py", "VPL310")
    }, split.waived


def test_cli_exits_zero_on_the_repo_with_baseline():
    out, err = io.StringIO(), io.StringIO()
    code = lint_main(
        ["--root", str(REPO_ROOT), "--baseline", "src", "tests"],
        stdout=out, stderr=err,
    )
    assert code == 0, out.getvalue() + err.getvalue()
    assert "waived by lint-baseline.json" in out.getvalue()


def test_cli_without_baseline_surfaces_the_waived_findings():
    """The baseline is load-bearing: a bare run shows what it waives."""
    out = io.StringIO()
    code = lint_main(
        ["--root", str(REPO_ROOT), "src", "tests"], stdout=out
    )
    assert code == 1
    report = out.getvalue()
    assert "VPL310" in report and "src/repro/obs/registry.py" in report


def test_cli_exits_nonzero_with_located_diagnostics(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n"
        "np.random.seed(1)\n"
        "rng = np.random.default_rng()\n"
    )
    out = io.StringIO()
    code = lint_main(["--root", str(tmp_path), str(bad)], stdout=out)
    assert code == 1
    report = out.getvalue()
    assert "bad.py:2:0: VPL101" in report
    assert "bad.py:3:6: VPL102" in report
    assert "found 2 violations" in report


def test_cli_rejects_missing_paths(tmp_path):
    err = io.StringIO()
    code = lint_main(
        ["--root", str(tmp_path), "no/such/dir.py"],
        stdout=io.StringIO(), stderr=err,
    )
    assert code == 2
    assert "error:" in err.getvalue()


def test_repro_cli_lint_subcommand():
    from repro.cli import main as repro_main

    argv = ["lint", "--root", str(REPO_ROOT), "--baseline", "-q", "src"]
    assert repro_main(argv) == 0


def test_schema_lock_matches_current_tree():
    """Changing cache-key dataclasses requires a version bump + relock."""
    config = load_config(REPO_ROOT)
    lock = read_lock(REPO_ROOT, config)
    assert lock is not None, (
        "capture_schema.json missing; run python -m repro.lint "
        "--update-schema-lock"
    )
    assert lock["fingerprint"] == schema_fingerprint(REPO_ROOT, config)
    assert lock["schema_version"] == current_schema_version(REPO_ROOT, config)


def test_every_rule_is_documented():
    """docs/static-analysis.md catalogues every registered code."""
    from repro.lint import all_rules

    catalogue = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
    for code in all_rules():
        assert code in catalogue, f"{code} missing from docs/static-analysis.md"
