"""The repo's own source must satisfy its invariant checker.

This is the PR-blocking contract behind the CI ``lint`` job: every
determinism / seed / concurrency / observability rule holds over
``src/`` and ``tests/``, the capture-cache schema lock matches the
current dataclass layout, and the CLI front ends report violations with
``file:line`` diagnostics and a non-zero exit code.
"""

import io
from pathlib import Path

from repro.lint import lint_paths, load_config
from repro.lint.cli import main as lint_main
from repro.lint.fingerprint import (
    current_schema_version,
    read_lock,
    schema_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_and_tests_are_violation_free():
    config = load_config(REPO_ROOT)
    diagnostics = lint_paths(["src", "tests"], config, root=REPO_ROOT)
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_cli_exits_zero_on_the_repo():
    out, err = io.StringIO(), io.StringIO()
    code = lint_main(
        ["--root", str(REPO_ROOT), "src", "tests"], stdout=out, stderr=err
    )
    assert code == 0, out.getvalue() + err.getvalue()
    assert "all checks passed" in out.getvalue()


def test_cli_exits_nonzero_with_located_diagnostics(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n"
        "np.random.seed(1)\n"
        "rng = np.random.default_rng()\n"
    )
    out = io.StringIO()
    code = lint_main(["--root", str(tmp_path), str(bad)], stdout=out)
    assert code == 1
    report = out.getvalue()
    assert "bad.py:2:0: VPL101" in report
    assert "bad.py:3:6: VPL102" in report
    assert "found 2 violations" in report


def test_cli_rejects_missing_paths(tmp_path):
    err = io.StringIO()
    code = lint_main(
        ["--root", str(tmp_path), "no/such/dir.py"],
        stdout=io.StringIO(), stderr=err,
    )
    assert code == 2
    assert "error:" in err.getvalue()


def test_repro_cli_lint_subcommand():
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--root", str(REPO_ROOT), "-q", "src"]) == 0


def test_schema_lock_matches_current_tree():
    """Changing cache-key dataclasses requires a version bump + relock."""
    config = load_config(REPO_ROOT)
    lock = read_lock(REPO_ROOT, config)
    assert lock is not None, (
        "capture_schema.json missing; run python -m repro.lint "
        "--update-schema-lock"
    )
    assert lock["fingerprint"] == schema_fingerprint(REPO_ROOT, config)
    assert lock["schema_version"] == current_schema_version(REPO_ROOT, config)


def test_every_rule_is_documented():
    """docs/static-analysis.md catalogues every registered code."""
    from repro.lint import all_rules

    catalogue = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
    for code in all_rules():
        assert code in catalogue, f"{code} missing from docs/static-analysis.md"
