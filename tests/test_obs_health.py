"""The per-SA profile-health monitor: baseline pinning, rates, hysteresis."""

import numpy as np
import pytest

from repro.core.model import ClusterProfile, Metric, VProfileModel
from repro.errors import ObservabilityError
from repro.obs.health import (
    DRIFTING,
    HEALTHY,
    SUSPECT,
    HealthConfig,
    ProfileHealthMonitor,
)
from repro.obs.registry import MetricsRegistry, use_registry


def make_model(dim=4, n_clusters=2):
    clusters = []
    for i in range(n_clusters):
        mean = np.full(dim, float(i * 10))
        clusters.append(
            ClusterProfile(
                name=f"ECU{i}",
                mean=mean,
                max_distance=3.0,
                count=100,
                covariance=np.eye(dim),
                inv_covariance=np.eye(dim),
            )
        )
    sa_to_cluster = {0x10 + i: i for i in range(n_clusters)}
    return VProfileModel(
        metric=Metric.MAHALANOBIS, clusters=clusters, sa_to_cluster=sa_to_cluster
    )


# Tight hysteresis so tests can flip states in a handful of assessments.
FAST = HealthConfig(hysteresis=1, window=16)


class TestBaselinePinning:
    def test_zero_drift_at_attach(self):
        monitor = ProfileHealthMonitor(make_model(), FAST)
        assert monitor.drift_distance(0x10) == 0.0

    def test_live_mean_movement_is_measured_against_baseline(self):
        model = make_model()
        monitor = ProfileHealthMonitor(model, FAST)
        model.clusters[0].mean = model.clusters[0].mean + np.array(
            [2.0, 0.0, 0.0, 0.0]
        )
        # Identity baseline covariance: Mahalanobis == Euclidean here.
        assert monitor.drift_distance(0x10) == pytest.approx(2.0)
        # The other cluster did not move.
        assert monitor.drift_distance(0x11) == 0.0

    def test_baseline_is_a_copy_not_a_view(self):
        model = make_model()
        monitor = ProfileHealthMonitor(model, FAST)
        # In-place mutation of the live arrays must not move the yardstick.
        model.clusters[0].mean += 5.0
        assert monitor.drift_distance(0x10) == pytest.approx(
            5.0 * np.sqrt(model.clusters[0].mean.shape[0])
        )

    def test_unknown_sa_drift_is_nan(self):
        monitor = ProfileHealthMonitor(make_model(), FAST)
        assert np.isnan(monitor.drift_distance(0x99))


class TestStates:
    def test_fresh_source_is_healthy(self):
        monitor = ProfileHealthMonitor(make_model(), FAST)
        assessment = monitor.assess(0x10)
        assert assessment.state == HEALTHY
        assert assessment.cluster == "ECU0"

    def test_drift_warn_threshold_yields_drifting(self):
        model = make_model()
        monitor = ProfileHealthMonitor(model, FAST)
        model.clusters[0].mean = model.clusters[0].mean + np.array(
            [1.5, 0.0, 0.0, 0.0]
        )
        assert monitor.assess(0x10).state == DRIFTING

    def test_drift_alarm_threshold_yields_suspect(self):
        model = make_model()
        monitor = ProfileHealthMonitor(model, FAST)
        model.clusters[0].mean = model.clusters[0].mean + np.array(
            [4.0, 0.0, 0.0, 0.0]
        )
        assert monitor.assess(0x10).state == SUSPECT

    def test_alert_rate_escalates(self):
        monitor = ProfileHealthMonitor(make_model(), FAST)
        for _ in range(10):
            monitor.record_verdict(0x10, is_anomaly=True)
        assessment = monitor.assess(0x10)
        assert assessment.alert_ratio == 1.0
        assert assessment.state == SUSPECT

    def test_low_update_acceptance_marks_drifting(self):
        monitor = ProfileHealthMonitor(make_model(), FAST)
        for i in range(10):
            monitor.record_update(0x10, accepted=(i == 0))  # 10% accepted
        assessment = monitor.assess(0x10)
        assert assessment.update_accept_ratio == pytest.approx(0.1)
        assert assessment.state == DRIFTING

    def test_windows_are_bounded(self):
        monitor = ProfileHealthMonitor(make_model(), HealthConfig(window=8))
        for _ in range(100):
            monitor.record_verdict(0x10, True)
            monitor.record_update(0x10, False)
        assessment = monitor.assess(0x10)
        assert assessment.verdicts_seen == 8
        assert assessment.updates_seen == 8

    def test_recovery_when_alerts_stop(self):
        monitor = ProfileHealthMonitor(make_model(), FAST)
        for _ in range(16):
            monitor.record_verdict(0x10, True)
        assert monitor.assess(0x10).state == SUSPECT
        # The bounded window forgets the alert burst.
        for _ in range(16):
            monitor.record_verdict(0x10, False)
        assert monitor.assess(0x10).state == HEALTHY

    def test_config_validation(self):
        with pytest.raises(ObservabilityError):
            HealthConfig(drift_warn=0.0)
        with pytest.raises(ObservabilityError):
            HealthConfig(drift_warn=2.0, drift_alarm=1.0)
        with pytest.raises(ObservabilityError):
            HealthConfig(window=0)
        with pytest.raises(ObservabilityError):
            HealthConfig(hysteresis=0)


class TestHysteresis:
    def test_single_bad_assessment_does_not_flip(self):
        config = HealthConfig(hysteresis=3, window=16)
        monitor = ProfileHealthMonitor(make_model(), config)
        for _ in range(16):
            monitor.record_verdict(0x10, True)
        # Needs three consecutive raw SUSPECT assessments to flip.
        assert monitor.assess(0x10).state == HEALTHY
        assert monitor.assess(0x10).state == HEALTHY
        assert monitor.assess(0x10).state == SUSPECT

    def test_streak_resets_when_raw_state_flickers(self):
        config = HealthConfig(hysteresis=2, window=4)
        monitor = ProfileHealthMonitor(make_model(), config)
        for _ in range(4):
            monitor.record_verdict(0x10, True)
        assert monitor.assess(0x10).state == HEALTHY  # suspect streak 1
        for _ in range(4):
            monitor.record_verdict(0x10, False)
        assert monitor.assess(0x10).state == HEALTHY  # healthy again: reset
        for _ in range(4):
            monitor.record_verdict(0x10, True)
        assert monitor.assess(0x10).state == HEALTHY  # suspect streak 1
        assert monitor.assess(0x10).state == SUSPECT  # streak 2: flips


class TestReporting:
    def test_verdicts_payload_shape(self):
        model = make_model()
        monitor = ProfileHealthMonitor(model, FAST)
        monitor.record_verdict(0x10, False)
        monitor.record_update(0x10, True)
        model.clusters[1].mean = model.clusters[1].mean + np.array(
            [4.0, 0.0, 0.0, 0.0]
        )
        monitor.record_verdict(0x11, True)
        payload = monitor.verdicts()
        assert payload["overall"] == SUSPECT
        source = payload["sources"]["0x10"]
        assert source["state"] == HEALTHY
        assert source["cluster"] == "ECU0"
        assert source["drift_distance"] == 0.0
        assert payload["sources"]["0x11"]["state"] == SUSPECT

    def test_overall_is_worst_source(self):
        monitor = ProfileHealthMonitor(make_model(), FAST)
        monitor.record_verdict(0x10, False)
        assert monitor.verdicts()["overall"] == HEALTHY

    def test_export_publishes_gauges(self):
        model = make_model()
        monitor = ProfileHealthMonitor(model, FAST)
        monitor.record_verdict(0x10, False)
        monitor.record_update(0x10, True)
        registry = MetricsRegistry()
        with use_registry(registry):
            monitor.export()
        health = registry.get("vprofile_profile_health", sa="0x10")
        assert health is not None and health.value == 0.0
        drift = registry.get("vprofile_profile_drift_distance", sa="0x10")
        assert drift is not None and drift.value == 0.0
        accept = registry.get("vprofile_profile_update_accept_ratio", sa="0x10")
        assert accept is not None and accept.value == 1.0

    def test_export_is_noop_on_null_registry(self):
        from repro.obs.registry import NULL_REGISTRY, get_registry

        monitor = ProfileHealthMonitor(make_model(), FAST)
        monitor.record_verdict(0x10, False)
        assert get_registry() is NULL_REGISTRY
        monitor.export()  # must not raise or allocate instruments
        assert NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        import threading

        monitor = ProfileHealthMonitor(
            make_model(), HealthConfig(window=100_000)
        )

        def hammer(sa):
            for _ in range(2_000):
                monitor.record_verdict(sa, False)
                monitor.record_update(sa, True)

        threads = [
            threading.Thread(target=hammer, args=(sa,))
            for sa in (0x10, 0x11)
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for sa in (0x10, 0x11):
            assessment = monitor.assess(sa)
            assert assessment.verdicts_seen == 4_000
            assert assessment.updates_seen == 4_000
