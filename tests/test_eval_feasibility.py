"""Embedded-feasibility accounting."""

import numpy as np
import pytest

from repro.core.edge_extraction import ExtractionConfig
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.eval.feasibility import (
    FeasibilityReport,
    analyze_vprofile,
    format_feasibility,
    related_work_budgets,
)


@pytest.fixture(scope="module")
def models(rng_seed=5):
    rng = np.random.default_rng(rng_seed)
    vectors = np.concatenate(
        [rng.normal(size=(200, 32)), 8 + rng.normal(size=(200, 32))]
    )
    sas = np.array([1] * 200 + [2] * 200)
    data = TrainingData(vectors, sas)
    lut = {1: "A", 2: "B"}
    return (
        train_model(data, metric=Metric.MAHALANOBIS, sa_clusters=lut),
        train_model(data, metric=Metric.EUCLIDEAN, sa_clusters=lut),
    )


@pytest.fixture()
def extraction():
    return ExtractionConfig(bit_width=40.0, threshold=2457.0)


class TestVprofileBudget:
    def test_mahalanobis_macs(self, models, extraction):
        mahal, _ = models
        report = analyze_vprofile(
            mahal, extraction, sample_rate=10e6, adc_resolution_bits=12
        )
        # k=2 clusters, d=32: 2 * (32^2 + 32) MACs.
        assert report.macs_per_message == 2 * (32 * 32 + 32)

    def test_euclidean_cheaper_than_mahalanobis(self, models, extraction):
        mahal, euclid = models
        m = analyze_vprofile(mahal, extraction, sample_rate=10e6, adc_resolution_bits=12)
        e = analyze_vprofile(euclid, extraction, sample_rate=10e6, adc_resolution_bits=12)
        assert e.macs_per_message < m.macs_per_message
        assert e.model_bytes < m.model_bytes

    def test_model_bytes_include_covariances(self, models, extraction):
        mahal, _ = models
        report = analyze_vprofile(
            mahal, extraction, sample_rate=10e6, adc_resolution_bits=12
        )
        assert report.model_bytes >= 2 * 32 * 32 * 8  # inverse covariances

    def test_macs_per_second_scales(self):
        report = FeasibilityReport("x", 100, 1000, 1024, 10e6, 12)
        assert report.macs_per_second(500) == 500_000

    def test_fits_in(self):
        report = FeasibilityReport("x", 100, 1000, 1024, 10e6, 12)
        assert report.fits_in(ram_bytes=2048, macs_per_s=1e6, bus_load_msgs=500)
        assert not report.fits_in(ram_bytes=512, macs_per_s=1e6, bus_load_msgs=500)


class TestComparison:
    def test_vprofile_lightest_compute(self, models, extraction):
        """The paper's claim: vProfile undercuts the feature pipelines."""
        mahal, _ = models
        ours = analyze_vprofile(
            mahal, extraction, sample_rate=10e6, adc_resolution_bits=12
        )
        for baseline in related_work_budgets():
            assert ours.macs_per_message < baseline.macs_per_message
            # SIMPLE's 1 MS/s rate touches fewer raw samples but pays
            # more arithmetic per sample; everyone else also processes
            # more samples than vProfile's early-exit extraction.
            if not baseline.name.startswith("SIMPLE"):
                assert ours.samples_processed < baseline.samples_processed

    def test_sampling_rate_ordering(self):
        budgets = {b.name: b.sample_rate for b in related_work_budgets()}
        assert budgets["Murvay&Groza (MSE, 2 GS/s)"] == 2e9
        assert budgets["SIMPLE (1 MS/s)"] == 1e6

    def test_formatting(self, models, extraction):
        mahal, _ = models
        reports = [
            analyze_vprofile(
                mahal, extraction, sample_rate=10e6, adc_resolution_bits=12
            )
        ] + related_work_budgets()
        text = format_feasibility(reports, bus_load_msgs=600)
        assert "Embedded feasibility" in text
        assert "vProfile" in text
        assert "SIMPLE" in text
