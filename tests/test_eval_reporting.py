"""Text rendering of experiment results."""

import pytest

from repro.core.model import Metric
from repro.eval.confusion import ConfusionMatrix
from repro.eval.enhancements import ClusterStats, EnhancementComparison
from repro.eval.environment import DriftPoint, TemperatureResult, VoltageResult
from repro.eval.reporting import (
    format_confusion,
    format_drift,
    format_enhancement,
    format_suite,
    format_sweep,
    format_temperature,
    format_voltage,
)
from repro.eval.suite import DetectionSuiteResult, TestOutcome
from repro.eval.sweeps import SweepCell
from repro.attacks.foreign import ForeignScenario


def outcome(name, tp=10, fn=0, fp=1, tn=100, margin=1.5, zero_fp=0.9):
    return TestOutcome(
        name=name,
        confusion=ConfusionMatrix(tp, fn, fp, tn),
        margin=margin,
        zero_fp_score=zero_fp,
    )


@pytest.fixture()
def suite_result():
    return DetectionSuiteResult(
        vehicle_name="VehicleX",
        metric=Metric.MAHALANOBIS,
        false_positive=outcome("false-positive", tp=0, fn=0),
        hijack=outcome("hijack"),
        foreign=outcome("foreign"),
        foreign_scenario=ForeignScenario(imposter="ECU1", victim="ECU4", similarity=12.5),
    )


class TestFormatSuite:
    def test_contains_all_three_tests(self, suite_result):
        text = format_suite(suite_result)
        assert "False positive test" in text
        assert "Hijack imitation test" in text
        assert "Foreign device imitation test" in text
        assert "ECU1 -> victim ECU4" in text
        assert "VehicleX / mahalanobis" in text

    def test_zero_fp_note(self, suite_result):
        text = format_suite(suite_result)
        assert "all false positives removed" in text

    def test_no_zero_fp_margin(self, suite_result):
        from dataclasses import replace

        result = replace(
            suite_result, foreign=TestOutcome(
                name="foreign",
                confusion=ConfusionMatrix(1, 1, 1, 1),
                margin=0.0,
                zero_fp_score=None,
            )
        )
        assert "no margin removes all false positives" in format_suite(result)


class TestFormatSweep:
    def test_grid_rendering(self):
        cells = [
            SweepCell(10e6, 12, 1.0, 0.999, 0.99, 1.0),
            SweepCell(5e6, 12, None, None, None, None, singular=True),
        ]
        text = format_sweep(cells, "demo")
        assert "demo" in text
        assert "sing." in text
        assert "1.00000" in text
        assert "12 bit" in text


class TestFormatDrift:
    def test_rows(self):
        points = [DriftPoint("ECU0", "20..25 degC", 12.3, 1.1, 300)]
        text = format_drift(points, "demo drift")
        assert "ECU0" in text and "12.30%" in text and "+/-" in text


class TestFormatEnvironment:
    def test_temperature(self):
        result = TemperatureResult(
            confusion=ConfusionMatrix(0, 0, 4, 996),
            confusion_with_warm_data=ConfusionMatrix(0, 0, 0, 1000),
            drift=(DriftPoint("ECU0", "0..5 degC", 2.0, 0.5, 100),),
            margin=3.2,
            train_bin=(-5.0, 0.0),
        )
        text = format_temperature(result)
        assert "trained on -5..0 degC" in text
        assert "false positives: 4" in text
        assert "after adding 20 degC training data: 0" in text

    def test_voltage(self):
        result = VoltageResult(
            confusion=ConfusionMatrix(0, 0, 0, 500),
            event_drift=(DriftPoint("ECU0", "lights", 0.5, 0.2, 50),),
            trial_drift=(DriftPoint("ECU0", "trial 2", 1.0, 0.3, 50),),
            margin=2.0,
        )
        text = format_voltage(result)
        assert "High-power vehicle functions" in text
        assert "lights" in text and "trial 2" in text


class TestFormatEnhancement:
    def test_pairs(self):
        comparison = EnhancementComparison(
            baseline=(ClusterStats("ECU0", 150.0, 10.0, 500),),
            enhanced=(ClusterStats("ECU0", 140.0, 8.0, 500),),
            baseline_label="1 edge set",
            enhanced_label="3 edge sets",
        )
        text = format_enhancement(comparison, "Table 5.2")
        assert "Table 5.2" in text
        assert "150.000" in text and "140.000" in text


class TestFormatConfusion:
    def test_scores_line(self):
        text = format_confusion(ConfusionMatrix(5, 0, 0, 95), "demo")
        assert "accuracy=1.00000" in text
        assert "F=1.00000" in text
