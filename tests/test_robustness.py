"""Failure injection: the pipeline under degraded or hostile inputs.

A field IDS sees saturated front ends, dropouts, EMI bursts and
truncated captures.  These tests pin down how the library behaves:
graceful errors where extraction is impossible, alarms (never silent
acceptance) where the signal is corrupted beyond the model.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.detection import Detector
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set, extract_many
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.errors import ExtractionError
from repro.eval.margin import tune_margin


@pytest.fixture(scope="module")
def trained(vehicle_a_session, veh_a):
    train, test = vehicle_a_session.split(0.5, seed=41)
    config = ExtractionConfig.for_trace(train[0])
    model = train_model(
        TrainingData.from_edge_sets(extract_many(train, config)),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_a.sa_clusters,
    )
    return model, config, test


def corrupt(trace, counts):
    return replace(trace, counts=counts.astype(trace.counts.dtype))


class TestSaturation:
    def test_clipped_adc_flagged_or_rejected(self, trained):
        """A rail-stuck front end must never authenticate."""
        model, config, test = trained
        trace = test[0]
        full_scale = (1 << trace.resolution_bits) - 1
        saturated = corrupt(trace, np.minimum(trace.counts * 4, full_scale))
        detector = Detector(model, margin=10.0)
        try:
            result = detector.classify(extract_edge_set(saturated, config))
        except ExtractionError:
            return  # rejection is acceptable
        assert result.is_anomaly

    def test_attenuated_signal_flagged_or_rejected(self, trained):
        """A weak tap (half amplitude) must not pass as genuine."""
        model, config, test = trained
        trace = test[0]
        attenuated = corrupt(trace, trace.counts // 2)
        detector = Detector(model, margin=10.0)
        try:
            result = detector.classify(extract_edge_set(attenuated, config))
        except ExtractionError:
            return
        assert result.is_anomaly


class TestDropouts:
    def test_zeroed_tail_rejected(self, trained):
        """The digitizer dying mid-message must raise, not misclassify."""
        _, config, test = trained
        trace = test[0]
        counts = trace.counts.copy()
        counts[len(counts) // 3 :] = 0
        with pytest.raises(ExtractionError):
            extract_edge_set(corrupt(trace, counts), config)

    def test_all_zero_trace_rejected(self, trained):
        _, config, test = trained
        trace = test[0]
        with pytest.raises(ExtractionError):
            extract_edge_set(corrupt(trace, np.zeros(len(trace))), config)

    def test_extract_many_survives_mixed_stream(self, trained):
        """skip_failures drops corrupt traces and keeps the rest."""
        _, config, test = trained
        bad = corrupt(test[0], np.zeros(len(test[0])))
        stream = [test[1], bad, test[2], bad, test[3]]
        results = extract_many(stream, config, skip_failures=True)
        assert len(results) == 3


class TestBurstNoise:
    def test_burst_on_edge_set_flagged(self, trained):
        """An EMI burst across the extraction region must alarm."""
        model, config, test = trained
        detector = Detector(model, margin=10.0)
        rng = np.random.default_rng(7)
        flagged = 0
        tried = 0
        for trace in test[:30]:
            counts = trace.counts.astype(np.int64).copy()
            # Hit the region past the arbitration field with a big burst.
            start = int(33 * config.bit_width)
            stop = min(counts.size, start + int(14 * config.bit_width))
            counts[start:stop] += rng.integers(-12000, 12000, size=stop - start)
            counts = np.clip(counts, 0, (1 << trace.resolution_bits) - 1)
            try:
                result = detector.classify(
                    extract_edge_set(corrupt(trace, counts), config)
                )
            except ExtractionError:
                flagged += 1
                tried += 1
                continue
            tried += 1
            flagged += result.is_anomaly
        assert flagged >= 0.85 * tried

    def test_small_noise_tolerated(self, trained):
        """A realistic extra noise floor must not break detection."""
        model, config, test = trained
        rng = np.random.default_rng(8)
        clean_sets = extract_many(test[:200], config)
        vectors = np.stack([e.vector for e in clean_sets])
        sas = np.array([e.source_address for e in clean_sets])
        batch = Detector(model).classify_batch(vectors, sas)
        margin = tune_margin(batch, np.zeros(len(clean_sets), bool), "accuracy").margin
        detector = Detector(model, margin=margin + 2.0)
        ok = 0
        for trace in test[200:300]:
            counts = trace.counts + rng.integers(-15, 16, size=len(trace))
            result = detector.classify(
                extract_edge_set(corrupt(trace, counts), config)
            )
            ok += not result.is_anomaly
        assert ok >= 95


class TestShortCaptures:
    def test_truncated_before_bit_33_rejected(self, trained):
        _, config, test = trained
        trace = test[0]
        short = replace(trace, counts=trace.counts[: int(20 * config.bit_width)])
        with pytest.raises(ExtractionError):
            extract_edge_set(short, config)

    def test_truncated_inside_edge_window_rejected(self, trained):
        _, config, test = trained
        trace = test[0]
        short = replace(trace, counts=trace.counts[: int(34 * config.bit_width)])
        with pytest.raises(ExtractionError):
            extract_edge_set(short, config)
