"""Synthetic vehicle presets and dataset capture."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.vehicles.dataset import capture_balanced, capture_session
from repro.vehicles.profiles import (
    EcuDefinition,
    VehicleConfig,
    sterling_acterra,
    vehicle_a,
    vehicle_b,
)


class TestProfiles:
    def test_vehicle_a_shape(self, veh_a):
        assert len(veh_a.ecus) == 5
        assert veh_a.sample_rate == 20e6
        assert veh_a.resolution_bits == 16
        assert veh_a.bitrate == 250e3

    def test_vehicle_b_shape(self, veh_b):
        assert len(veh_b.ecus) == 8
        assert veh_b.sample_rate == 10e6
        assert veh_b.resolution_bits == 12

    def test_vehicle_a_similarity_ordering(self, veh_a):
        """ECUs 1 and 4 are the closest dominant-level pair, 0-1 next."""
        levels = {e.name: e.transceiver.v_dominant for e in veh_a.ecus}
        gaps = {}
        names = sorted(levels)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                gaps[(a, b)] = abs(levels[a] - levels[b])
        ordered = sorted(gaps, key=gaps.get)
        assert ordered[0] == ("ECU1", "ECU4")
        assert ordered[1] == ("ECU0", "ECU1")

    def test_vehicle_a_temp_coefficients(self, veh_a):
        """ECUs 0 and 2 drift most with temperature (Figure 4.6)."""
        coeffs = {
            e.name: abs(e.transceiver.temp_coeff_v_per_c) for e in veh_a.ecus
        }
        ranked = sorted(coeffs, key=coeffs.get, reverse=True)
        assert set(ranked[:2]) == {"ECU0", "ECU2"}

    def test_sa_clusters_lut(self, veh_a):
        lut = veh_a.sa_clusters
        assert lut[0x00] == "ECU0"
        assert lut[0x0F] == "ECU0"  # multi-SA ECU
        assert len({v for v in lut.values()}) == 5

    def test_duplicate_sa_rejected(self, veh_a):
        ecu = veh_a.ecus[0]
        clone = EcuDefinition(
            name="clone", transceiver=ecu.transceiver, schedules=ecu.schedules
        )
        with pytest.raises(DatasetError):
            VehicleConfig(
                name="bad",
                bitrate=250e3,
                sample_rate=10e6,
                resolution_bits=12,
                ecus=(ecu, clone),
                noise=veh_a.noise,
            )

    def test_ecu_named(self, veh_a):
        assert veh_a.ecu_named("ECU2").name == "ECU2"
        with pytest.raises(DatasetError):
            veh_a.ecu_named("ECU9")

    def test_sterling_two_ecus(self, sterling):
        assert len(sterling.ecus) == 2


class TestCaptureSession:
    def test_traces_in_time_order(self, vehicle_a_session):
        starts = [t.start_s for t in vehicle_a_session.traces]
        assert starts == sorted(starts)

    def test_all_ecus_present(self, vehicle_a_session, veh_a):
        senders = set(vehicle_a_session.senders())
        assert senders == set(veh_a.ecu_names)

    def test_metadata_has_frames(self, vehicle_a_session):
        trace = vehicle_a_session.traces[0]
        assert trace.metadata["frame"].extended

    def test_capture_parameters(self, vehicle_a_session, veh_a):
        trace = vehicle_a_session.traces[0]
        assert trace.sample_rate == veh_a.sample_rate
        assert trace.resolution_bits == veh_a.resolution_bits

    def test_split_partitions(self, vehicle_a_session):
        train, test = vehicle_a_session.split(0.6, seed=1)
        assert len(train) + len(test) == len(vehicle_a_session)
        assert abs(len(train) - 0.6 * len(vehicle_a_session)) <= 1

    def test_split_validates_fraction(self, vehicle_a_session):
        with pytest.raises(DatasetError):
            vehicle_a_session.split(1.5)

    def test_invalid_duration(self, veh_a):
        with pytest.raises(DatasetError):
            capture_session(veh_a, 0.0)

    def test_deterministic_given_seed(self, sterling):
        a = capture_session(sterling, 0.3, seed=5)
        b = capture_session(sterling, 0.3, seed=5)
        assert len(a) == len(b)
        assert np.array_equal(a.traces[0].counts, b.traces[0].counts)


class TestCaptureBalanced:
    def test_counts_per_schedule(self, sterling):
        session = capture_balanced(sterling, 10, seed=3)
        # 2 ECUs x 2 schedules x 10 messages.
        assert len(session) == 40

    def test_invalid_count(self, sterling):
        with pytest.raises(DatasetError):
            capture_balanced(sterling, 0)
