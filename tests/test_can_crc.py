"""CAN CRC-15 computation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.can.crc import CAN_CRC15_POLY, crc15, crc15_bits, verify_crc15

bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=120)


class TestCrc15:
    def test_empty_is_zero(self):
        assert crc15([]) == 0

    def test_all_zero_input_is_zero(self):
        assert crc15([0] * 40) == 0

    def test_single_one_gives_polynomial(self):
        # A single 1 entering an all-zero register XORs in the generator.
        assert crc15([1]) == CAN_CRC15_POLY

    def test_is_15_bits(self):
        for pattern in ([1] * 64, [1, 0] * 50, [0, 1, 1] * 30):
            assert 0 <= crc15(pattern) < (1 << 15)

    def test_bits_msb_first(self):
        value = crc15([1, 0, 1, 1, 0])
        bits = crc15_bits([1, 0, 1, 1, 0])
        assert len(bits) == 15
        rebuilt = 0
        for bit in bits:
            rebuilt = (rebuilt << 1) | bit
        assert rebuilt == value

    @given(bit_lists)
    def test_verify_accepts_own_crc(self, bits):
        assert verify_crc15(bits, crc15_bits(bits))

    @given(bit_lists, st.data())
    def test_single_bit_error_detected(self, bits, data):
        """Any single-bit payload corruption must change the CRC."""
        crc = crc15_bits(bits)
        flip = data.draw(st.integers(0, len(bits) - 1))
        corrupted = list(bits)
        corrupted[flip] ^= 1
        assert not verify_crc15(corrupted, crc)

    @given(bit_lists, st.integers(0, 14))
    def test_single_bit_crc_error_detected(self, bits, flip):
        crc = crc15_bits(bits)
        crc[flip] ^= 1
        assert not verify_crc15(bits, crc)

    def test_verify_rejects_wrong_length(self):
        assert not verify_crc15([1, 0, 1], [0] * 14)

    @given(bit_lists)
    def test_linearity(self, bits):
        """CRC over GF(2) is linear: crc(a^b) == crc(a)^crc(b)."""
        other = [(b + 1) % 2 for b in bits]  # complement, same length
        xored = [a ^ b for a, b in zip(bits, other)]
        assert crc15(xored) == crc15(bits) ^ crc15(other)
