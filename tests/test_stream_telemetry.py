"""Telemetry wired through the streaming runtime: determinism, bundles, health."""

from __future__ import annotations

import pytest

from repro import obs
from repro.acquisition.segmentation import assemble_stream
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.errors import DetectionError
from repro.obs.health import HealthConfig
from repro.obs.recorder import ForensicsBundle
from repro.stream import (
    ReplaySource,
    StreamConfig,
    StreamTelemetry,
    TelemetryConfig,
)


@pytest.fixture(scope="module")
def stream(stream_test_session):
    return assemble_stream(stream_test_session.traces)


ATTACK = dict(hijack_probability=0.3, hijack_seed=5)


class TestDeterminism:
    """Telemetry observes the stream; it must never change it."""

    def test_verdicts_identical_with_and_without_telemetry(
        self, stream_pipeline, stream, tmp_path
    ):
        config_off = StreamConfig(**ATTACK)
        config_on = StreamConfig(
            **ATTACK,
            telemetry=TelemetryConfig(
                timeseries_interval_s=0.0, flight_dir=tmp_path / "flight"
            ),
        )
        plain = stream_pipeline().stream(ReplaySource(stream, 4096), config_off)
        telemetered = stream_pipeline().stream(ReplaySource(stream, 4096), config_on)
        assert [v.result for v in plain.verdicts] == [
            v.result for v in telemetered.verdicts
        ]
        assert plain.injected_attacks == telemetered.injected_attacks

    def test_no_clock_reads_when_telemetry_disabled(
        self, stream_pipeline, stream, monkeypatch
    ):
        """Extends the disabled-overhead contract to the new submodules:
        without a TelemetryConfig, a stream run must never touch the
        longitudinal layer's clock funnels."""
        import repro.obs.recorder as recorder_module
        import repro.obs.timeseries as timeseries_module

        def _explode(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("longitudinal clock read without telemetry")

        monkeypatch.setattr(timeseries_module, "monotonic", _explode)
        monkeypatch.setattr(timeseries_module, "wall_clock", _explode)
        monkeypatch.setattr(recorder_module, "wall_clock", _explode)
        report = stream_pipeline().stream(ReplaySource(stream, 4096))
        assert report.messages > 0
        assert report.telemetry is None
        assert report.bundles == []


class TestHealthWiring:
    def test_every_verdict_reaches_the_monitor(self, stream_pipeline, stream):
        config = StreamConfig(telemetry=TelemetryConfig(timeseries_capacity=0))
        report = stream_pipeline().stream(ReplaySource(stream, 4096), config)
        assert report.telemetry is not None
        health = report.telemetry.health
        seen = sum(a.verdicts_seen for a in health.assess_all().values())
        window = health.config.window
        expected = sum(
            min(window, sum(1 for v in report.verdicts if v.result.source_address == sa))
            for sa in {v.result.source_address for v in report.verdicts}
        )
        assert seen == expected

    def test_online_update_decisions_reach_the_monitor(
        self, stream_pipeline, stream
    ):
        pipeline = stream_pipeline(online_update=True)
        config = StreamConfig(telemetry=TelemetryConfig(timeseries_capacity=0))
        report = pipeline.stream(ReplaySource(stream, 4096), config)
        assert report.updated > 0
        updates = sum(
            a.updates_seen
            for a in report.telemetry.health.assess_all().values()
        )
        assert updates > 0

    def test_clean_stream_reports_healthy(self, stream_pipeline, stream):
        config = StreamConfig(telemetry=TelemetryConfig(timeseries_capacity=0))
        report = stream_pipeline().stream(ReplaySource(stream, 4096), config)
        verdicts = report.telemetry.health.verdicts()
        assert verdicts["overall"] == obs.HEALTHY
        assert all(
            source["state"] == obs.HEALTHY
            for source in verdicts["sources"].values()
        )

    def test_timeseries_fills_during_run(self, stream_pipeline, stream):
        config = StreamConfig(
            telemetry=TelemetryConfig(timeseries_interval_s=0.0)
        )
        with obs.enabled():
            report = stream_pipeline().stream(ReplaySource(stream, 4096), config)
        store = report.telemetry.timeseries
        assert len(store) > 0
        assert "vprofile_messages_total" in store.keys()
        # Health gauges were exported ahead of each sample.
        assert any(key.startswith(obs.HEALTH_METRIC) for key in store.keys())

    def test_pipeline_enable_health_covers_batch_path(
        self, stream_pipeline, stream_test_session
    ):
        pipeline = stream_pipeline(online_update=True)
        monitor = pipeline.enable_health(HealthConfig(hysteresis=1))
        for trace in stream_test_session.traces[:20]:
            pipeline.process(trace)
        seen = sum(a.verdicts_seen for a in monitor.assess_all().values())
        assert seen == 20

    def test_enable_health_requires_a_trained_pipeline(self):
        pipeline = VProfilePipeline(PipelineConfig())
        with pytest.raises(DetectionError):
            pipeline.enable_health()


class TestFlightRecorderWiring:
    @pytest.fixture()
    def attacked_report(self, stream_pipeline, stream, tmp_path):
        config = StreamConfig(
            **ATTACK,
            telemetry=TelemetryConfig(
                timeseries_capacity=0,
                flight_dir=tmp_path / "flight",
                post_alert=4,
                max_bundles=4,
            ),
        )
        return stream_pipeline().stream(ReplaySource(stream, 4096), config)

    def test_bundles_written_on_injected_attacks(self, attacked_report):
        assert attacked_report.injected_attacks
        assert attacked_report.bundles
        assert attacked_report.bundles == attacked_report.telemetry.recorder.bundle_paths

    def test_bundle_alerts_are_real_stream_anomalies(self, attacked_report):
        flagged = {v.seq for v in attacked_report.verdicts if v.is_anomaly}
        for path in attacked_report.bundles:
            bundle = ForensicsBundle.load(path)
            assert bundle.alert["seq"] in flagged

    def test_stream_bundles_replay_byte_identically(self, attacked_report):
        """The acceptance criterion, end to end: bundles written by a
        live (static-model) stream replay with zero mismatches."""
        for path in attacked_report.bundles:
            report = ForensicsBundle.load(path).replay()
            assert report.identical, report.mismatches
            assert report.alert_reproduced

    def test_no_bundles_on_a_clean_stream(self, stream_pipeline, stream, tmp_path):
        config = StreamConfig(
            telemetry=TelemetryConfig(
                timeseries_capacity=0, flight_dir=tmp_path / "flight"
            )
        )
        report = stream_pipeline().stream(ReplaySource(stream, 4096), config)
        assert report.anomalies == 0
        assert report.bundles == []


class TestPrebuiltTelemetry:
    def test_caller_supplied_instance_is_used_verbatim(
        self, stream_pipeline, stream, tmp_path
    ):
        pipeline = stream_pipeline()
        telemetry = StreamTelemetry(
            TelemetryConfig(timeseries_interval_s=0.0),
            model=pipeline.model,
            margin=pipeline.config.margin,
        )
        config = StreamConfig(telemetry=telemetry)
        report = pipeline.stream(ReplaySource(stream, 4096), config)
        assert report.telemetry is telemetry
        assert len(telemetry.timeseries) > 0
