"""The shipped examples must at least import and expose ``main``.

Full runs synthesise tens of seconds of bus traffic, so only the
cheapest example executes end-to-end here; the rest are import-checked
(their logic is covered by the unit/integration suites they are built
on).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_NAMES = [
    "quickstart",
    "hijack_detection",
    "foreign_dongle",
    "online_adaptation",
    "baseline_shootout",
    "combined_ids",
    "vehicle_twin",
    "bus_off_dos",
    "streaming_detection",
    "fleet_gateway",
]


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", EXAMPLE_NAMES)
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(module.main)
        assert module.__doc__  # every example explains itself

    def test_bus_off_example_runs(self, capsys):
        load_example("bus_off_dos").main()
        out = capsys.readouterr().out
        assert "BUS-OFF after 32 frames" in out
        assert "ALERT" in out

    def test_streaming_example_runs(self, capsys):
        load_example("streaming_detection").main()
        out = capsys.readouterr().out
        assert "ALERT" in out
        assert "interrupted+resumed == uninterrupted: True" in out
