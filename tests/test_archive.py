"""Trace archives: the record-once, replay-everywhere workflow."""

import numpy as np
import pytest

from repro.acquisition.archive import load_traces, save_traces
from repro.acquisition.trace import VoltageTrace
from repro.core.edge_extraction import extract_many
from repro.errors import AcquisitionError


class TestRoundTrip:
    def test_counts_and_parameters_preserved(self, sterling_session, tmp_path):
        path = tmp_path / "capture.npz"
        original = sterling_session.traces[:50]
        save_traces(path, original)
        loaded = load_traces(path)
        assert len(loaded) == 50
        for before, after in zip(original, loaded):
            assert np.array_equal(before.counts, after.counts)
            assert after.sample_rate == before.sample_rate
            assert after.resolution_bits == before.resolution_bits
            assert after.bitrate == before.bitrate
            assert after.start_s == pytest.approx(before.start_s)

    def test_metadata_preserved(self, sterling_session, tmp_path):
        path = tmp_path / "capture.npz"
        save_traces(path, sterling_session.traces[:20])
        loaded = load_traces(path)
        for before, after in zip(sterling_session.traces, loaded):
            assert after.metadata["sender"] == before.metadata["sender"]
            assert after.metadata["frame"] == before.metadata["frame"]

    def test_replayed_traces_extract_identically(self, sterling_session, tmp_path):
        path = tmp_path / "capture.npz"
        save_traces(path, sterling_session.traces[:30])
        original = extract_many(sterling_session.traces[:30])
        replayed = extract_many(load_traces(path))
        for a, b in zip(original, replayed):
            assert a.source_address == b.source_address
            assert np.array_equal(a.vector, b.vector)

    def test_traces_without_metadata(self, tmp_path):
        trace = VoltageTrace(
            counts=np.arange(100, dtype=np.int32),
            sample_rate=10e6,
            resolution_bits=12,
        )
        path = tmp_path / "bare.npz"
        save_traces(path, [trace])
        loaded = load_traces(path)
        assert "frame" not in loaded[0].metadata
        assert "sender" not in loaded[0].metadata


class TestValidation:
    def test_empty_rejected(self, tmp_path):
        with pytest.raises(AcquisitionError):
            save_traces(tmp_path / "x.npz", [])

    def test_mixed_lengths_rejected(self, tmp_path):
        traces = [
            VoltageTrace(np.zeros(10, np.int32), 1e6, 12),
            VoltageTrace(np.zeros(20, np.int32), 1e6, 12),
        ]
        with pytest.raises(AcquisitionError):
            save_traces(tmp_path / "x.npz", traces)

    def test_mixed_parameters_rejected(self, tmp_path):
        traces = [
            VoltageTrace(np.zeros(10, np.int32), 1e6, 12),
            VoltageTrace(np.zeros(10, np.int32), 2e6, 12),
        ]
        with pytest.raises(AcquisitionError):
            save_traces(tmp_path / "x.npz", traces)


class TestFileLikeTargets:
    def test_bytesio_round_trip(self, sterling_session):
        import io

        buffer = io.BytesIO()
        save_traces(buffer, sterling_session.traces[:4])
        buffer.seek(0)
        loaded = load_traces(buffer)
        assert len(loaded) == 4
        for original, restored in zip(sterling_session.traces[:4], loaded):
            np.testing.assert_array_equal(original.counts, restored.counts)
            assert restored.metadata.get("sender") == original.metadata.get("sender")
