"""Property tests: engine variants are interchangeable, byte for byte.

The contract under test is the one :mod:`repro.perf` promises — the
job count and the capture cache change scheduling and storage, never
the traces, the edge-set vectors, or the detector's verdict sequence.
"""

from __future__ import annotations

import dataclasses
import tempfile
from unittest import mock

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detection import Detector
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.core.model import VProfileModel
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.errors import ExtractionError
from repro.perf import engine as engine_mod
from repro.perf.cache import CaptureCache
from repro.perf.engine import capture_and_extract, extract_many_parallel

DURATION_S = 0.6

SETTINGS = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="session")
def trained_detector(stream_vehicle, stream_train_session):
    pipeline = VProfilePipeline(
        PipelineConfig(margin=5.0, sa_clusters=stream_vehicle.sa_clusters)
    )
    pipeline.train(stream_train_session.traces)
    return pipeline.detector


def _verdicts(detector: Detector, edges) -> list[tuple[bool, str | None]]:
    results = [detector.classify(edge_set) for edge_set in edges]
    return [
        (r.is_anomaly, r.reason.value if r.reason else None) for r in results
    ]


def _assert_equivalent(detector, reference, candidate):
    ref_session, ref_edges = reference
    cand_session, cand_edges = candidate
    assert len(cand_session.traces) == len(ref_session.traces)
    for a, b in zip(ref_session.traces, cand_session.traces):
        assert np.array_equal(a.counts, b.counts)
    assert len(cand_edges) == len(ref_edges)
    for a, b in zip(ref_edges, cand_edges):
        assert a.source_address == b.source_address
        assert np.array_equal(a.vector, b.vector)
    assert _verdicts(detector, cand_edges) == _verdicts(detector, ref_edges)


class TestEngineProperties:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_jobs_one_and_four_are_identical(
        self, stream_vehicle, trained_detector, seed
    ):
        serial = capture_and_extract(
            stream_vehicle, DURATION_S, seed=seed, jobs=1
        )
        fanned = capture_and_extract(
            stream_vehicle, DURATION_S, seed=seed, jobs=4
        )
        _assert_equivalent(trained_detector, serial, fanned)

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        jobs=st.integers(min_value=2, max_value=4),
    )
    def test_shm_and_pipe_handoff_are_identical(
        self, stream_vehicle, trained_detector, seed, jobs
    ):
        """How chunk bytes travel back never changes them.

        The CPU-affinity cap would collapse multi-job runs to the
        inline path on small CI boxes, so it is lifted for the test —
        both runs must actually cross the worker boundary.  Varying
        ``jobs`` also varies the chunking, exercising descriptor
        reassembly at several chunk shapes.
        """
        with mock.patch.object(engine_mod, "_usable_cpus", return_value=4):
            shared = capture_and_extract(
                stream_vehicle, DURATION_S, seed=seed, jobs=jobs, shm=True
            )
            piped = capture_and_extract(
                stream_vehicle, DURATION_S, seed=seed, jobs=jobs, shm=False
            )
        _assert_equivalent(trained_detector, shared, piped)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_vector_and_scalar_extraction_are_identical(
        self, stream_vehicle, trained_detector, seed
    ):
        session, _ = capture_and_extract(
            stream_vehicle, DURATION_S, seed=seed, jobs=1
        )
        config = ExtractionConfig.for_trace(session.traces[0])
        vector = extract_many(session.traces, config, impl="vector")
        scalar = extract_many(session.traces, config, impl="scalar")
        assert len(vector) == len(scalar)
        for a, b in zip(vector, scalar):
            assert a.source_address == b.source_address
            assert np.array_equal(a.vector, b.vector)
        assert _verdicts(trained_detector, vector) == _verdicts(
            trained_detector, scalar
        )

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_cache_hit_is_identical_to_fresh(
        self, stream_vehicle, trained_detector, seed
    ):
        fresh = capture_and_extract(
            stream_vehicle, DURATION_S, seed=seed, jobs=1
        )
        with tempfile.TemporaryDirectory() as root:
            cache = CaptureCache(root)
            miss = capture_and_extract(
                stream_vehicle, DURATION_S, seed=seed, jobs=1, cache=cache
            )
            hit = capture_and_extract(
                stream_vehicle, DURATION_S, seed=seed, jobs=1, cache=cache
            )
        _assert_equivalent(trained_detector, fresh, miss)
        _assert_equivalent(trained_detector, fresh, hit)


class TestExtractionParity:
    """Serial and parallel extraction agree on failures, not just bytes."""

    @pytest.fixture()
    def corrupted_traces(self, stream_train_session):
        traces = list(stream_train_session.traces[:24])
        bad = dataclasses.replace(traces[13], counts=traces[13].counts[:8])
        traces[13] = bad
        return traces

    def test_error_context_matches_serial(self, corrupted_traces):
        """Workers must report the run-global message index and sample
        offset, exactly as the serial walker would."""
        config = ExtractionConfig.for_trace(corrupted_traces[0])
        with pytest.raises(ExtractionError) as serial_exc:
            extract_many(corrupted_traces, config)
        with mock.patch.object(engine_mod, "_usable_cpus", return_value=4):
            with pytest.raises(ExtractionError) as parallel_exc:
                extract_many_parallel(corrupted_traces, config, jobs=3)
        assert str(parallel_exc.value) == str(serial_exc.value)
        assert "message 13" in str(parallel_exc.value)

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_skip_counting_matches_serial(self, corrupted_traces, jobs):
        """The skip ledger survives the process boundary: the metric is
        folded exactly once per dropped trace, at any job count."""
        import repro.obs as obs

        config = ExtractionConfig.for_trace(corrupted_traces[0])
        serial_registry = obs.MetricsRegistry()
        with obs.use_registry(serial_registry):
            serial = extract_many(corrupted_traces, config, skip_failures=True)
        fanned_registry = obs.MetricsRegistry()
        with obs.use_registry(fanned_registry):
            with mock.patch.object(engine_mod, "_usable_cpus", return_value=4):
                fanned = extract_many_parallel(
                    corrupted_traces, config, jobs=jobs, skip_failures=True
                )
        assert len(fanned) == len(serial) == len(corrupted_traces) - 1
        for a, b in zip(serial, fanned):
            assert np.array_equal(a.vector, b.vector)
        name = "vprofile_extraction_skipped_total"
        assert serial_registry.get(name).value == 1
        assert fanned_registry.get(name).value == 1


def test_model_trained_on_engine_capture_is_job_invariant(stream_vehicle):
    """The whole training path is job-invariant, not just extraction."""
    models: list[VProfileModel] = []
    for jobs in (1, 3):
        session, _ = capture_and_extract(
            stream_vehicle, 1.5, seed=42, jobs=jobs
        )
        pipeline = VProfilePipeline(
            PipelineConfig(margin=5.0, sa_clusters=stream_vehicle.sa_clusters)
        )
        pipeline.train(session.traces)
        models.append(pipeline.model)
    a, b = models
    assert a.n_clusters == b.n_clusters
    for name in sorted(c.name for c in a.clusters):
        ca = next(c for c in a.clusters if c.name == name)
        cb = next(c for c in b.clusters if c.name == name)
        assert np.array_equal(ca.mean, cb.mean)
