"""CLI streaming workflows: the ``stream`` subcommand and ``-`` paths."""

from __future__ import annotations

import io
import sys

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream-cli") / "capture.npz"
    assert main([
        "capture", "--vehicle", "sterling", "--duration", "2",
        "--seed", "11", "--output", str(path),
    ]) == 0
    return path


@pytest.fixture(scope="module")
def model_path(archive_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("stream-cli-model") / "model.npz"
    assert main([
        "train", "--vehicle", "sterling", "--input", str(archive_path),
        "--metric", "euclidean", "--output", str(path),
    ]) == 0
    return path


class _Stdin:
    """A stand-in for ``sys.stdin`` exposing only the binary buffer."""

    def __init__(self, data: bytes):
        self.buffer = io.BytesIO(data)


class TestStreamCommand:
    def test_replay_with_hijack_emits_alerts(self, archive_path, model_path, capsys):
        assert main([
            "stream", "--vehicle", "sterling", "--model", str(model_path),
            "--input", str(archive_path), "--workers", "2",
            "--hijack", "0.4", "--margin", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "ALERT" in out and "cluster-mismatch" in out
        assert "messages=" in out and "frames/s" in out

    def test_checkpoint_then_resume(
        self, archive_path, model_path, tmp_path, capsys
    ):
        checkpoint = tmp_path / "ckpt"
        assert main([
            "stream", "--vehicle", "sterling", "--model", str(model_path),
            "--input", str(archive_path), "--margin", "50",
            "--checkpoint", str(checkpoint), "--checkpoint-every", "100",
        ]) == 0
        first = capsys.readouterr().out
        assert "checkpoints=" in first and (checkpoint / "meta.json").exists()

        # The final checkpoint sits at end-of-stream: resuming the same
        # archive re-ingests and re-classifies nothing.
        assert main([
            "stream", "--vehicle", "sterling", "--resume", str(checkpoint),
            "--input", str(archive_path),
        ]) == 0
        assert "messages=0" in capsys.readouterr().out

    def test_metrics_out(self, archive_path, model_path, tmp_path, capsys):
        metrics = tmp_path / "stream.json"
        assert main([
            "stream", "--vehicle", "sterling", "--model", str(model_path),
            "--input", str(archive_path), "--margin", "50",
            "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()
        assert metrics.exists()
        import json

        names = {c["name"] for c in json.loads(metrics.read_text())["counters"]}
        assert "vprofile_stream_chunks_total" in names
        assert "vprofile_messages_total" in names

    def test_missing_model_exits_2(self, archive_path, capsys):
        assert main([
            "stream", "--vehicle", "sterling", "--model", "/nonexistent.npz",
            "--input", str(archive_path),
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestDashPaths:
    def test_capture_to_stdout(self, capsysbinary):
        assert main([
            "capture", "--vehicle", "sterling", "--duration", "1",
            "--seed", "12", "--output", "-",
        ]) == 0
        captured = capsysbinary.readouterr()
        assert captured.out[:2] == b"PK"  # npz == zip container
        assert b"captured" in captured.err

    def test_detect_from_stdin(self, archive_path, model_path, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", _Stdin(archive_path.read_bytes()))
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--input", "-", "--margin", "50",
        ]) == 0
        assert "accuracy=" in capsys.readouterr().out

    def test_stream_from_stdin(self, archive_path, model_path, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", _Stdin(archive_path.read_bytes()))
        assert main([
            "stream", "--vehicle", "sterling", "--model", str(model_path),
            "--input", "-", "--margin", "50",
        ]) == 0
        assert "messages=" in capsys.readouterr().out

    def test_train_from_stdin(self, archive_path, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(sys, "stdin", _Stdin(archive_path.read_bytes()))
        out_model = tmp_path / "model.npz"
        assert main([
            "train", "--vehicle", "sterling", "--input", "-",
            "--metric", "euclidean", "--output", str(out_model),
        ]) == 0
        assert out_model.exists()

    def test_garbage_stdin_exits_2(self, model_path, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", _Stdin(b""))
        assert main([
            "stream", "--vehicle", "sterling", "--model", str(model_path),
            "--input", "-",
        ]) == 2
        assert "not a trace archive" in capsys.readouterr().err

    def test_missing_archive_still_errors(self, model_path, capsys):
        assert main([
            "detect", "--vehicle", "sterling", "--model", str(model_path),
            "--input", "/nonexistent.npz",
        ]) == 2
        assert "not found" in capsys.readouterr().err
