"""The alert flight recorder: bounded rings, bundle dumps, exact replay."""

import json

import numpy as np
import pytest

from repro.core.detection import Detector
from repro.core.model import ClusterProfile, Metric, VProfileModel
from repro.errors import ObservabilityError
from repro.obs.recorder import (
    ARRAYS_FILE,
    BUNDLE_VERSION,
    MANIFEST_FILE,
    MODEL_FILE,
    FlightRecorder,
    ForensicsBundle,
)


def make_model(dim=4):
    clusters = [
        ClusterProfile(
            name=f"ECU{i}",
            mean=np.full(dim, float(i * 10)),
            max_distance=3.0,
            count=100,
            covariance=np.eye(dim),
            inv_covariance=np.eye(dim),
        )
        for i in range(2)
    ]
    return VProfileModel(
        metric=Metric.MAHALANOBIS,
        clusters=clusters,
        sa_to_cluster={0x10: 0, 0x11: 1},
    )


@pytest.fixture
def model():
    return make_model()


@pytest.fixture
def detector(model):
    return Detector(model, margin=0.5)


def ok_vector(model, cluster=0, dim=4):
    return model.clusters[cluster].mean + 0.1


def bad_vector(dim=4):
    # Equidistant-from-nothing: far outside every cluster's threshold.
    return np.full(dim, 100.0)


def feed(recorder, detector, model, seqs, *, anomaly_at=(), shard=0):
    """Classify and record a run of messages; return dump paths."""
    paths = []
    for seq in seqs:
        vector = bad_vector() if seq in anomaly_at else ok_vector(model)
        result = detector.classify(vector, sa=0x10)
        path = recorder.record(seq, shard, 0x10, float(seq) * 1e-3, vector, result)
        if path is not None:
            paths.append(path)
    return paths


class TestRingBounds:
    def test_ring_is_bounded_per_shard(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, capacity=8, model=model)
        feed(recorder, detector, model, range(100))
        assert len(recorder) == 8

    def test_shards_are_independent(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, n_shards=2, capacity=4, model=model)
        feed(recorder, detector, model, range(10), shard=0)
        feed(recorder, detector, model, range(10, 13), shard=1)
        assert len(recorder) == 4 + 3

    def test_validation(self, tmp_path):
        with pytest.raises(ObservabilityError):
            FlightRecorder(tmp_path, n_shards=0)
        with pytest.raises(ObservabilityError):
            FlightRecorder(tmp_path, capacity=0)
        with pytest.raises(ObservabilityError):
            FlightRecorder(tmp_path, post_alert=-1)


class TestDump:
    def test_no_alert_no_bundle(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, model=model)
        assert feed(recorder, detector, model, range(50)) == []
        assert not tmp_path.exists() or not any(tmp_path.iterdir())

    def test_dump_waits_for_post_alert_context(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, capacity=32, post_alert=4, model=model)
        # seq 5 alerts; the dump needs 4 post-alert records (6..9), so
        # feeding only up to seq 8 leaves the dump armed but unfired.
        assert feed(recorder, detector, model, range(9), anomaly_at={5}) == []
        recorder2 = FlightRecorder(tmp_path / "b", capacity=32, post_alert=4, model=model)
        paths2 = feed(recorder2, detector, model, range(10), anomaly_at={5})
        assert len(paths2) == 1

    def test_bundle_layout_and_manifest(self, tmp_path, detector, model):
        recorder = FlightRecorder(
            tmp_path, capacity=32, post_alert=2, model=model, margin=0.5
        )
        [bundle] = feed(recorder, detector, model, range(8), anomaly_at={4})
        assert bundle.name == "bundle-0001-seq4"
        assert (bundle / MANIFEST_FILE).exists()
        assert (bundle / ARRAYS_FILE).exists()
        assert (bundle / MODEL_FILE).exists()
        manifest = json.loads((bundle / MANIFEST_FILE).read_text())
        assert manifest["version"] == BUNDLE_VERSION
        assert manifest["margin"] == 0.5
        assert manifest["alert"]["seq"] == 4
        assert manifest["alert"]["source_address"] == 0x10
        # Pre-alert context (0..3) + alert (4) + post context (5, 6).
        assert [r["seq"] for r in manifest["records"]] == list(range(7))

    def test_post_alert_zero_dumps_immediately(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, post_alert=0, model=model)
        paths = feed(recorder, detector, model, range(5), anomaly_at={2})
        assert len(paths) == 1
        manifest = json.loads((paths[0] / MANIFEST_FILE).read_text())
        assert manifest["records"][-1]["seq"] == 2

    def test_max_bundles_caps_alert_storms(self, tmp_path, detector, model):
        recorder = FlightRecorder(
            tmp_path, post_alert=0, max_bundles=2, model=model
        )
        paths = feed(
            recorder, detector, model, range(20), anomaly_at=set(range(0, 20, 2))
        )
        assert len(paths) == 2
        assert recorder.bundle_paths == paths
        assert len(list(tmp_path.iterdir())) == 2

    def test_finish_flushes_pending_dump(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, post_alert=100, model=model)
        assert feed(recorder, detector, model, range(6), anomaly_at={5}) == []
        paths = recorder.finish()
        assert len(paths) == 1
        manifest = json.loads((paths[0] / MANIFEST_FILE).read_text())
        assert manifest["alert"]["seq"] == 5

    def test_finish_is_a_noop_without_pending(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, model=model)
        feed(recorder, detector, model, range(6))
        assert recorder.finish() == []


class TestReplay:
    """The acceptance criterion: static-model replay is byte-identical."""

    def make_bundle(self, tmp_path, detector, model):
        recorder = FlightRecorder(
            tmp_path, capacity=16, post_alert=3, model=model, margin=0.5
        )
        [path] = feed(recorder, detector, model, range(12), anomaly_at={6})
        return path

    def test_replay_is_byte_identical(self, tmp_path, detector, model):
        bundle = ForensicsBundle.load(self.make_bundle(tmp_path, detector, model))
        report = bundle.replay()
        assert report.records == 10  # seqs 0..6 plus 3 post-alert
        assert report.identical
        assert report.mismatches == []
        assert report.alert_seq == 6
        assert report.alert_reproduced

    def test_replay_with_explicit_model_overrides_embedded(
        self, tmp_path, detector, model
    ):
        bundle = ForensicsBundle.load(self.make_bundle(tmp_path, detector, model))
        report = bundle.replay(model=make_model())
        assert report.identical  # structurally identical model: same floats

    def test_replay_detects_profile_drift(self, tmp_path, detector, model):
        bundle = ForensicsBundle.load(self.make_bundle(tmp_path, detector, model))
        drifted = make_model()
        drifted.clusters[0].mean += 0.5
        report = bundle.replay(model=drifted)
        assert not report.identical
        assert {m.field for m in report.mismatches} <= {
            "verdict", "reason", "expected_cluster", "predicted_cluster",
            "min_distance", "slack",
        }

    def test_load_rejects_non_bundles(self, tmp_path):
        with pytest.raises(ObservabilityError, match="not a forensics bundle"):
            ForensicsBundle.load(tmp_path)

    def test_load_rejects_future_versions(self, tmp_path, detector, model):
        path = self.make_bundle(tmp_path, detector, model)
        manifest = json.loads((path / MANIFEST_FILE).read_text())
        manifest["version"] = BUNDLE_VERSION + 1
        (path / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(ObservabilityError, match="unsupported bundle version"):
            ForensicsBundle.load(path)

    def test_replay_without_any_model_raises(self, tmp_path, detector, model):
        recorder = FlightRecorder(tmp_path, post_alert=0, model=None)
        [path] = feed(recorder, detector, model, range(3), anomaly_at={2})
        bundle = ForensicsBundle.load(path)
        assert bundle.model is None
        with pytest.raises(ObservabilityError, match="no embedded model"):
            bundle.replay()

    def test_vectors_round_trip_exactly(self, tmp_path, detector, model):
        rng = np.random.default_rng(5)
        recorder = FlightRecorder(tmp_path, post_alert=0, model=model)
        vectors = [rng.normal(0.0, 1.0, 4) for _ in range(3)]
        vectors.append(bad_vector())
        for seq, vector in enumerate(vectors):
            result = detector.classify(vector, sa=0x10)
            path = recorder.record(seq, 0, 0x10, 0.0, vector, result)
        bundle = ForensicsBundle.load(path)
        assert bundle.vectors.dtype == np.float64
        np.testing.assert_array_equal(bundle.vectors, np.stack(vectors))
