"""Margin tuning: optimality against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detection import BatchDetection
from repro.errors import ReproError
from repro.eval.confusion import ConfusionMatrix
from repro.eval.margin import margin_removing_false_positives, tune_margin


def make_batch(expected, predicted, slack):
    return BatchDetection(
        expected_cluster=np.asarray(expected, dtype=np.int64),
        predicted_cluster=np.asarray(predicted, dtype=np.int64),
        min_distance=np.abs(np.asarray(slack, dtype=float)),
        slack=np.asarray(slack, dtype=float),
        margin=0.0,
    )


def brute_force_best(batch, actual, objective):
    candidates = np.unique(np.concatenate([[0.0], np.maximum(batch.slack + 1e-9, 0), [1e9]]))
    best = -1.0
    for margin in candidates:
        cm = ConfusionMatrix.from_predictions(actual, batch.anomalies(margin))
        score = cm.accuracy if objective == "accuracy" else cm.f_score
        best = max(best, score)
    return best


class TestTuneMargin:
    def test_separable_case(self):
        # Normal slacks below zero, attack slacks above: perfect at 0.
        batch = make_batch([0] * 6, [0] * 6, [-1, -2, -0.5, 3, 4, 5])
        actual = np.array([False, False, False, True, True, True])
        choice = tune_margin(batch, actual, "f-score")
        assert choice.score == 1.0
        assert choice.margin < 3

    def test_hard_anomalies_always_flagged(self):
        batch = make_batch([0, 1], [1, 1], [-5.0, -5.0])
        actual = np.array([True, False])
        choice = tune_margin(batch, actual, "accuracy")
        flags = batch.anomalies(choice.margin)
        assert flags[0] and not flags[1]
        assert choice.score == 1.0

    def test_prefers_smallest_margin_on_tie(self):
        batch = make_batch([0] * 3, [0] * 3, [-1.0, -2.0, -3.0])
        actual = np.zeros(3, dtype=bool)
        choice = tune_margin(batch, actual, "accuracy")
        assert choice.margin == 0.0  # every margin ties at accuracy 1

    def test_invalid_objective(self):
        batch = make_batch([0], [0], [0.0])
        with pytest.raises(ReproError):
            tune_margin(batch, np.array([False]), "auc")

    def test_length_mismatch(self):
        batch = make_batch([0], [0], [0.0])
        with pytest.raises(ReproError):
            tune_margin(batch, np.array([False, True]), "accuracy")

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.booleans(),                      # is attack
                st.booleans(),                      # hard anomaly
                st.floats(-10, 10, allow_nan=False),
            ),
            min_size=2,
            max_size=40,
        ),
        st.sampled_from(["accuracy", "f-score"]),
    )
    def test_matches_brute_force(self, rows, objective):
        actual = np.array([r[0] for r in rows])
        expected = np.zeros(len(rows), dtype=np.int64)
        predicted = np.array([1 if r[1] else 0 for r in rows], dtype=np.int64)
        slack = np.array([r[2] for r in rows])
        batch = make_batch(expected, predicted, slack)
        choice = tune_margin(batch, actual, objective)
        assert choice.score == pytest.approx(
            brute_force_best(batch, actual, objective), abs=1e-9
        )
        # The reported score is achievable at the reported margin.
        cm = ConfusionMatrix.from_predictions(actual, batch.anomalies(choice.margin))
        achieved = cm.accuracy if objective == "accuracy" else cm.f_score
        assert achieved == pytest.approx(choice.score, abs=1e-9)


class TestZeroFpMargin:
    def test_simple(self):
        batch = make_batch([0] * 4, [0] * 4, [1.0, 2.0, -1.0, 5.0])
        actual = np.array([False, False, False, True])
        margin = margin_removing_false_positives(batch, actual)
        flags = batch.anomalies(margin)
        assert not flags[:3].any()
        assert flags[3]

    def test_unreachable_with_hard_fp(self):
        batch = make_batch([0, 0], [1, 0], [-1.0, -1.0])
        actual = np.array([False, False])
        assert margin_removing_false_positives(batch, actual) is None

    def test_no_normals_above_threshold(self):
        batch = make_batch([0, 0], [0, 0], [-1.0, -2.0])
        actual = np.array([False, False])
        assert margin_removing_false_positives(batch, actual) == 0.0
