"""End-to-end streaming pipeline."""

import pytest

from repro.core.detection import Verdict
from repro.core.model import Metric
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.errors import DetectionError


@pytest.fixture(scope="module")
def split_session(vehicle_a_session):
    return vehicle_a_session.split(0.5, seed=3)


class TestTraining:
    def test_train_builds_model(self, split_session, veh_a):
        train, _ = split_session
        pipeline = VProfilePipeline(PipelineConfig(sa_clusters=veh_a.sa_clusters))
        model = pipeline.train(train)
        assert pipeline.is_trained
        assert model.n_clusters == len(veh_a.ecus)

    def test_untrained_process_rejected(self, vehicle_a_session):
        pipeline = VProfilePipeline()
        with pytest.raises(DetectionError):
            pipeline.process(vehicle_a_session.traces[0])

    def test_empty_training_rejected(self):
        with pytest.raises(DetectionError):
            VProfilePipeline().train([])


class TestProcessing:
    def test_clean_stream_mostly_ok(self, split_session, veh_a):
        train, test = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(margin=5.0, sa_clusters=veh_a.sa_clusters)
        )
        pipeline.train(train)
        results = list(pipeline.process_stream(test[:400]))
        ok = sum(1 for r in results if r.verdict is Verdict.OK)
        assert ok >= 398
        assert pipeline.stats.processed == 400
        assert pipeline.anomaly_rate() <= 0.005

    def test_stats_track_reasons(self, split_session, veh_a):
        train, test = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(margin=5.0, sa_clusters=veh_a.sa_clusters)
        )
        pipeline.train(train)
        pipeline.process(test[0])
        assert pipeline.stats.processed == 1

    def test_online_update_counts(self, split_session, veh_a):
        train, test = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(
                margin=5.0,
                sa_clusters=veh_a.sa_clusters,
                online_update=True,
            )
        )
        model = pipeline.train(train)
        counts_before = [c.count for c in model.clusters]
        for trace in test[:100]:
            pipeline.process(trace)
        assert pipeline.stats.updated > 0
        assert sum(c.count for c in model.clusters) > sum(counts_before)

    def test_load_model(self, split_session, veh_a):
        train, test = split_session
        source = VProfilePipeline(PipelineConfig(sa_clusters=veh_a.sa_clusters))
        model = source.train(train)
        clone = VProfilePipeline(PipelineConfig(margin=5.0))
        clone.load_model(model, source.extraction)
        assert clone.process(test[0]).verdict is Verdict.OK

    def test_euclidean_config(self, split_session, veh_a):
        train, test = split_session
        pipeline = VProfilePipeline(
            PipelineConfig(
                metric=Metric.EUCLIDEAN, margin=500.0, sa_clusters=veh_a.sa_clusters
            )
        )
        pipeline.train(train)
        result = pipeline.process(test[0])
        assert result.min_distance is not None
