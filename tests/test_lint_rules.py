"""Per-rule positive/negative fixtures for the VPL invariant checker.

Every rule code gets at least one firing snippet and one clean snippet,
plus shared tests for inline ``# vpl: ignore[...]`` suppressions,
config-driven scoping, select/ignore filtering, and the schema-lock
workflow (VPL402) against a throwaway mini-repo.
"""

import json
import textwrap

import pytest

from repro.lint import (
    Diagnostic,
    LintConfig,
    config_from_mapping,
    lint_source,
    update_lock,
)
from repro.lint.config import LintConfigError
from repro.lint.fingerprint import schema_fingerprint


def codes(source, path="src/repro/fake.py", config=None, root="."):
    diagnostics = lint_source(textwrap.dedent(source), path, config, root=root)
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
# VPL101 — legacy numpy.random module calls
# ----------------------------------------------------------------------
def test_vpl101_fires_on_module_level_np_random():
    assert codes("""
        import numpy as np
        np.random.seed(42)
        x = np.random.normal(size=8)
    """) == ["VPL101", "VPL101"]


def test_vpl101_fires_via_from_import():
    assert codes("""
        from numpy.random import shuffle
        shuffle([1, 2, 3])
    """) == ["VPL101"]


def test_vpl101_clean_on_generator_api():
    assert codes("""
        import numpy as np
        rng = np.random.default_rng(7)
        x = rng.normal(size=8)
    """) == []


def test_vpl101_clean_on_unrelated_local_names():
    # A local variable named like the module must not be resolved.
    assert codes("""
        class Thing:
            def normal(self):
                return 1
        random = Thing()
        random.normal()
    """) == []


# ----------------------------------------------------------------------
# VPL102 — argless default_rng / seed
# ----------------------------------------------------------------------
def test_vpl102_fires_on_argless_default_rng():
    assert codes("""
        import numpy as np
        rng = np.random.default_rng()
    """) == ["VPL102"]


def test_vpl102_fires_on_from_import_spelling():
    assert codes("""
        from numpy.random import default_rng
        rng = default_rng()
    """) == ["VPL102"]


def test_vpl102_clean_when_seeded():
    assert codes("""
        import numpy as np
        rng = np.random.default_rng(123)
        rng2 = np.random.default_rng(np.random.SeedSequence(5))
    """) == []


# ----------------------------------------------------------------------
# VPL103 — stray clock reads
# ----------------------------------------------------------------------
CLOCK_SNIPPET = """
    import time
    from datetime import datetime

    def stamp():
        return time.time(), datetime.now()
"""


def test_vpl103_fires_in_library_code():
    assert codes(CLOCK_SNIPPET) == ["VPL103", "VPL103"]


def test_vpl103_fires_on_bare_perf_counter():
    assert codes("""
        from time import perf_counter
        t0 = perf_counter()
    """) == ["VPL103"]


def test_vpl103_exempt_paths_from_config():
    # Only the clock-funnel implementation modules are exempt.
    for path in ("src/repro/obs/clock.py", "src/repro/obs/spans.py",
                 "src/repro/obs/events.py", "benchmarks/test_x.py",
                 "examples/demo.py", "tests/test_y.py"):
        assert codes(CLOCK_SNIPPET, path=path) == []


def test_vpl103_fires_in_longitudinal_obs_modules():
    # The new obs layer is NOT exempt: timeseries/health/recorder/server
    # must route through repro.obs.clock like any other subsystem.
    for path in ("src/repro/obs/timeseries.py", "src/repro/obs/health.py",
                 "src/repro/obs/recorder.py", "src/repro/obs/server.py"):
        assert codes(CLOCK_SNIPPET, path=path) == ["VPL103", "VPL103"]


def test_vpl103_clean_when_routed_through_obs():
    assert codes("""
        from repro.obs.clock import monotonic
        t0 = monotonic()
    """) == []


# ----------------------------------------------------------------------
# VPL104 — float-literal equality
# ----------------------------------------------------------------------
def test_vpl104_fires_on_float_eq_and_ne():
    assert codes("""
        def f(x, y):
            return x == 1.5 or y != 0.25
    """) == ["VPL104", "VPL104"]


def test_vpl104_clean_on_int_compare_and_isclose():
    assert codes("""
        import math
        def f(x):
            return x == 1 or math.isclose(x, 1.5)
    """) == []


def test_vpl104_scoped_to_library_paths():
    assert codes("def f(x):\n    return x == 1.5\n",
                 path="tests/test_exact.py") == []


# ----------------------------------------------------------------------
# VPL201 — generator disconnected from an rng/seed parameter
# ----------------------------------------------------------------------
def test_vpl201_fires_on_disconnected_generator():
    assert codes("""
        import numpy as np
        def synth(rng):
            local = np.random.default_rng(1234)
            return local.normal()
    """) == ["VPL201"]


def test_vpl201_clean_when_derived_from_seed_param():
    assert codes("""
        import numpy as np
        def synth(seed):
            rng = np.random.default_rng(seed)
            return rng.normal()
    """) == []


def test_vpl201_clean_on_guarded_seeded_fallback():
    assert codes("""
        import numpy as np
        def synth(rng=None):
            if rng is None:
                rng = np.random.default_rng(0)
            return rng.normal()
    """) == []


def test_vpl201_argless_fallback_is_vpl102_not_both():
    assert codes("""
        import numpy as np
        def synth(rng=None):
            if rng is None:
                rng = np.random.default_rng()
            return rng.normal()
    """) == ["VPL102"]


# ----------------------------------------------------------------------
# VPL202 — hand-forged SeedSequence children
# ----------------------------------------------------------------------
def test_vpl202_fires_on_spawn_key_kwarg():
    assert codes("""
        import numpy as np
        child = np.random.SeedSequence(entropy=1, spawn_key=(3,))
    """) == ["VPL202"]


def test_vpl202_clean_on_spawn():
    assert codes("""
        import numpy as np
        children = np.random.SeedSequence(1).spawn(4)
    """) == []


# ----------------------------------------------------------------------
# VPL301 — unlocked read-modify-write in lock-owning classes
# ----------------------------------------------------------------------
LOCKED_CLASS = """
    import threading

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            {body}
"""


def test_vpl301_fires_outside_lock():
    source = LOCKED_CLASS.format(body="self.count += 1")
    assert codes(source, path="src/repro/stream/fake.py") == ["VPL301"]


def test_vpl301_clean_under_lock():
    source = LOCKED_CLASS.format(
        body="with self._lock:\n                self.count += 1"
    )
    assert codes(source, path="src/repro/stream/fake.py") == []


def test_vpl301_clean_without_a_lock_attribute():
    assert codes("""
        class Tally:
            def __init__(self):
                self.count = 0
            def bump(self):
                self.count += 1
    """, path="src/repro/stream/fake.py") == []


def test_vpl301_scoped_to_concurrency_paths():
    source = LOCKED_CLASS.format(body="self.count += 1")
    assert codes(source, path="src/repro/eval/fake.py") == []


def test_vpl301_recognises_injected_lock_by_hint():
    assert codes("""
        import threading
        class Pool:
            def __init__(self, shared_lock):
                self._lock = threading.Lock()
                self.shared_lock = shared_lock
                self.count = 0
            def bump(self):
                with self.shared_lock:
                    self.count += 1
    """, path="src/repro/stream/fake.py") == []


# ----------------------------------------------------------------------
# VPL303 — blocking calls inside async defs (fleet event loop)
# ----------------------------------------------------------------------
FLEET_PATH = "src/repro/fleet/fake.py"


def test_vpl303_fires_on_time_sleep():
    assert codes("""
        import time
        async def handler():
            time.sleep(0.1)
    """, path=FLEET_PATH) == ["VPL303"]


def test_vpl303_fires_on_open_and_path_io():
    assert codes("""
        async def handler(path):
            open(path).read()
            path.read_text()
    """, path=FLEET_PATH) == ["VPL303", "VPL303"]


def test_vpl303_fires_on_blocking_queue_get():
    assert codes("""
        async def handler(queue):
            return queue.get(timeout=1.0)
    """, path=FLEET_PATH) == ["VPL303"]


def test_vpl303_clean_on_awaited_queue_get():
    # `await queue.get()` is the asyncio queue yielding, not blocking.
    assert codes("""
        async def handler(queue):
            return await queue.get()
    """, path=FLEET_PATH) == []


def test_vpl303_clean_inside_nested_def():
    # Nested defs run wherever they're called — here, on the executor.
    assert codes("""
        import numpy as np
        async def handler(loop, executor, path):
            def work():
                return np.load(path)
            return await loop.run_in_executor(executor, work)
    """, path=FLEET_PATH) == []


def test_vpl303_scans_arguments_of_awaited_calls():
    # The await exempts the awaited call, not blocking work nested in
    # its argument list.
    assert codes("""
        import time
        async def handler(send):
            await send(time.sleep(1))
    """, path=FLEET_PATH) == ["VPL303"]


def test_vpl303_scoped_to_async_paths():
    assert codes("""
        import time
        async def handler():
            time.sleep(0.1)
    """, path="src/repro/stream/fake.py") == []


def test_vpl303_clean_on_sync_def():
    assert codes("""
        import time
        def handler():
            time.sleep(0.1)
    """, path=FLEET_PATH) == []


# ----------------------------------------------------------------------
# VPL304 — SharedMemory lifecycle in the zero-copy hand-off
# ----------------------------------------------------------------------
PERF_PATH = "src/repro/perf/fake.py"


def test_vpl304_fires_without_any_cleanup():
    assert codes("""
        from multiprocessing import shared_memory

        def pack(total):
            segment = shared_memory.SharedMemory(create=True, size=total)
            return segment.name
    """, path=PERF_PATH) == ["VPL304"]


def test_vpl304_fires_on_discarded_handle():
    assert codes("""
        from multiprocessing.shared_memory import SharedMemory

        def peek(name):
            return SharedMemory(name=name).buf[0]
    """, path=PERF_PATH) == ["VPL304"]


def test_vpl304_fires_on_error_path_close_without_fallthrough():
    # Closing only in the handler leaks the segment on success.
    assert codes("""
        from multiprocessing import shared_memory

        def pack(total):
            segment = shared_memory.SharedMemory(create=True, size=total)
            try:
                fill(segment)
            except BaseException:
                segment.close()
                segment.unlink()
                raise
            return segment.name
    """, path=PERF_PATH) == ["VPL304"]


def test_vpl304_clean_with_close_in_finally():
    assert codes("""
        from multiprocessing import shared_memory

        def pack(total):
            segment = shared_memory.SharedMemory(create=True, size=total)
            try:
                fill(segment)
            finally:
                segment.close()
    """, path=PERF_PATH) == []


def test_vpl304_clean_on_pack_arrays_shape():
    # Error-path close+unlink+raise plus the fall-through close.
    assert codes("""
        from multiprocessing import shared_memory

        def pack(total):
            segment = shared_memory.SharedMemory(create=True, size=total)
            try:
                fill(segment)
            except BaseException:
                segment.close()
                segment.unlink()
                raise
            segment.close()
            return segment.name
    """, path=PERF_PATH) == []


def test_vpl304_clean_on_ownership_transfer_to_self():
    # The arena pattern: the managing object closes it later.
    assert codes("""
        from multiprocessing import shared_memory

        class Arena:
            def attach(self, name):
                segment = shared_memory.SharedMemory(name=name)
                self._segments[name] = segment
                return segment.buf
    """, path=PERF_PATH) == []


def test_vpl304_scoped_to_shm_paths():
    assert codes("""
        from multiprocessing import shared_memory

        def pack(total):
            segment = shared_memory.SharedMemory(create=True, size=total)
            return segment.name
    """, path="src/repro/stream/fake.py") == []


# ----------------------------------------------------------------------
# VPL302 — mutable default arguments
# ----------------------------------------------------------------------
def test_vpl302_fires_on_list_dict_set_defaults():
    assert codes("""
        def f(a=[], b={}, c=set()):
            return a, b, c
    """) == ["VPL302", "VPL302", "VPL302"]


def test_vpl302_clean_on_none_default():
    assert codes("""
        def f(a=None, b=(), c="x"):
            return a, b, c
    """) == []


# ----------------------------------------------------------------------
# VPL401 — metric name hygiene
# ----------------------------------------------------------------------
def test_vpl401_fires_on_dynamic_name():
    assert codes("""
        def count(registry, outcome):
            registry.counter(f"vprofile_cache_{outcome}_total").inc()
    """) == ["VPL401"]


def test_vpl401_fires_on_nonconforming_literal():
    assert codes("""
        def count(registry):
            registry.counter("requests_total").inc()
    """) == ["VPL401"]


def test_vpl401_clean_on_literal_and_constant():
    assert codes("""
        HITS_METRIC = "vprofile_cache_hits_total"
        def count(registry):
            registry.counter(HITS_METRIC).inc()
            registry.gauge("vprofile_stream_queue_depth").set(1)
    """) == []


def test_vpl401_covers_longitudinal_obs_modules():
    # VPL401 is repo-wide: dynamic metric names in the new obs layer
    # fire exactly as they would anywhere else.
    for path in ("src/repro/obs/timeseries.py", "src/repro/obs/health.py",
                 "src/repro/obs/recorder.py", "src/repro/obs/server.py"):
        assert codes("""
            def publish(registry, sa):
                registry.gauge("vprofile_profile_health_" + sa).set(1)
        """, path=path) == ["VPL401"]
        assert codes("""
            HEALTH_METRIC = "vprofile_profile_health"
            def publish(registry):
                registry.gauge(HEALTH_METRIC, sa="0x10").set(1)
        """, path=path) == []


def test_vpl401_per_file_ignore_for_tests():
    config = LintConfig(per_file_ignores={"tests/*": ("VPL401",)})
    assert codes("""
        def count(registry):
            registry.counter("toy_total").inc()
    """, path="tests/test_registry.py", config=config) == []


# ----------------------------------------------------------------------
# VPL402 — capture-cache schema lock (mini-repo on disk)
# ----------------------------------------------------------------------
CACHE_MODULE_V1 = """
from dataclasses import dataclass

CACHE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class KeyInput:
    vehicle: str
    duration_s: float
"""


@pytest.fixture
def mini_repo(tmp_path):
    (tmp_path / "src").mkdir()
    cache_py = tmp_path / "src" / "cache.py"
    cache_py.write_text(CACHE_MODULE_V1)
    config = LintConfig(
        schema_version_file="src/cache.py",
        schema_watch=("src/cache.py",),
        schema_lock="schema.lock.json",
    )
    return tmp_path, cache_py, config


def lint_cache(cache_py, config, root):
    return lint_source(
        cache_py.read_text(), "src/cache.py", config, root=root
    )


def test_vpl402_fires_without_a_lock_file(mini_repo):
    root, cache_py, config = mini_repo
    found = lint_cache(cache_py, config, root)
    assert [d.code for d in found] == ["VPL402"]
    assert "missing" in found[0].message


def test_vpl402_clean_after_update_lock(mini_repo):
    root, cache_py, config = mini_repo
    update_lock(root, config)
    assert lint_cache(cache_py, config, root) == []


def test_vpl402_fires_on_field_change_without_version_bump(mini_repo):
    root, cache_py, config = mini_repo
    update_lock(root, config)
    cache_py.write_text(CACHE_MODULE_V1 + "    seed: int = 0\n")
    found = lint_cache(cache_py, config, root)
    assert [d.code for d in found] == ["VPL402"]
    assert "bump" in found[0].message
    # Anchored at the version-constant assignment.
    version_line = CACHE_MODULE_V1.splitlines().index(
        "CACHE_SCHEMA_VERSION = 1"
    ) + 1
    assert found[0].line == version_line


def test_vpl402_clean_after_bump_and_relock(mini_repo):
    root, cache_py, config = mini_repo
    update_lock(root, config)
    changed = CACHE_MODULE_V1.replace(
        "CACHE_SCHEMA_VERSION = 1", "CACHE_SCHEMA_VERSION = 2"
    ) + "    seed: int = 0\n"
    cache_py.write_text(changed)
    update_lock(root, config)
    assert lint_cache(cache_py, config, root) == []


def test_vpl402_fingerprint_ignores_comments_and_bodies(mini_repo):
    root, cache_py, config = mini_repo
    before = schema_fingerprint(root, config)
    cache_py.write_text("# a leading comment\n" + CACHE_MODULE_V1)
    assert schema_fingerprint(root, config) == before


def test_vpl402_lock_file_is_json_with_version(mini_repo):
    root, _, config = mini_repo
    path = update_lock(root, config)
    payload = json.loads(path.read_text())
    assert payload["schema_version"] == 1
    assert len(payload["fingerprint"]) == 64


# ----------------------------------------------------------------------
# Suppressions, filtering, diagnostics plumbing
# ----------------------------------------------------------------------
def test_inline_suppression_silences_named_code():
    assert codes("""
        def f(x):
            return x == 1.5  # vpl: ignore[VPL104]
    """) == []


def test_inline_suppression_is_code_specific():
    # Suppressing a different code must not silence the finding.
    assert codes("""
        def f(x):
            return x == 1.5  # vpl: ignore[VPL101]
    """) == ["VPL104"]


def test_bare_suppression_silences_everything_on_the_line():
    assert codes("""
        import numpy as np
        rng = np.random.default_rng()  # vpl: ignore
    """) == []


def test_suppression_only_applies_to_its_own_line():
    assert codes("""
        import numpy as np
        # vpl: ignore[VPL102]
        rng = np.random.default_rng()
    """) == ["VPL102"]


def test_select_and_ignore_prefixes():
    source = """
        import numpy as np
        def f(x):
            np.random.seed(1)
            return x == 1.5
    """
    assert codes(source, config=LintConfig(select=("VPL1",))) \
        == ["VPL101", "VPL104"]
    assert codes(source, config=LintConfig(select=("VPL104",))) == ["VPL104"]
    assert codes(source, config=LintConfig(ignore=("VPL104",))) == ["VPL101"]


def test_exclude_skips_file_entirely():
    config = LintConfig(exclude=("src/generated",))
    assert codes("import numpy as np\nnp.random.seed(1)\n",
                 path="src/generated/stub.py", config=config) == []


def test_syntax_error_reported_as_vpl000():
    found = lint_source("def broken(:\n", "src/repro/broken.py")
    assert [d.code for d in found] == ["VPL000"]


def test_diagnostic_format_is_compiler_shaped():
    d = Diagnostic(path="src/x.py", line=3, col=4, code="VPL104", message="boom")
    assert d.format() == "src/x.py:3:4: VPL104 boom"


def test_config_from_mapping_round_trip():
    config = config_from_mapping(
        {
            "select": ["VPL1"],
            "clock-exempt": ["src/repro/obs"],
            "per-file-ignores": {"tests/*": ["VPL401"]},
            "metric-name-pattern": "^m_",
        }
    )
    assert config.select == ("VPL1",)
    assert config.clock_exempt == ("src/repro/obs",)
    assert config.per_file_ignores == {"tests/*": ("VPL401",)}
    assert config.metric_name_pattern == "^m_"


def test_config_rejects_unknown_keys_and_bad_types():
    with pytest.raises(LintConfigError):
        config_from_mapping({"no-such-key": True})
    with pytest.raises(LintConfigError):
        config_from_mapping({"select": "VPL1"})
