"""Waveform synthesis: step responses and full-frame rendering."""

import numpy as np
import pytest

from repro.analog.channel import ChannelNoise
from repro.analog.environment import NOMINAL_ENVIRONMENT
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import (
    SynthesisConfig,
    rendered_sample_count,
    step_response,
    synthesize_waveform,
)
from repro.can.frame import CanFrame
from repro.errors import WaveformError

TRX = TransceiverParams(
    name="T",
    v_dominant=2.0,
    v_recessive=0.0,
    rise=EdgeDynamics(2.0e6, 0.7),
    fall=EdgeDynamics(1.1e6, 1.05),
)
CONFIG = SynthesisConfig(bitrate=250_000, sample_rate=10_000_000)


class TestStepResponse:
    def test_starts_at_initial_value(self):
        v = step_response(np.array([0.0]), np.array([0.0]), np.array([2.0]), TRX.rise)
        assert v[0] == pytest.approx(0.0)

    def test_converges_to_target(self):
        t = np.array([5e-6])
        v = step_response(t, np.array([0.0]), np.array([2.0]), TRX.rise)
        assert v[0] == pytest.approx(2.0, abs=1e-3)

    def test_underdamped_overshoots(self):
        t = np.linspace(0, 2e-6, 500)
        v = step_response(t, 0.0, 2.0, EdgeDynamics(2e6, 0.4))
        assert v.max() > 2.05

    def test_overdamped_monotone(self):
        t = np.linspace(0, 5e-6, 500)
        v = step_response(t, 2.0, 0.0, EdgeDynamics(1e6, 1.3))
        assert np.all(np.diff(v) <= 1e-12)
        assert v.max() <= 2.0 + 1e-9

    def test_critically_damped(self):
        t = np.linspace(0, 5e-6, 100)
        v = step_response(t, 0.0, 1.0, EdgeDynamics(1e6, 1.0))
        assert v[0] == pytest.approx(0.0)
        assert v[-1] == pytest.approx(1.0, abs=1e-2)
        assert v.max() <= 1.0 + 1e-9

    def test_rejects_negative_time(self):
        with pytest.raises(WaveformError):
            step_response(np.array([-1e-9]), 0.0, 1.0, TRX.rise)


class TestSynthesisConfig:
    def test_samples_per_bit(self):
        assert CONFIG.samples_per_bit == 40.0

    def test_rejects_undersampling(self):
        with pytest.raises(WaveformError):
            SynthesisConfig(bitrate=250_000, sample_rate=500_000)

    def test_requires_idle_prefix(self):
        with pytest.raises(WaveformError):
            SynthesisConfig(idle_prefix_bits=0)


class TestSynthesize:
    def test_idle_prefix_is_recessive(self):
        volts = synthesize_waveform([0, 1, 0, 1], TRX, CONFIG, phase=0.0)
        # First idle bit is fully recessive (bus idles at v_rec).
        assert np.allclose(volts[:35], 0.0, atol=1e-6)

    def test_sof_reaches_dominant(self):
        volts = synthesize_waveform([0, 1], TRX, CONFIG, phase=0.0)
        sof_center = int(2.5 * 40)  # 2 idle bits, middle of SOF
        assert volts[sof_center] == pytest.approx(2.0, abs=0.05)

    def test_steady_runs_hold_level(self):
        volts = synthesize_waveform([0, 0, 0, 0], TRX, CONFIG, phase=0.0)
        # Middle of the 4th dominant bit: fully settled.
        index = int((2 + 3.5) * 40)
        assert volts[index] == pytest.approx(2.0, abs=1e-3)

    def test_sample_count(self):
        bits = [0, 1, 0, 1, 1]
        volts = synthesize_waveform(bits, TRX, CONFIG, phase=0.0)
        assert volts.size == rendered_sample_count(len(bits), CONFIG)

    def test_phase_shifts_samples(self):
        a = synthesize_waveform([0, 1, 0], TRX, CONFIG, phase=0.0)
        b = synthesize_waveform([0, 1, 0], TRX, CONFIG, phase=0.5)
        assert a.size in (b.size, b.size + 1)
        assert not np.allclose(a[: b.size], b)

    def test_noiseless_is_deterministic(self):
        a = synthesize_waveform([0, 1, 0], TRX, CONFIG, phase=0.25)
        b = synthesize_waveform([0, 1, 0], TRX, CONFIG, phase=0.25)
        assert np.array_equal(a, b)

    def test_noise_requires_rng(self):
        with pytest.raises(WaveformError):
            synthesize_waveform([0, 1], TRX, CONFIG, noise=ChannelNoise(), phase=0.0)

    def test_noise_changes_output(self):
        rng = np.random.default_rng(0)
        clean = synthesize_waveform([0, 1, 0], TRX, CONFIG, phase=0.0)
        noisy = synthesize_waveform(
            [0, 1, 0], TRX, CONFIG, noise=ChannelNoise(), rng=rng, phase=0.0
        )
        assert not np.allclose(clean, noisy)

    def test_truncation(self):
        config = SynthesisConfig(max_frame_bits=10)
        volts = synthesize_waveform([0, 1] * 20, TRX, config, phase=0.0)
        assert volts.size == rendered_sample_count(40, config)

    def test_empty_bits_rejected(self):
        with pytest.raises(WaveformError):
            synthesize_waveform([], TRX, CONFIG)

    def test_invalid_phase_rejected(self):
        with pytest.raises(WaveformError):
            synthesize_waveform([0], TRX, CONFIG, phase=1.5)

    def test_ack_driver_changes_ack_bit_only(self):
        frame = CanFrame(can_id=0x18F00410, data=b"\x01" * 4)
        bits = frame.stuffed_bits()
        ack_index = len(bits) - 9
        stronger = TransceiverParams(
            name="ACK",
            v_dominant=2.4,
            v_recessive=0.0,
            rise=TRX.rise,
            fall=TRX.fall,
        )
        base = synthesize_waveform(bits, TRX, CONFIG, phase=0.0)
        acked = synthesize_waveform(
            bits, TRX, CONFIG, phase=0.0, ack_bit_index=ack_index, ack_driver=stronger
        )
        diff = np.nonzero(~np.isclose(base, acked))[0]
        assert diff.size > 0
        ack_start = (CONFIG.idle_prefix_bits + ack_index) * 40
        # All differences confined to the ACK bit and its settling tail.
        assert diff.min() >= ack_start
        assert diff.max() < ack_start + 2 * 40

    def test_edge_between_bits(self):
        """The transition starts exactly at the bit boundary."""
        volts = synthesize_waveform([0, 1, 0], TRX, CONFIG, phase=0.0)
        boundary = 2 * 40  # idle bits end, SOF begins
        assert volts[boundary - 1] == pytest.approx(0.0, abs=1e-6)
        # A quarter bit later the rise is clearly under way.
        assert volts[boundary + 10] > 0.5
