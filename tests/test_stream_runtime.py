"""The streaming supervisor: verdict parity, workers, checkpoint/resume."""

from __future__ import annotations

import itertools

import pytest

from repro import obs
from repro.acquisition.segmentation import assemble_stream, segment_capture
from repro.core.edge_extraction import extract_many
from repro.core.pipeline import VProfilePipeline
from repro.errors import StreamError
from repro.stream import (
    CHUNKS_METRIC,
    LATENCY_METRIC,
    QUEUE_DEPTH_METRIC,
    OverflowPolicy,
    ReplaySource,
    StreamConfig,
    StreamRuntime,
    load_checkpoint,
)


@pytest.fixture(scope="module")
def stream(stream_test_session):
    return assemble_stream(stream_test_session.traces)


class _TruncatedSource:
    """Stop a replay after ``n`` chunks — a simulated interruption."""

    def __init__(self, inner, n):
        self.inner, self.n = inner, n

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def chunks(self, start_chunk=0):
        return itertools.islice(
            self.inner.chunks(start_chunk), max(0, self.n - start_chunk)
        )


class TestVerdictParity:
    def test_matches_batch_detector(self, stream_pipeline, stream):
        pipeline = stream_pipeline()
        report = pipeline.stream(ReplaySource(stream, 4096))
        traces = segment_capture(stream)
        edge_sets = extract_many(traces, pipeline.extraction, skip_failures=True)
        assert report.messages == len(edge_sets)
        for verdict, edge_set in zip(report.verdicts, edge_sets):
            assert verdict.result == pipeline.detector.classify(edge_set)

    def test_worker_count_is_invisible(self, stream_pipeline, stream):
        reports = [
            stream_pipeline().stream(
                ReplaySource(stream, 4096), StreamConfig(n_workers=n)
            )
            for n in (1, 4)
        ]
        assert reports[0].messages == reports[1].messages > 0
        for one, four in zip(reports[0].verdicts, reports[1].verdicts):
            assert one.seq == four.seq
            assert one.result == four.result

    def test_verdicts_sorted_by_seq(self, stream_pipeline, stream):
        report = stream_pipeline().stream(
            ReplaySource(stream, 4096), StreamConfig(n_workers=4, batch_size=4)
        )
        assert [v.seq for v in report.verdicts] == list(range(report.messages))


class TestHijackInjection:
    def test_injected_attacks_are_flagged(self, stream_pipeline, stream):
        config = StreamConfig(hijack_probability=0.3, hijack_seed=5)
        report = stream_pipeline().stream(ReplaySource(stream, 4096), config)
        assert report.injected_attacks
        assert report.anomalies >= len(report.injected_attacks)
        flagged = {v.seq for v in report.verdicts if v.is_anomaly}
        assert set(report.injected_attacks) <= flagged
        assert report.reasons["cluster-mismatch"] >= len(report.injected_attacks)
        assert len(report.alerts) == report.anomalies

    def test_injection_is_deterministic(self, stream_pipeline, stream):
        config = StreamConfig(hijack_probability=0.3, hijack_seed=5)
        first = stream_pipeline().stream(ReplaySource(stream, 4096), config)
        second = stream_pipeline().stream(ReplaySource(stream, 4096), config)
        assert first.injected_attacks == second.injected_attacks


class TestBackpressure:
    def test_drop_newest_loses_messages(self, stream_pipeline, stream):
        config = StreamConfig(
            n_workers=1,
            queue_capacity=1,
            policy=OverflowPolicy.DROP_NEWEST,
            batch_size=1,
        )
        report = stream_pipeline().stream(ReplaySource(stream, len(stream)), config)
        clean = stream_pipeline().stream(ReplaySource(stream, len(stream)))
        assert report.dropped > 0
        assert report.messages == clean.messages - report.dropped

    def test_block_policy_is_lossless(self, stream_pipeline, stream):
        config = StreamConfig(n_workers=1, queue_capacity=1, batch_size=1)
        report = stream_pipeline().stream(ReplaySource(stream, len(stream)), config)
        assert report.dropped == 0


class TestCheckpointResume:
    def test_resume_reproduces_uninterrupted_run(
        self, stream_pipeline, stream, tmp_path
    ):
        config = dict(n_workers=2, hijack_probability=0.3, hijack_seed=9)
        full = stream_pipeline().stream(
            ReplaySource(stream, 4096), StreamConfig(**config)
        )

        source = ReplaySource(stream, 4096)
        interrupted = StreamRuntime(
            stream_pipeline(),
            StreamConfig(
                checkpoint_dir=tmp_path, checkpoint_every_chunks=50, **config
            ),
        ).run(_TruncatedSource(source, 100))
        assert interrupted.checkpoints >= 2
        assert interrupted.messages < full.messages

        resumed_pipeline = VProfilePipeline(stream_pipeline().config)
        resumed = StreamRuntime(resumed_pipeline, StreamConfig(**config)).run(
            source, resume=tmp_path
        )

        combined = interrupted.verdicts + resumed.verdicts
        assert len(combined) == full.messages
        for got, expected in zip(combined, full.verdicts):
            assert got.seq == expected.seq
            assert got.result == expected.result
        combined_alerts = interrupted.alerts.alerts + resumed.alerts.alerts
        assert [
            (a.timestamp_s, a.can_id, a.reason) for a in combined_alerts
        ] == [(a.timestamp_s, a.can_id, a.reason) for a in full.alerts.alerts]

    def test_checkpoint_roundtrip_fields(self, stream_pipeline, stream, tmp_path):
        pipeline = stream_pipeline()
        pipeline.stream(
            ReplaySource(stream, 4096), StreamConfig(checkpoint_dir=tmp_path)
        )
        checkpoint = load_checkpoint(tmp_path)
        assert checkpoint.next_chunk == ReplaySource(stream, 4096).n_chunks
        assert checkpoint.margin == pipeline.config.margin
        assert checkpoint.extraction == pipeline.extraction

    def test_resume_rejects_non_checkpoint(self, stream_pipeline, stream, tmp_path):
        with pytest.raises(StreamError):
            stream_pipeline().stream(
                ReplaySource(stream, 4096), resume=tmp_path / "missing"
            )


class TestRuntimeContract:
    def test_untrained_pipeline_raises(self, stream):
        with pytest.raises(StreamError):
            VProfilePipeline().stream(ReplaySource(stream, 4096))

    def test_online_updates_fold_into_shared_stats(self, stream_pipeline, stream):
        pipeline = stream_pipeline(online_update=True)
        report = pipeline.stream(ReplaySource(stream, 4096))
        assert report.updated > 0
        assert pipeline.stats.updated == report.updated
        assert pipeline.stats.processed == report.messages

    def test_exports_obs_metrics(self, stream_pipeline, stream):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            stream_pipeline().stream(ReplaySource(stream, 4096))
        finally:
            obs.set_registry(previous)
        assert registry.get(CHUNKS_METRIC).value > 0
        assert registry.get(QUEUE_DEPTH_METRIC, shard="0") is not None
        latency = registry.get(LATENCY_METRIC)
        assert latency is not None and latency.count > 0
        assert registry.get("vprofile_messages_total").value > 0
