"""Fault confinement rules and the bus-off attack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attacks.bus_off import (
    minimum_messages_to_bus_off,
    simulate_bus_off_attack,
    victim_timeline_with_bus_off,
)
from repro.can.faults import (
    BUS_OFF_LIMIT,
    ERROR_PASSIVE_LIMIT,
    ErrorState,
    FaultConfinement,
)
from repro.errors import CanError


class TestCounters:
    def test_starts_error_active(self):
        assert FaultConfinement().state is ErrorState.ERROR_ACTIVE

    def test_tx_error_adds_eight(self):
        node = FaultConfinement()
        node.on_tx_error()
        assert node.tec == 8

    def test_tx_success_subtracts_one(self):
        node = FaultConfinement(tec=10)
        node.on_tx_success()
        assert node.tec == 9

    def test_counters_never_negative(self):
        node = FaultConfinement()
        node.on_tx_success()
        node.on_rx_success()
        assert node.tec == 0 and node.rec == 0

    def test_rx_error_penalties(self):
        node = FaultConfinement()
        node.on_rx_error()
        assert node.rec == 1
        node.on_rx_error(primary=True)
        assert node.rec == 9

    def test_error_passive_thresholds(self):
        assert FaultConfinement(tec=ERROR_PASSIVE_LIMIT).state is ErrorState.ERROR_ACTIVE
        assert FaultConfinement(tec=ERROR_PASSIVE_LIMIT + 1).state is ErrorState.ERROR_PASSIVE
        assert FaultConfinement(rec=ERROR_PASSIVE_LIMIT + 1).state is ErrorState.ERROR_PASSIVE

    def test_bus_off_threshold(self):
        assert FaultConfinement(tec=BUS_OFF_LIMIT).state is ErrorState.ERROR_PASSIVE
        assert FaultConfinement(tec=BUS_OFF_LIMIT + 1).state is ErrorState.BUS_OFF

    def test_bus_off_node_cannot_transmit(self):
        node = FaultConfinement(tec=BUS_OFF_LIMIT + 1)
        with pytest.raises(CanError):
            node.on_tx_success()
        with pytest.raises(CanError):
            node.on_tx_error()

    @given(st.lists(st.sampled_from(["te", "ts", "re", "rs"]), max_size=60))
    def test_state_always_consistent_with_counters(self, events):
        node = FaultConfinement()
        for event in events:
            if node.is_bus_off:
                break
            if event == "te":
                node.on_tx_error()
            elif event == "ts":
                node.on_tx_success()
            elif event == "re":
                node.on_rx_error()
            else:
                node.on_rx_success()
        assert node.tec >= 0 and node.rec >= 0
        if node.tec > BUS_OFF_LIMIT:
            assert node.state is ErrorState.BUS_OFF
        elif node.tec > ERROR_PASSIVE_LIMIT or node.rec > ERROR_PASSIVE_LIMIT:
            assert node.state is ErrorState.ERROR_PASSIVE
        else:
            assert node.state is ErrorState.ERROR_ACTIVE


class TestRecovery:
    def test_recovery_requires_128_sequences(self):
        node = FaultConfinement(tec=BUS_OFF_LIMIT + 1)
        assert not node.observe_recessive_bits(127 * 11)
        assert node.observe_recessive_bits(11)
        assert node.state is ErrorState.ERROR_ACTIVE
        assert node.tec == 0

    def test_partial_sequences_do_not_count(self):
        node = FaultConfinement(tec=BUS_OFF_LIMIT + 1)
        assert not node.observe_recessive_bits(10)  # less than one sequence
        assert node.recovery_progress == 0

    def test_recovery_time(self):
        node = FaultConfinement(tec=BUS_OFF_LIMIT + 1)
        assert node.recovery_time_s(250_000.0) == pytest.approx(128 * 11 / 250_000.0)

    def test_active_node_cannot_recover(self):
        with pytest.raises(CanError):
            FaultConfinement().observe_recessive_bits(11)


class TestBusOffAttack:
    def test_classic_attack_takes_32_messages(self):
        result = simulate_bus_off_attack(attack_every=1)
        assert result.messages_to_bus_off == 32
        assert result.messages_to_bus_off == minimum_messages_to_bus_off()

    def test_tec_trajectory_monotone_under_full_attack(self):
        result = simulate_bus_off_attack(attack_every=1)
        diffs = [
            b - a
            for a, b in zip(result.tec_trajectory, result.tec_trajectory[1:])
        ]
        assert all(d == 8 for d in diffs)

    def test_error_passive_before_bus_off(self):
        result = simulate_bus_off_attack(attack_every=1)
        assert result.reached_error_passive_at is not None
        assert result.reached_error_passive_at < result.messages_to_bus_off

    def test_sparse_attack_never_succeeds(self):
        """Destroying every 9th frame loses to the -1/frame decay."""
        result = simulate_bus_off_attack(attack_every=9, max_attempts=20_000)
        assert result.messages_to_bus_off is None

    def test_time_estimate(self):
        result = simulate_bus_off_attack(attack_every=1, victim_period_s=0.02)
        assert result.time_to_bus_off_s == pytest.approx(32 * 0.02)

    def test_invalid_intensity(self):
        with pytest.raises(CanError):
            simulate_bus_off_attack(attack_every=0)


class TestVictimTimeline:
    def test_silence_window(self):
        times = victim_timeline_with_bus_off(
            period_s=0.02, horizon_s=2.0, bus_off_at_s=1.0, recovery=True
        )
        recovery_delay = 128 * 11 / 250_000.0
        in_window = [
            t for t in times if 1.0 <= t < 1.0 + recovery_delay
        ]
        assert not in_window
        assert any(t >= 1.0 + recovery_delay for t in times)

    def test_no_recovery_means_permanent_silence(self):
        times = victim_timeline_with_bus_off(
            period_s=0.02, horizon_s=2.0, bus_off_at_s=1.0, recovery=False
        )
        assert max(times) < 1.0

    def test_period_monitor_flags_the_silence(self):
        """Integration with repro.ids: the gap alert fires on bus-off."""
        from repro.ids.timing import PeriodMonitor

        clean = victim_timeline_with_bus_off(
            period_s=0.02, horizon_s=0.9, bus_off_at_s=10.0
        )
        monitor = PeriodMonitor().fit([(t, 0x100) for t in clean])
        # At 250 kb/s recovery only takes ~5.6 ms (shorter than one
        # period); a repeatedly-attacked victim on a slow bus shows the
        # multi-period silence the gap rule looks for.
        attacked = victim_timeline_with_bus_off(
            period_s=0.02,
            horizon_s=3.0,
            bus_off_at_s=1.0,
            recovery=True,
            bitrate=5_000.0,
        )
        alerts = [
            monitor.observe(t, 0x100)
            for t in attacked
            if t >= 0.9
        ]
        reasons = [a.reason for a in alerts if a is not None]
        assert "gap" in reasons

    def test_validation(self):
        with pytest.raises(CanError):
            victim_timeline_with_bus_off(period_s=0, horizon_s=1, bus_off_at_s=0.5)
