"""Build a synthetic twin of an unknown bus from one capture.

The library's inverse tools reconstruct a complete vehicle model from a
single recorded session — without ground-truth labels:

1. voltage clustering groups the observed source addresses into ECUs;
2. per-ECU transceiver fingerprints are fitted from plateau levels and
   edge-response least squares;
3. message schedules are inferred from arrival times;
4. channel noise is estimated from plateau statistics.

The twin then feeds back into the simulator: models trained on the twin
transfer to the original capture — the workflow a lab would use to keep
experimenting after giving a test vehicle back.
"""

import numpy as np

from repro.core import (
    Detector,
    ExtractionConfig,
    Metric,
    TrainingData,
    extract_many,
    train_model,
)
from repro.vehicles import capture_session, sterling_acterra
from repro.vehicles.builder import infer_vehicle


def main() -> None:
    original = sterling_acterra()
    print(f"Recording 8 s from the 'unknown' bus ({original.name})...")
    session = capture_session(original, duration_s=8.0, seed=42)

    print("Inferring a synthetic twin (no ground-truth labels used)...")
    twin = infer_vehicle(session.traces, name="Twin")
    print(f"  {len(twin.ecus)} ECUs recovered:")
    for truth, estimate in zip(original.ecus, twin.ecus):
        t, e = truth.transceiver, estimate.transceiver
        print(f"  {estimate.name}: dominant {e.v_dominant:.3f} V "
              f"(truth {t.v_dominant:.3f}), rise "
              f"{e.rise.natural_freq_hz / 1e6:.2f} MHz "
              f"(truth {t.rise.natural_freq_hz / 1e6:.2f}), "
              f"SAs {[hex(s) for s in estimate.source_addresses]}")

    print("\nCapturing fresh traffic from the twin and training on it...")
    twin_session = capture_session(twin, duration_s=6.0, seed=43)
    config = ExtractionConfig.for_trace(twin_session.traces[0])
    model = train_model(
        TrainingData.from_edge_sets(extract_many(twin_session.traces, config)),
        metric=Metric.MAHALANOBIS,
        sa_clusters=twin.sa_clusters,
    )

    print("Classifying the ORIGINAL capture with the twin-trained model...")
    real_sets = extract_many(session.traces, config)
    vectors = np.stack([e.vector for e in real_sets])
    sas = np.array([e.source_address for e in real_sets])
    batch = Detector(model).classify_batch(vectors, sas)
    transfer = (batch.expected_cluster == batch.predicted_cluster).mean()
    print(f"  cluster predictions transfer for {transfer:.2%} of "
          f"{len(real_sets)} real messages")


if __name__ == "__main__":
    main()
