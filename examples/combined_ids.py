"""Deploying vProfile inside a full IDS (paper Section 6.1).

vProfile authenticates *who* sent a message, but a hijacked ECU sending
forged content under its own SA is invisible to it.  The paper therefore
recommends pairing it with detectors over message period and payload.
This example trains the combined IDS on clean Vehicle A traffic and
throws three different attacks at it, showing which channel catches
what:

1. a hijack (ECU2 transmitting under ECU3's SA)  -> voltage channel;
2. a message flood at 100x the learned rate       -> period channel;
3. forged payload bytes under the ECU's own SA    -> payload channel.
"""

import numpy as np

from repro.can.frame import CanFrame
from repro.core import PipelineConfig, VProfilePipeline
from repro.ids import CombinedIds, ObservedMessage
from repro.vehicles import capture_session, vehicle_a


def main() -> None:
    vehicle = vehicle_a()
    print("Capturing 10 s of clean traffic and training the combined IDS...")
    session = capture_session(vehicle, duration_s=10.0, seed=21)
    train, test = session.split_time(0.5)
    ids = CombinedIds(
        VProfilePipeline(PipelineConfig(margin=8.0, sa_clusters=vehicle.sa_clusters))
    )
    ids.fit([ObservedMessage.from_trace(t) for t in train])
    print(f"  trained on {len(train)} messages "
          f"({len(ids.period_monitor.monitored_ids)} monitored identifiers)")

    print("\nReplaying the clean second half...")
    verdicts = [ids.process(ObservedMessage.from_trace(t)) for t in test]
    rate = np.mean([v.is_anomaly for v in verdicts])
    print(f"  clean anomaly rate: {rate:.4f}")

    rng = np.random.default_rng(21)
    chain = vehicle.capture_chain()
    now = test[-1].start_s + 1.0

    print("\nAttack 1: hijacked ECU2 transmits under ECU3's SA...")
    template = next(t for t in test if t.metadata["sender"] == "ECU2")
    forged_id = (template.metadata["frame"].can_id & ~0xFF) | 0x17
    forged_frame = CanFrame(can_id=forged_id, data=template.metadata["frame"].data)
    trace = chain.capture_frame(
        forged_frame, vehicle.transceiver_of("ECU2"), rng=rng, start_s=now
    )
    verdict = ids.process(ObservedMessage(now, forged_frame, trace))
    print(f"  detected by: {[a.detector for a in verdict.alerts]}")

    print("\nAttack 2: flooding EEC1 at 100x its rate (no analog tap needed)...")
    flood_frame = next(
        t for t in test if t.metadata["frame"].can_id & 0xFF == 0x00
    ).metadata["frame"]
    detectors = set()
    for k in range(8):
        verdict = ids.process(
            ObservedMessage(now + 2.0 + k * 2e-4, flood_frame, trace=None)
        )
        detectors.update(a.detector for a in verdict.alerts)
    print(f"  detected by: {sorted(detectors)}")

    print("\nAttack 3: hijacked ECU0 forges payload content under its own SA...")
    original = flood_frame
    forged_payload = CanFrame(
        can_id=original.can_id, data=b"\xff" * len(original.data)
    )
    verdict = ids.process(
        ObservedMessage(now + 10.0, forged_payload, trace=None)
    )
    print(f"  detected by: {[a.detector for a in verdict.alerts]}")
    print("  (vProfile alone cannot see this one — the sender is genuine)")

    print(f"\nAlert log: {ids.log.summary()}")


if __name__ == "__main__":
    main()
