"""Online model adaptation under temperature drift (Section 5.3).

A model trained on a cold morning slowly degrades as the engine bay
warms up.  This example runs two detectors side by side over the same
warming traffic — one static, one feeding its verified-legitimate
messages back through Algorithm 4 — and prints their false-positive
rates per temperature step, plus the retrain-bound bookkeeping.
"""

import numpy as np

from repro.analog import Environment
from repro.core import (
    Detector,
    ExtractionConfig,
    Metric,
    OnlineUpdater,
    TrainingData,
    extract_many,
    train_model,
)
from repro.vehicles import capture_session, vehicle_a


def capture_sets(vehicle, temp_c, seed, extraction, duration_s=2.5):
    session = capture_session(
        vehicle, duration_s, env=Environment(temperature_c=temp_c), seed=seed
    )
    return extract_many(session.traces, extraction)


def false_positive_rate(model, margin, edge_sets):
    vectors = np.stack([e.vector for e in edge_sets])
    sas = np.array([e.source_address for e in edge_sets])
    batch = Detector(model).classify_batch(vectors, sas)
    return float(batch.anomalies(margin).mean())


def main() -> None:
    vehicle = vehicle_a()
    probe = capture_session(vehicle, 0.2, seed=0)
    extraction = ExtractionConfig.for_trace(probe.traces[0])

    print("Training both models at 0 degC...")
    train_sets = capture_sets(vehicle, 0.0, seed=10, extraction=extraction,
                              duration_s=5.0)
    static = train_model(
        TrainingData.from_edge_sets(train_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=vehicle.sa_clusters,
    )
    adaptive = train_model(
        TrainingData.from_edge_sets(train_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=vehicle.sa_clusters,
    )
    calib = capture_sets(vehicle, 0.5, seed=11, extraction=extraction)
    vectors = np.stack([e.vector for e in calib])
    sas = np.array([e.source_address for e in calib])
    margin = float(Detector(static).classify_batch(vectors, sas).slack.max()) + 1e-6
    print(f"Calibrated margin: {margin:.3f}")

    updater = OnlineUpdater(adaptive, retrain_bound=50_000)
    print(f"\n{'temp':>6} | {'static FP rate':>14} | {'adaptive FP rate':>16}")
    for step, temp in enumerate(np.arange(5.0, 45.0, 5.0)):
        drifted = capture_sets(vehicle, float(temp), seed=20 + step,
                               extraction=extraction)
        static_fp = false_positive_rate(static, margin, drifted)
        adaptive_fp = false_positive_rate(adaptive, margin, drifted)
        print(f"{temp:>5.0f}C | {static_fp:>14.4f} | {adaptive_fp:>16.4f}")
        report = updater.update(drifted)  # verified-legitimate feedback
        if report.saturated:
            print(f"        retrain bound hit for {report.saturated}; "
                  "schedule a full retrain")

    counts = {c.name: c.count for c in adaptive.clusters}
    print(f"\nAdaptive model absorbed the drift; per-cluster edge-set "
          f"counts are now {counts}")


if __name__ == "__main__":
    main()
