"""Online streaming detection, interrupted and resumed mid-stream.

A deployed voltage IDS never sees a whole capture: the digitizer hands
over fixed-size sample chunks and the detector has to keep up, survive
restarts, and keep its alert sequence consistent across them.  This
example:

1. trains a pipeline on a clean capture of the two-ECU Sterling twin;
2. streams fresh traffic through the sharded runtime with in-flight
   hijack injection, printing the alerts as they come out;
3. kills the run partway through, then resumes from the checkpoint and
   shows the combined run reproduces the uninterrupted one exactly.
"""

import itertools
import tempfile
from dataclasses import replace

from repro.core import PipelineConfig, VProfilePipeline
from repro.stream import ReplaySource, StreamConfig, StreamRuntime
from repro.vehicles import capture_session, sterling_acterra
from repro.acquisition import assemble_stream


class InterruptedSource:
    """Wrap a source but stop after ``n`` chunks — a simulated crash."""

    def __init__(self, inner, n):
        self.inner, self.n = inner, n

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def chunks(self, start_chunk=0):
        return itertools.islice(
            self.inner.chunks(start_chunk), max(0, self.n - start_chunk)
        )


def main() -> None:
    # Reduced sample rate keeps the example quick; the runtime is
    # rate-agnostic.
    vehicle = replace(sterling_acterra(), sample_rate=2_000_000.0)

    print(f"Training on 4 s of clean {vehicle.name} traffic...")
    pipeline = VProfilePipeline(
        PipelineConfig(margin=5.0, sa_clusters=vehicle.sa_clusters)
    )
    pipeline.train(capture_session(vehicle, 4.0, seed=1).traces)

    stream = assemble_stream(capture_session(vehicle, 2.0, seed=2).traces)
    source = ReplaySource(stream, chunk_samples=4096)
    attack = dict(hijack_probability=0.25, hijack_seed=7)

    print(f"\nStreaming {source.n_chunks} chunks with SA-hijack injection...")
    full = pipeline.stream(source, StreamConfig(n_workers=2, **attack))
    for alert in full.alerts.alerts[:5]:
        print(f"  ALERT t={alert.timestamp_s:.4f}s SA 0x{alert.can_id:02X} "
              f"{alert.reason}")
    print(f"  ... {len(full.alerts)} alerts total, "
          f"{full.messages} messages at {full.frames_per_s:.0f} frames/s")

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        cut = source.n_chunks // 2
        print(f"\nRe-running, 'crashing' after chunk {cut}, checkpointing "
              f"every 50 chunks...")
        part = StreamRuntime(
            _fresh(pipeline), StreamConfig(
                n_workers=2, checkpoint_dir=checkpoint_dir,
                checkpoint_every_chunks=50, **attack,
            )
        ).run(InterruptedSource(source, cut))
        print(f"  interrupted after {part.messages} messages "
              f"({part.checkpoints} checkpoints)")

        rest = StreamRuntime(
            _fresh(pipeline), StreamConfig(n_workers=2, **attack)
        ).run(source, resume=checkpoint_dir)
        print(f"  resumed: {rest.messages} more messages")

    combined = part.verdicts + rest.verdicts
    identical = len(combined) == full.messages and all(
        a.seq == b.seq and a.result == b.result
        for a, b in zip(combined, full.verdicts)
    )
    print(f"\ninterrupted+resumed == uninterrupted: {identical}")
    assert identical


def _fresh(trained: VProfilePipeline) -> VProfilePipeline:
    """An untrained pipeline with the same config (the resume target)."""
    pipeline = VProfilePipeline(trained.config)
    if trained.model is not None:
        pipeline.load_model(trained.model, trained.extraction)
    return pipeline


if __name__ == "__main__":
    main()
