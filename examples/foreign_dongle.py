"""Foreign-device scenario: an attacker plugs a dongle into the OBD port.

Goes beyond the paper's replay methodology: a synthetic attack device
with its own (never-trained) transceiver crafts J1939 frames claiming
the engine controller's source address and transmits them through the
full analog path.  The example contrasts the Euclidean and Mahalanobis
metrics on the same injections — the paper's Table 4.1c vs 4.3c story.
"""

import numpy as np

from repro.analog import EdgeDynamics, TransceiverParams
from repro.attacks import ForeignDongle
from repro.core import (
    Detector,
    ExtractionConfig,
    Metric,
    TrainingData,
    extract_many,
    train_model,
)
from repro.vehicles import capture_session, vehicle_a


def main() -> None:
    vehicle = vehicle_a()
    print("Capturing 8 s of clean Vehicle A traffic for training...")
    session = capture_session(vehicle, duration_s=8.0, seed=3)
    extraction = ExtractionConfig.for_trace(session.traces[0])
    train_sets = extract_many(session.traces, extraction)

    # The dongle imitates ECU4's electrical fingerprint imperfectly: its
    # dominant level is 5 mV off and its edge dynamics slightly faster.
    # Claiming the SA of the ECU it most resembles is the attacker's best
    # move: the nearest-cluster check then agrees with the claimed SA and
    # only the distance threshold stands in the way.
    victim_sa = 0x21  # ECU4, the body controller
    dongle = ForeignDongle(
        transceiver=TransceiverParams(
            name="obd-dongle",
            v_dominant=2.065,
            v_recessive=0.007,
            rise=EdgeDynamics(2.15e6, 0.76),
            fall=EdgeDynamics(1.18e6, 1.03),
        ),
        victim_sa=victim_sa,
    )
    rng = np.random.default_rng(3)
    injected = dongle.inject(vehicle.capture_chain(), count=300, rng=rng)
    injected_sets = extract_many(injected, extraction)
    print(f"Dongle injected {len(injected_sets)} forged frames claiming "
          f"SA 0x{victim_sa:02X}")

    for metric in (Metric.EUCLIDEAN, Metric.MAHALANOBIS):
        model = train_model(
            TrainingData.from_edge_sets(train_sets),
            metric=metric,
            sa_clusters=vehicle.sa_clusters,
        )
        detector = Detector(model, margin=0.1 * model.max_distances.mean())
        vectors = np.stack([e.vector for e in injected_sets])
        sas = np.array([e.source_address for e in injected_sets])
        flags = detector.classify_batch(vectors, sas).anomalies()
        print(f"\n{metric.value:>12}: detected {int(flags.sum())}/{len(flags)} "
              f"forged frames ({flags.mean():.1%})")
        if flags.mean() < 0.5:
            print("             -> the dongle slips under the jitter-inflated "
                  "Euclidean thresholds")
        else:
            print("             -> the covariance-aware metric sees the "
                  "fingerprint mismatch")


if __name__ == "__main__":
    main()
