"""A five-vehicle fleet served by one detection gateway.

vProfile profiles are per-vehicle, but a monitoring deployment watches a
*fleet*: many vehicles streaming digitizer chunks to one service, each
against its own profile store.  This example starts the asyncio gateway
in-process, registers five simulated Sterling twins (one shared model —
the fleet benchmark convention), streams each vehicle's own traffic
through a mix of WebSocket and REST connections, and prints:

1. the per-vehicle verdict counters and health states;
2. the aggregate /fleet summary (throughput, verdict latency);
3. the eviction/rehydration round-trip: with a residency budget of 2,
   five vehicles force the supervisor to spill idle tenants to
   checkpoints — invisibly, as the verdict counts show.
"""

import tempfile

from repro.fleet import (
    GatewayConfig,
    GatewayThread,
    LoadgenConfig,
    format_report,
    run_loadgen,
)
from repro.obs.registry import MetricsRegistry

N_VEHICLES = 5


def main() -> None:
    config = LoadgenConfig(
        tenants=N_VEHICLES,
        duration_s=0.1,
        chunk_samples=16384,
        seed=11,
        train_duration_s=3.0,
        ws_fraction=0.6,        # 3 vehicles on WebSocket, 2 on REST
        check_rehydration=True,
    )
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="fleet-example-") as state_dir:
        gateway_config = GatewayConfig(state_dir=state_dir, max_resident=2)
        print(f"Starting gateway (residency budget: "
              f"{gateway_config.max_resident} of {N_VEHICLES} vehicles)...")
        with GatewayThread(gateway_config, registry) as server:
            print(f"  listening on {server.url}\n")
            print(f"Streaming {N_VEHICLES} vehicles "
                  f"({config.duration_s:g}s of bus time each)...\n")
            report = run_loadgen(server.host, server.port, config)

            print(format_report(report))
            stats = server.gateway.supervisor.stats()
            print(f"residency:   {stats['resident']}/{stats['tenants']} "
                  f"resident, {stats['evictions']} evictions, "
                  f"{stats['rehydrations']} rehydrations")
            identical = report["rehydration"]["identical"]
            print(f"evict/rehydrate byte-identical: {identical}")


if __name__ == "__main__":
    main()
