"""Baseline shoot-out: vProfile vs the related-work voltage IDSs.

Runs the same Vehicle A capture through every identifier in
:mod:`repro.baselines` (Murvay & Groza, Viden, Scission, SIMPLE) plus
vProfile, and reports sender-identification accuracy and per-message
prediction latency — the trade-offs the paper's related-work section
argues about.
"""

import time

import numpy as np

from repro.baselines import (
    MurvayGrozaIdentifier,
    ScissionIdentifier,
    SimpleAuthenticator,
    VidenIdentifier,
    VoltageIdsIdentifier,
)
from repro.core import (
    Detector,
    ExtractionConfig,
    Metric,
    TrainingData,
    extract_edge_set,
    extract_many,
    train_model,
)
from repro.vehicles import capture_session, vehicle_a


def main() -> None:
    vehicle = vehicle_a()
    print("Capturing 10 s of Vehicle A traffic...")
    session = capture_session(vehicle, duration_s=10.0, seed=5)
    train, test = session.split(0.5, seed=5)
    train, test = train[:1500], test[:500]
    y_train = [t.metadata["sender"] for t in train]
    y_test = [t.metadata["sender"] for t in test]
    config = ExtractionConfig.for_trace(train[0])

    # vProfile wrapped as an identifier.
    edge_sets = extract_many(train, config)
    model = train_model(
        TrainingData.from_edge_sets(edge_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=vehicle.sa_clusters,
    )
    detector = Detector(model, margin=5.0)

    def vprofile_predict(trace):
        result = detector.classify(extract_edge_set(trace, config))
        return model.clusters[result.predicted_cluster].name

    contenders = {
        "murvay-mse": MurvayGrozaIdentifier("mse", prefix_samples=1500)
        .fit(train, y_train).predict_one,
        "murvay-conv": MurvayGrozaIdentifier("convolution", prefix_samples=1500)
        .fit(train, y_train).predict_one,
        "viden": VidenIdentifier(config.threshold).fit(train, y_train).predict_one,
        "scission": ScissionIdentifier(config.threshold, epochs=150)
        .fit(train, y_train).predict_one,
        "simple": SimpleAuthenticator(config.threshold)
        .fit(train, y_train).predict_one,
        "voltageids": VoltageIdsIdentifier(config.threshold, epochs=12)
        .fit(train, y_train).predict_one,
        "vprofile": vprofile_predict,
    }

    print(f"\n{'method':>12} | {'accuracy':>8} | {'us/message':>10}")
    print("-" * 38)
    for name, predict in contenders.items():
        start = time.perf_counter()
        predictions = [predict(trace) for trace in test]
        elapsed_us = (time.perf_counter() - start) / len(test) * 1e6
        accuracy = float(np.mean([p == t for p, t in zip(predictions, y_test)]))
        print(f"{name:>12} | {accuracy:>8.4f} | {elapsed_us:>10.1f}")

    print("\nvProfile matches the strongest baselines while reading only a "
          "32-64 sample edge set per message.")


if __name__ == "__main__":
    main()
