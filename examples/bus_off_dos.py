"""The bus-off denial-of-service attack, and who notices it.

One of the attack classes the paper's introduction cites (fault
induction, [6]): an adversary that forces bit errors on a victim's
frames walks its transmit error counter to 256 in exactly 32 messages —
the victim then disconnects itself, per the CAN fault-confinement rules.
vProfile cannot see this attack (no forged frames appear); the *period
monitor* of the combined IDS does, because the victim's cadence dies.
"""

from repro.attacks import (
    minimum_messages_to_bus_off,
    simulate_bus_off_attack,
    victim_timeline_with_bus_off,
)
from repro.ids import PeriodMonitor


def main() -> None:
    print("Simulating the classic bus-off attack (every frame destroyed)...")
    result = simulate_bus_off_attack(attack_every=1, victim_period_s=0.02)
    print(f"  victim reaches error-passive after "
          f"{result.reached_error_passive_at} frames")
    print(f"  victim is BUS-OFF after {result.messages_to_bus_off} frames "
          f"({result.time_to_bus_off_s * 1e3:.0f} ms at a 20 ms period)")
    print(f"  textbook minimum: {minimum_messages_to_bus_off()} frames")
    print(f"  TEC trajectory: {result.tec_trajectory[:8]} ... "
          f"{result.tec_trajectory[-3:]}")

    print("\nA sparser attacker (every 9th frame) never wins:")
    sparse = simulate_bus_off_attack(attack_every=9, max_attempts=20_000)
    print(f"  bus-off reached: {sparse.messages_to_bus_off}")
    print("  (the victim's TEC decays -1 per successful frame, so +8/9 "
          "frames loses to -8/9 frames of decay)")

    print("\nDetection: the period monitor sees the victim go silent.")
    clean = victim_timeline_with_bus_off(
        period_s=0.02, horizon_s=2.0, bus_off_at_s=100.0
    )
    monitor = PeriodMonitor().fit([(t, 0x0CF00400) for t in clean])
    attacked = victim_timeline_with_bus_off(
        period_s=0.02, horizon_s=6.0, bus_off_at_s=3.0,
        recovery=True, bitrate=5_000.0,
    )
    alerts = [
        alert
        for t in attacked
        if t >= 2.0 and (alert := monitor.observe(t, 0x0CF00400)) is not None
    ]
    for alert in alerts:
        print(f"  ALERT at t={alert.timestamp_s:.2f}s: {alert.reason} "
              f"({alert.detail})")
    if not alerts:
        print("  no alerts (unexpected)")


if __name__ == "__main__":
    main()
