"""Quickstart: train vProfile on a synthetic truck and catch an imposter.

Runs the whole stack end to end in under a minute:

1. simulate a few seconds of J1939 traffic on the synthetic "Vehicle A"
   (five ECUs on a 250 kb/s bus, digitized at 20 MS/s / 16 bit);
2. train a Mahalanobis vProfile model from half the capture;
3. replay the other half and verify every message;
4. forge a message — ECU1's analog waveform claiming ECU0's source
   address — and watch the detector flag it and name the true origin.
"""

from repro.core import Detector, PipelineConfig, VProfilePipeline
from repro.core.edge_extraction import extract_edge_set
from repro.vehicles import capture_session, vehicle_a


def main() -> None:
    vehicle = vehicle_a()
    print(f"Capturing 10 s of traffic from {vehicle.name} "
          f"({len(vehicle.ecus)} ECUs, {vehicle.bitrate / 1e3:.0f} kb/s bus)...")
    session = capture_session(vehicle, duration_s=10.0, seed=1)
    train, test = session.split(train_fraction=0.5, seed=1)
    print(f"  {len(train)} training messages, {len(test)} test messages")

    pipeline = VProfilePipeline(
        PipelineConfig(margin=8.0, sa_clusters=vehicle.sa_clusters)
    )
    model = pipeline.train(train)
    print(f"Trained {model.metric.value} model with {model.n_clusters} clusters:")
    for cluster in model.clusters:
        sas = [f"0x{sa:02X}" for sa, c in model.sa_to_cluster.items()
               if model.clusters[c] is cluster]
        print(f"  {cluster.name}: {cluster.count} edge sets, "
              f"threshold {cluster.max_distance:.2f}, SAs {', '.join(sas)}")

    print("\nReplaying the clean test capture...")
    anomalies = sum(pipeline.process(trace).is_anomaly for trace in test)
    print(f"  {anomalies} alarms on {len(test)} legitimate messages "
          f"(false-positive rate {anomalies / len(test):.5f})")

    print("\nForging a message: ECU1's waveform claiming ECU0's SA (0x00)...")
    ecu1_trace = next(t for t in test if t.metadata["sender"] == "ECU1")
    edge_set = extract_edge_set(ecu1_trace, pipeline.extraction)
    detector = Detector(model, margin=8.0)
    detector_result = detector.classify(edge_set, sa=0x00)
    print(f"  verdict: {detector_result.verdict.value.upper()}"
          f" (reason: {detector_result.reason.value})")
    print(f"  attack origin identified as: "
          f"{detector_result.origin_name(model)}")


if __name__ == "__main__":
    main()
