"""Hijack-intruder scenario: every ECU imitates every other ECU.

Reproduces the paper's hijack imitation test (Section 4.1) as a worked
example: 20 % of the replayed messages have their source address
rewritten to another cluster's SA, the detector flags them, and the
predicted cluster names the compromised ECU.  Also prints the per-origin
attribution table — the capability Viden needs a whole subsystem for.
"""

from collections import Counter

import numpy as np

from repro.attacks import apply_hijack
from repro.core import Detector, ExtractionConfig, Metric, TrainingData, extract_many, train_model
from repro.eval import ConfusionMatrix, tune_margin
from repro.vehicles import capture_session, vehicle_a


def main() -> None:
    vehicle = vehicle_a()
    print("Capturing 8 s of Vehicle A traffic...")
    session = capture_session(vehicle, duration_s=8.0, seed=7)
    train_traces, test_traces = session.split(0.5, seed=7)

    extraction = ExtractionConfig.for_trace(session.traces[0])
    train_sets = extract_many(train_traces, extraction)
    test_sets = extract_many(test_traces, extraction)

    model = train_model(
        TrainingData.from_edge_sets(train_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=vehicle.sa_clusters,
    )
    print(f"Model: {model.n_clusters} clusters from {len(train_sets)} messages")

    rng = np.random.default_rng(7)
    labelled = apply_hijack(test_sets, vehicle.sa_clusters, probability=0.2, rng=rng)
    n_attacks = sum(l.is_attack for l in labelled)
    print(f"Replaying {len(labelled)} messages, {n_attacks} hijacked (20 %)...")

    detector = Detector(model)
    vectors = np.stack([l.edge_set.vector for l in labelled])
    sas = np.array([l.edge_set.source_address for l in labelled])
    actual = np.array([l.is_attack for l in labelled])
    batch = detector.classify_batch(vectors, sas)
    margin = tune_margin(batch, actual, "f-score")
    flags = batch.anomalies(margin.margin)
    confusion = ConfusionMatrix.from_predictions(actual, flags)

    print(f"\nConfusion matrix (margin {margin.margin:.3g}):")
    print(confusion.as_table())
    print(f"precision = {confusion.precision:.5f}")
    print(f"recall    = {confusion.recall:.5f}")
    print(f"F-score   = {confusion.f_score:.5f}")

    # Attack-origin attribution: the predicted cluster of each true
    # positive names the ECU whose transceiver sent the forged frame.
    attribution = Counter()
    correct = 0
    for item, predicted, flagged in zip(labelled, batch.predicted_cluster, flags):
        if item.is_attack and flagged:
            origin = model.clusters[predicted].name
            attribution[origin] += 1
            if origin == item.true_sender:
                correct += 1
    print("\nAttack-origin attribution of detected hijacks:")
    for origin, count in sorted(attribution.items()):
        print(f"  {origin}: {count} forged messages")
    detected = sum(attribution.values())
    print(f"origin named correctly for {correct}/{detected} detections "
          f"({correct / max(detected, 1):.2%})")


if __name__ == "__main__":
    main()
