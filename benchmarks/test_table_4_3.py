"""Table 4.3: Vehicle A confusion matrices with Mahalanobis distance.

The paper's headline: near-perfect scores on all three experiments.
Benchmarks the Mahalanobis batch-classification kernel.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.detection import Detector
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.eval.reporting import format_suite
from repro.eval.suite import run_detection_suite


def test_table_4_3(benchmark, inputs_a, veh_a):
    result = run_detection_suite(inputs_a, Metric.MAHALANOBIS, seed=11)
    report("table_4_3", format_suite(result))

    assert result.false_positive.accuracy >= 0.999
    assert result.hijack.f_score >= 0.999
    assert result.foreign.f_score >= 0.99

    model = train_model(
        TrainingData.from_edge_sets(inputs_a.train),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_a.sa_clusters,
    )
    detector = Detector(model, margin=result.false_positive.margin)
    vectors = np.stack([e.vector for e in inputs_a.test])
    sas = np.array([e.source_address for e in inputs_a.test])
    benchmark(detector.classify_batch, vectors, sas)
