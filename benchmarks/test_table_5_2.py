"""Table 5.2: one vs three extracted edge sets (Section 5.2).

Averaging three edge sets 25 us apart lowers every cluster's per-sample
standard deviation and (measured in the single-edge metric) its maximum
distance — the paper's latency-for-stability trade.  Benchmarks triple
edge-set extraction against single extraction cost.
"""

from benchmarks.conftest import report
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set
from repro.eval.enhancements import multi_edge_enhancement
from repro.eval.reporting import format_enhancement
from repro.vehicles.dataset import capture_session


def test_table_5_2(benchmark, veh_a):
    session = capture_session(veh_a, 10.0, seed=52, truncate_bits=85)
    result = multi_edge_enhancement(session.traces)
    report("table_5_2", format_enhancement(result, "Table 5.2: 1 vs 3 edge sets"))

    pairs = result.paired()
    assert all(e.std < b.std for b, e in pairs)
    improved = sum(1 for b, e in pairs if e.max_distance < b.max_distance)
    assert improved >= len(pairs) - 1  # paper: all but ECU 1

    config = ExtractionConfig.for_trace(session.traces[0], n_edge_sets=3)
    benchmark(extract_edge_set, session.traces[0], config)
