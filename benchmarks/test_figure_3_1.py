"""Figure 3.1: effect of sampling rate and resolution on one edge set.

Prints the reduced-rate and reduced-resolution renderings of a single
Sterling Acterra edge set (the paper's "10 MS/s and 8 bits is the limit"
observation) and benchmarks the software requantisation.
"""

import numpy as np

from benchmarks.conftest import report
from repro.acquisition.adc import reduce_resolution
from repro.eval.figures import sampling_effects


def test_figure_3_1(benchmark, sterling):
    effects = sampling_effects(
        sterling, rate_divisors=(1, 2, 4, 8), resolutions=(16, 12, 8, 6, 4), seed=31
    )

    lines = ["=== Figure 3.1a: one edge set at reduced sampling rates ==="]
    for rate in sorted(effects.by_rate, reverse=True):
        vector = effects.by_rate[rate]
        lines.append(
            f"{rate / 1e6:>5g} MS/s: {vector.size:>3} samples, "
            f"range [{vector.min():.0f}, {vector.max():.0f}] counts"
        )
    lines.append("")
    lines.append("=== Figure 3.1b: one edge set at reduced resolutions ===")
    reference = None
    for bits in sorted(effects.by_resolution, reverse=True):
        vector = effects.by_resolution[bits].astype(float)
        normalised = vector / max(vector.max(), 1)
        if reference is None:
            reference = normalised
            distortion = 0.0
        else:
            distortion = float(np.abs(normalised - reference).mean())
        lines.append(
            f"{bits:>2} bit: range [{vector.min():.0f}, {vector.max():.0f}], "
            f"normalised distortion vs 16 bit = {distortion:.4f}"
        )
    report("figure_3_1", "\n".join(lines))

    # Shape: distortion grows as resolution falls, sharply below 8 bits.
    v16 = effects.by_resolution[16].astype(float)
    v16n = v16 / v16.max()

    def distortion(bits):
        v = effects.by_resolution[bits].astype(float)
        return float(np.abs(v / max(v.max(), 1) - v16n).mean())

    assert distortion(8) < distortion(6) < distortion(4)

    counts = effects.by_rate[sorted(effects.by_rate)[-1]].astype(np.int64)
    benchmark(reduce_resolution, counts, 16, 8)
