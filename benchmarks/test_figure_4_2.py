"""Figure 4.2: voltage profiles of Vehicle A's five ECUs.

Prints each ECU's mean edge-set profile summary (the five visually
distinct waveforms) and benchmarks profile (cluster-mean) computation.
"""

import numpy as np

from benchmarks.conftest import report
from repro.eval.figures import vehicle_voltage_profiles


def test_figure_4_2(benchmark, veh_a):
    profiles = vehicle_voltage_profiles(veh_a, duration_s=4.0, seed=420)

    lines = ["=== Figure 4.2: Vehicle A ECU voltage profiles ==="]
    for name, profile in profiles.items():
        lines.append(
            f"{name}: dominant plateau ~{profile.max():.0f} counts, "
            f"recessive ~{profile.min():.0f} counts, {profile.size} samples"
        )
    names = sorted(profiles)
    lines.append("pairwise profile distances (counts):")
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            lines.append(
                f"  {a} vs {b}: {np.linalg.norm(profiles[a] - profiles[b]):.1f}"
            )
    from repro.eval.plotting import ascii_chart

    lines.append("")
    lines.append(ascii_chart(profiles, width=64, height=14, title="edge-set profiles"))
    report("figure_4_2", "\n".join(lines))

    assert sorted(profiles) == [f"ECU{i}" for i in range(5)]
    # ECU1 and ECU4 are the most similar pair, as in the paper.
    gaps = {
        (a, b): np.linalg.norm(profiles[a] - profiles[b])
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    }
    assert min(gaps, key=gaps.get) == ("ECU1", "ECU4")

    stacked = np.stack([profiles[n] for n in names])
    benchmark(lambda: stacked.mean(axis=0))
