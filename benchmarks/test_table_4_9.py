"""Table 4.9 + Figures 4.7/4.8: high-power vehicle function experiment.

Trains on accessory-mode data, replays lights / A/C / both / engine
events: detection is essentially unaffected, the largest drift appears
with lights + A/C, and a model trained only on trial 1 drifts upward
over the later trials (the paper's creeping-temperature conjecture).
Benchmarks a full capture-to-verdict pass for one message.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.detection import Detector
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set, extract_many
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.eval.environment import voltage_experiment
from repro.eval.reporting import format_voltage
from repro.vehicles.dataset import capture_session


def test_table_4_9_figures_4_7_4_8(benchmark, veh_a):
    result = voltage_experiment(veh_a, trials=3, duration_per_capture_s=1.5, seed=78)
    report("table_4_9", format_voltage(result))

    # Table 4.9: high-power loads barely affect detection.
    assert result.confusion.false_positive_rate < 0.005

    # Figure 4.7: all deltas small; lights+ac is the largest load event.
    by_event = {}
    for p in result.event_drift:
        by_event.setdefault(p.condition, []).append(p.percent_delta)
    means = {k: float(np.mean(v)) for k, v in by_event.items()}
    assert all(abs(v) < 10.0 for v in means.values())
    assert means["lights+ac"] >= means["lights"] - 0.5
    assert means["lights+ac"] >= means["ac"] - 0.5

    # Figure 4.8: overall increase over the later trials.
    last_trial = max(p.condition for p in result.trial_drift)
    last = [p.percent_delta for p in result.trial_drift if p.condition == last_trial]
    assert float(np.mean(last)) > 0.0

    # Benchmark: one message through extraction + detection.
    session = capture_session(veh_a, 4.0, seed=79)
    config = ExtractionConfig.for_trace(session.traces[0])
    edge_sets = extract_many(session.traces, config)
    model = train_model(
        TrainingData.from_edge_sets(edge_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_a.sa_clusters,
    )
    detector = Detector(model, margin=5.0)
    trace = session.traces[0]

    def classify_one():
        return detector.classify(extract_edge_set(trace, config))

    benchmark(classify_one)
