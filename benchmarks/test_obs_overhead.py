"""Telemetry overhead on the streaming hot path.

The longitudinal telemetry layer (time-series store + health monitor +
flight recorder) rides the same chunk loop that must keep up with a
live digitizer, so its figure of merit is the throughput it costs: the
acceptance bar for the layer is **< 5% frames/s loss** against an
identical run with telemetry disabled.

Marked ``slow``: several full replay passes per configuration, kept out
of the tier-1 suite.
"""

import pytest

from benchmarks.conftest import report, report_json
from repro.acquisition.segmentation import assemble_stream
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.stream import ReplaySource, StreamConfig, TelemetryConfig
from repro.vehicles.dataset import capture_session

MARGIN = 5.0
PASSES = 5  # best-of-N damps scheduler noise on shared runners
OVERHEAD_BUDGET = 0.05


@pytest.fixture(scope="module")
def trained(veh_a):
    train = capture_session(veh_a, 8.0, seed=2100)
    test = capture_session(veh_a, 8.0, seed=2101)
    pipeline = VProfilePipeline(
        PipelineConfig(margin=MARGIN, sa_clusters=veh_a.sa_clusters)
    )
    pipeline.train(train.traces)
    return pipeline, assemble_stream(test.traces)


def _best_fps(pipeline, stream, config):
    best = 0.0
    messages = 0
    for _ in range(PASSES):
        run = pipeline.stream(ReplaySource(stream, 8192), config)
        best = max(best, run.frames_per_s)
        messages = run.messages
    return best, messages


@pytest.mark.slow
def test_telemetry_overhead_under_budget(trained, tmp_path_factory):
    pipeline, stream = trained
    flight_dir = tmp_path_factory.mktemp("flight")

    plain = StreamConfig(n_workers=2, batch_size=16)
    telemetered = StreamConfig(
        n_workers=2,
        batch_size=16,
        telemetry=TelemetryConfig(flight_dir=flight_dir),
    )

    base_fps, messages = _best_fps(pipeline, stream, plain)
    telemetry_fps, _ = _best_fps(pipeline, stream, telemetered)

    overhead = 1.0 - telemetry_fps / base_fps

    lines = [
        "Streaming telemetry overhead (Vehicle A, ~8 s replay, 2 workers)",
        f"  plain     : {base_fps:8.0f} frames/s ({messages} messages)",
        f"  telemetry : {telemetry_fps:8.0f} frames/s "
        f"(timeseries + health + flight recorder)",
        f"  overhead  : {overhead * 100:+5.1f}%  (budget {OVERHEAD_BUDGET * 100:.0f}%)",
    ]
    report("obs_overhead", "\n".join(lines))
    report_json(
        "obs_overhead",
        {
            "plain_fps": base_fps,
            "telemetry_fps": telemetry_fps,
            "overhead": overhead,
            "budget": OVERHEAD_BUDGET,
            "messages": messages,
            "passes": PASSES,
        },
    )

    assert overhead < OVERHEAD_BUDGET, (
        f"telemetry costs {overhead * 100:.1f}% throughput "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
