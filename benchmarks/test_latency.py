"""Detection latency and throughput (paper Sections 1.3 / 4).

vProfile's latency claims: a single feature, extracted from the first
edge set after the arbitration field, classified with one distance
computation per cluster.  These benches time every stage of the pipeline
— preprocessing, single-message detection, batch detection, training —
and print a per-message latency budget against the bus message time
(~0.5 ms for a full extended frame at 250 kb/s).
"""

import numpy as np
import pytest

from benchmarks.conftest import report, report_json
from repro import obs
from repro.core.detection import Detector
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set, extract_many
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model


@pytest.fixture(scope="module")
def trained(inputs_a, veh_a):
    model = train_model(
        TrainingData.from_edge_sets(inputs_a.train),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_a.sa_clusters,
    )
    return model, Detector(model, margin=5.0)


def test_edge_set_extraction_latency(benchmark, session_a):
    config = ExtractionConfig.for_trace(session_a.traces[0])
    trace = session_a.traces[0]
    result = benchmark(extract_edge_set, trace, config)
    assert result.vector.size == config.edge_set_length
    mean_s = benchmark.stats.stats.mean

    # Cross-check with the instrumented path: the same extraction under
    # an enabled registry lands in the per-stage latency histogram.
    with obs.enabled() as (registry, _):
        for t in session_a.traces[:200]:
            extract_edge_set(t, config)
    histogram = registry.get(obs.STAGE_METRIC, stage="extract")
    report(
        "latency_extraction",
        "=== Edge-set extraction latency ===\n"
        f"mean {mean_s * 1e6:.1f} us per message "
        f"(bus frame time at 250 kb/s is ~500 us)",
    )
    report_json(
        "latency_extraction",
        {
            "mean_us": mean_s * 1e6,
            "span_histogram": {
                "count": histogram.count,
                "mean_us": (histogram.mean or 0.0) * 1e6,
                "p50_us": (histogram.quantile(0.5) or 0.0) * 1e6,
                "p99_us": (histogram.quantile(0.99) or 0.0) * 1e6,
            },
        },
    )


def test_single_message_detection_latency(benchmark, trained, inputs_a):
    _, detector = trained
    edge_set = inputs_a.test[0]
    result = benchmark(detector.classify, edge_set)
    assert result.min_distance is not None
    mean_s = benchmark.stats.stats.mean
    report(
        "latency_detection",
        "=== Single-message detection latency (Mahalanobis, 5 clusters) ===\n"
        f"mean {mean_s * 1e6:.1f} us per message",
    )
    report_json("latency_detection", {"mean_us": mean_s * 1e6})


def test_batch_detection_throughput(benchmark, trained, inputs_a):
    _, detector = trained
    vectors = np.stack([e.vector for e in inputs_a.test])
    sas = np.array([e.source_address for e in inputs_a.test])
    batch = benchmark(detector.classify_batch, vectors, sas)
    assert batch.slack.shape[0] == vectors.shape[0]
    per_message_us = benchmark.stats.stats.mean / vectors.shape[0] * 1e6
    report(
        "latency_batch",
        "=== Batch detection throughput ===\n"
        f"{vectors.shape[0]} messages, {per_message_us:.2f} us/message amortised",
    )
    report_json(
        "latency_batch",
        {"messages": int(vectors.shape[0]), "us_per_message": per_message_us},
    )


def test_training_time(benchmark, inputs_a, veh_a):
    data = TrainingData.from_edge_sets(inputs_a.train)

    def fit():
        return train_model(
            data, metric=Metric.MAHALANOBIS, sa_clusters=veh_a.sa_clusters
        )

    model = benchmark(fit)
    assert model.n_clusters == 5
    report(
        "latency_training",
        "=== Training time (Algorithm 2, Mahalanobis) ===\n"
        f"{len(inputs_a.train)} edge sets, {model.dim}-dim: "
        f"{benchmark.stats.stats.mean * 1e3:.1f} ms",
    )
    report_json(
        "latency_training",
        {
            "edge_sets": len(inputs_a.train),
            "dim": model.dim,
            "mean_ms": benchmark.stats.stats.mean * 1e3,
        },
    )


def test_feasibility_budget(benchmark, session_a, veh_a):
    """The embedded-hardware claim (Sections 1.3/6), quantified.

    Evaluated at the paper's chosen operating point — 10 MS/s / 12 bit
    (Section 4.3) — where the edge set is 32-dimensional.
    """
    from repro.eval.feasibility import (
        analyze_vprofile,
        format_feasibility,
        related_work_budgets,
    )

    reduced = [t.downsampled(2).at_resolution(12) for t in session_a.traces[:3000]]
    config = ExtractionConfig.for_trace(reduced[0])
    model = train_model(
        TrainingData.from_edge_sets(extract_many(reduced, config)),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_a.sa_clusters,
    )
    ours = analyze_vprofile(
        model, config, sample_rate=10e6, adc_resolution_bits=12
    )
    reports = [ours] + related_work_budgets(frame_samples=2400)
    report("feasibility", format_feasibility(reports, bus_load_msgs=600))
    # vProfile undercuts every feature pipeline on arithmetic except
    # SIMPLE, whose 1 MS/s rate trades compute for needing the *whole*
    # frame (vProfile's edge set completes ~45 bits in — the latency
    # advantage the paper emphasises).
    for budget in reports[1:]:
        if budget.name.startswith("SIMPLE"):
            assert ours.macs_per_message < 1.5 * budget.macs_per_message
        else:
            assert ours.macs_per_message < budget.macs_per_message
    benchmark(analyze_vprofile, model, config,
              sample_rate=10e6, adc_resolution_bits=12)


def test_extraction_throughput(benchmark, session_a):
    config = ExtractionConfig.for_trace(session_a.traces[0])
    traces = session_a.traces[:300]
    results = benchmark(extract_many, traces, config)
    assert len(results) == 300
