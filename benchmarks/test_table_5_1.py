"""Table 5.1: fixed vs per-cluster extraction thresholds (Section 5.1).

The per-cluster threshold (mean of the first half's max and min) moves
each ECU's intra-cluster statistics in both directions without changing
the headline detection rates — reproducing the paper's mixed result.
Benchmarks the per-cluster threshold computation.
"""

from benchmarks.conftest import report
from repro.core.edge_extraction import cluster_threshold
from repro.eval.enhancements import threshold_enhancement
from repro.eval.reporting import format_enhancement
from repro.vehicles.dataset import capture_session


def test_table_5_1(benchmark, veh_a):
    session = capture_session(veh_a, 10.0, seed=51, truncate_bits=85)
    result = threshold_enhancement(session.traces)
    report(
        "table_5_1",
        format_enhancement(result, "Table 5.1: static vs cluster thresholds"),
    )

    pairs = result.paired()
    assert len(pairs) == 5
    # The enhancement changes the statistics...
    assert any(
        abs(b.std - e.std) > 1e-9 or abs(b.max_distance - e.max_distance) > 1e-9
        for b, e in pairs
    )
    # ...but not catastrophically (same order of magnitude everywhere).
    for base, enhanced in pairs:
        assert 0.5 < enhanced.std / base.std < 2.0
        assert 0.3 < enhanced.max_distance / base.max_distance < 3.0

    benchmark(cluster_threshold, session.traces[0])
