"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it
prints the same rows/series the paper reports (and saves them under
``benchmarks/results/``) while pytest-benchmark times the core operation
behind that experiment.

Scale note: the paper's captures contain 10^5-10^6 messages per cell; we
regenerate each artefact from 10^3-10^4 synthetic messages so the whole
harness runs in minutes.  Shapes, not absolute counts, are the target
(see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.eval.suite import SuiteInputs
from repro.vehicles.dataset import capture_session
from repro.vehicles.profiles import sterling_acterra, vehicle_a, vehicle_b

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a regenerated artefact and persist it to results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def report_json(name: str, payload: dict) -> None:
    """Persist a machine-readable artefact next to the .txt report.

    The JSON twin carries the same numbers the text artefact prints,
    so CI / regression tooling can diff runs without parsing prose.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n"
    )


@pytest.fixture(scope="session")
def veh_a():
    return vehicle_a()


@pytest.fixture(scope="session")
def veh_b():
    return vehicle_b()


@pytest.fixture(scope="session")
def sterling():
    return sterling_acterra()


@pytest.fixture(scope="session")
def session_a(veh_a):
    """~20 s of Vehicle A traffic shared by the Table 4.x benches."""
    return capture_session(veh_a, 20.0, seed=1000)


@pytest.fixture(scope="session")
def session_b(veh_b):
    """~20 s of Vehicle B traffic."""
    return capture_session(veh_b, 20.0, seed=1001)


@pytest.fixture(scope="session")
def inputs_a(session_a):
    return SuiteInputs.from_session(session_a, train_fraction=0.5, seed=7)


@pytest.fixture(scope="session")
def inputs_b(session_b):
    return SuiteInputs.from_session(session_b, train_fraction=0.5, seed=7)
