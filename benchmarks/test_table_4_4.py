"""Table 4.4: Vehicle B confusion matrices with Mahalanobis distance.

The paper's most drastic improvement: the vehicle that broke the
Euclidean metric scores ~1.0 across all three experiments once the
cluster covariances enter the distance.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.detection import Detector
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.eval.reporting import format_suite
from repro.eval.suite import run_detection_suite


def test_table_4_4(benchmark, inputs_b, veh_b):
    result = run_detection_suite(inputs_b, Metric.MAHALANOBIS, seed=11)
    report("table_4_4", format_suite(result))

    assert result.false_positive.accuracy >= 0.999
    assert result.hijack.f_score >= 0.995
    assert result.foreign.f_score >= 0.95

    model = train_model(
        TrainingData.from_edge_sets(inputs_b.train),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_b.sa_clusters,
    )
    detector = Detector(model, margin=result.false_positive.margin)
    vectors = np.stack([e.vector for e in inputs_b.test])
    sas = np.array([e.source_address for e in inputs_b.test])
    benchmark(detector.classify_batch, vectors, sas)
