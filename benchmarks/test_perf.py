"""Throughput of the repro.perf capture→extraction engine.

Three claims, one artefact (``results/perf_engine.{txt,json}``):

* batched synthesis renders same-config messages several times faster
  than the per-message loop — the gain is largest at low sample rates
  (short messages, where per-call overhead dominates the serial path)
  and tapers toward parity at 10 MS/s where both paths are bound by
  the per-message noise draws;
* the fused engine (batched rendering + in-worker extraction) beats
  legacy serial capture→extract end to end at every job count — the
  artefact records a ``jobs`` ∈ {1, 2, 4} sweep.  The legacy baseline
  pins the scalar bit-walker (the pre-engine default; the vectorized
  walker is this engine's own work and would flatter the baseline).
  The affinity cap means extra jobs only pay on multi-core hosts; the
  asserted floors come from the single-core batching win;
* a capture-cache hit skips simulation entirely — loading the archive
  is far cheaper than regenerating the session.

Timing method: serial and batched runs are interleaved and the minimum
wall time of each is kept, so background load inflates both sides or
neither.  Generators are pre-built outside the timed regions — the
claim is about synthesis throughput, not seeding cost (which the two
paths share by construction).

``REPRO_BENCH_MESSAGES`` scales the workload down for CI smoke runs
(speedup ratios shrink with tiny workloads, so the smoke run only
checks the artefact is produced and the cache behaves).
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from benchmarks.conftest import report, report_json
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.perf.batch import synthesize_waveform_batch
from repro.perf.cache import CaptureCache
from repro.perf.engine import capture_and_extract, capture_session_engine
from repro.perf.parallel import rngs_for_slice
from repro.vehicles.dataset import capture_session

DEFAULT_MESSAGES = 400
SMOKE_THRESHOLD = 100  # below this, only sanity-check the artefacts
SYNTH_RATES_MS = (1.0, 2.0, 10.0)
REPEATS = 3


def _n_messages() -> int:
    raw = os.environ.get("REPRO_BENCH_MESSAGES")
    return int(raw) if raw else DEFAULT_MESSAGES


def _best_of(runs: int, fn, *args, **kwargs):
    """Minimum wall time over ``runs`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _synth_case(sterling, rate_hz: float, n: int) -> dict:
    """Serial vs batched synthesis of ``n`` 60-bit messages at one rate."""
    from dataclasses import replace

    from repro.analog.waveform import synthesize_waveform

    vehicle = replace(sterling, sample_rate=rate_hz)
    chain = vehicle.capture_chain(60)
    transceiver = vehicle.ecus[0].transceiver
    wire = np.random.default_rng(0).integers(0, 2, size=(n, 60)).astype(np.int8)
    wire[:, 0] = 0  # SOF is dominant

    def serial(rngs):
        return [
            synthesize_waveform(
                row, transceiver, chain.synthesis, noise=chain.noise, rng=rng
            )
            for row, rng in zip(wire, rngs)
        ]

    def batched(rngs):
        return synthesize_waveform_batch(
            wire, transceiver, chain.synthesis, noise=chain.noise, rngs=rngs
        )

    # Equivalence first (also warms both paths), then interleaved timing
    # with generators pre-built outside the timed regions.
    serial_out = serial(rngs_for_slice(0, 0, n))
    batched_out = batched(rngs_for_slice(0, 0, n))
    assert all(np.array_equal(a, b) for a, b in zip(serial_out, batched_out))

    serial_rngs = [rngs_for_slice(0, 0, n) for _ in range(REPEATS)]
    batch_rngs = [rngs_for_slice(0, 0, n) for _ in range(REPEATS)]
    serial_s = batched_s = float("inf")
    for k in range(REPEATS):
        t0 = time.perf_counter()
        serial(serial_rngs[k])
        serial_s = min(serial_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched(batch_rngs[k])
        batched_s = min(batched_s, time.perf_counter() - t0)
    return {
        "rate_ms_per_s": rate_hz / 1e6,
        "serial_msgs_per_s": n / serial_s,
        "batched_msgs_per_s": n / batched_s,
        "speedup": serial_s / batched_s,
    }


def test_perf_engine(sterling):
    from dataclasses import replace

    n = _n_messages()
    smoke = n < SMOKE_THRESHOLD
    cpus = os.cpu_count() or 1

    # --- 1. batched vs serial synthesis across sample rates ---------------
    synth = [_synth_case(sterling, rate * 1e6, n) for rate in SYNTH_RATES_MS]
    headline = synth[0]["speedup"]  # 1 MS/s: where vectorisation pays most

    # --- 2. end-to-end capture→extract: legacy serial vs engine sweep -----
    vehicle = replace(sterling, sample_rate=2_000_000.0)
    duration_s = max(n / 120.0, 1.0)  # ≈120 scheduled frames per bus second
    e2e_jobs = (1, 2, 4)

    def legacy_e2e():
        # The honest pre-engine baseline: serial capture plus the scalar
        # bit-walker.  The extractor's default impl is now "vector" —
        # this PR's own vectorisation — so an unpinned call would speed
        # up the baseline and understate the engine's gain.
        session = capture_session(vehicle, duration_s, seed=123)
        config = ExtractionConfig.for_trace(session.traces[0])
        return session, extract_many(session.traces, config, impl="scalar")

    def engine_e2e(jobs):
        return capture_and_extract(vehicle, duration_s, seed=123, jobs=jobs)

    # Warm every path (and pool) once, checking the sweep is
    # byte-identical across job counts while we have the outputs.
    legacy_session, legacy_edges = legacy_e2e()
    warm = {jobs: engine_e2e(jobs) for jobs in e2e_jobs}
    reference_session, reference_edges = warm[e2e_jobs[0]]
    assert len(reference_session.traces) == len(legacy_session.traces)
    assert len(reference_edges) == len(legacy_edges)
    for jobs in e2e_jobs[1:]:
        session, edges = warm[jobs]
        assert all(
            np.array_equal(a.counts, b.counts)
            for a, b in zip(session.traces, reference_session.traces)
        )
        assert all(
            np.array_equal(a.vector, b.vector)
            for a, b in zip(edges, reference_edges)
        )
    del warm

    legacy_s = float("inf")
    engine_s = {jobs: float("inf") for jobs in e2e_jobs}
    for _ in range(REPEATS):
        # Interleaved min-of-N: background load hits all sides equally.
        t0 = time.perf_counter()
        legacy_e2e()
        legacy_s = min(legacy_s, time.perf_counter() - t0)
        for jobs in e2e_jobs:
            t0 = time.perf_counter()
            engine_e2e(jobs)
            engine_s[jobs] = min(engine_s[jobs], time.perf_counter() - t0)
    jobs_sweep = [
        {
            "jobs": jobs,
            "engine_msgs_per_s": len(reference_session.traces) / engine_s[jobs],
            "speedup": legacy_s / engine_s[jobs],
        }
        for jobs in e2e_jobs
    ]
    e2e_speedup = jobs_sweep[-1]["speedup"]  # headline: jobs=4
    n_e2e = len(reference_session.traces)

    # --- 3. cache hit vs miss ---------------------------------------------
    with tempfile.TemporaryDirectory() as root:
        cache = CaptureCache(root)
        miss_s, _ = _best_of(
            1, capture_session_engine, vehicle, duration_s,
            seed=123, jobs=1, cache=cache,
        )
        hit_s, hit = _best_of(
            2, capture_session_engine, vehicle, duration_s,
            seed=123, jobs=1, cache=cache,
        )
    assert len(hit.traces) == n_e2e
    cache_speedup = miss_s / hit_s

    lines = [
        "=== repro.perf engine throughput ===",
        f"workload: {n} synthetic messages; {n_e2e} scheduled frames "
        f"({duration_s:.1f} s of bus time at 2 MS/s); {cpus} CPU(s)",
        "",
        "batched vs serial synthesis (60-bit frames):",
    ]
    for case in synth:
        lines.append(
            f"  {case['rate_ms_per_s']:4.0f} MS/s: "
            f"serial {case['serial_msgs_per_s']:8.0f} msg/s, "
            f"batched {case['batched_msgs_per_s']:8.0f} msg/s "
            f"-> {case['speedup']:.2f}x"
        )
    lines += [
        "",
        "end-to-end capture -> extract (legacy = serial + scalar walker):",
        f"  legacy serial {n_e2e / legacy_s:9.0f} msg/s",
    ]
    for case in jobs_sweep:
        lines.append(
            f"  engine jobs={case['jobs']} "
            f"{case['engine_msgs_per_s']:9.0f} msg/s "
            f"-> {case['speedup']:.2f}x"
        )
    lines += [
        "",
        "capture cache:",
        f"  miss (simulate + store) {miss_s * 1e3:8.1f} ms",
        f"  hit  (load archive)     {hit_s * 1e3:8.1f} ms",
        f"  speedup {cache_speedup:.1f}x",
    ]
    report("perf_engine", "\n".join(lines))
    report_json(
        "perf_engine",
        {
            "messages": n,
            "scheduled_frames": n_e2e,
            "cpus": cpus,
            "synthesis": synth,
            "end_to_end": {
                "jobs": e2e_jobs[-1],
                "legacy_msgs_per_s": n_e2e / legacy_s,
                "engine_msgs_per_s": jobs_sweep[-1]["engine_msgs_per_s"],
                "speedup": e2e_speedup,
                "legacy_extract_impl": "scalar",
                "jobs_sweep": jobs_sweep,
            },
            "cache": {
                "miss_ms": miss_s * 1e3,
                "hit_ms": hit_s * 1e3,
                "speedup": cache_speedup,
            },
        },
    )

    assert cache_speedup > 1.2 if smoke else cache_speedup > 2.0
    if smoke:
        return  # tiny workloads: ratios are noise, artefacts are the point
    assert headline >= 3.0
    assert synth[1]["speedup"] >= 1.8  # 2 MS/s
    # The engine must never lose to legacy, even inline; the jobs=4
    # headline floor holds on single-core hosts too because the
    # zero-copy + batching win is a single-core win (the affinity cap
    # collapses extra jobs to the inline path there).
    assert jobs_sweep[0]["speedup"] >= 1.0
    assert e2e_speedup >= 2.0
