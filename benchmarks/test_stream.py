"""Streaming vs batch throughput.

The streaming runtime exists to keep up with a live digitizer, so its
figure of merit is end-to-end classified frames per second compared to
the offline batch path (segment the whole capture, extract everything,
classify one big vectorised batch).  This benchmark replays one
continuous capture through both paths and reports the ratio at 1/2/4
workers, plus the verdict agreement that makes the comparison honest.

Marked ``slow``: it captures ~20 s of traffic and runs four full
detection passes, so it stays out of the tier-1 suite.
"""

import pytest

from benchmarks.conftest import report, report_json
from repro.acquisition.segmentation import assemble_stream, segment_capture
from repro.core.edge_extraction import extract_many
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.stream import ReplaySource, StreamConfig
from repro.vehicles.dataset import capture_session

from time import perf_counter

WORKER_COUNTS = (1, 2, 4)
MARGIN = 5.0


@pytest.fixture(scope="module")
def trained(veh_a):
    train = capture_session(veh_a, 10.0, seed=2000)
    test = capture_session(veh_a, 10.0, seed=2001)
    pipeline = VProfilePipeline(
        PipelineConfig(margin=MARGIN, sa_clusters=veh_a.sa_clusters)
    )
    pipeline.train(train.traces)
    return pipeline, assemble_stream(test.traces)


def _batch_pass(pipeline, stream):
    t0 = perf_counter()
    traces = segment_capture(stream)
    edge_sets = extract_many(traces, pipeline.extraction, skip_failures=True)
    results = [pipeline.detector.classify(e) for e in edge_sets]
    return len(results), perf_counter() - t0, results


@pytest.mark.slow
def test_stream_vs_batch_throughput(trained, benchmark):
    pipeline, stream = trained

    n_batch, batch_s, batch_results = _batch_pass(pipeline, stream)
    batch_fps = n_batch / batch_s

    rows = []
    agreement = True
    for workers in WORKER_COUNTS:
        cfg = StreamConfig(n_workers=workers, batch_size=16)
        run = pipeline.stream(ReplaySource(stream, 8192), cfg)
        assert run.messages == n_batch
        agreement &= all(
            v.result == r for v, r in zip(run.verdicts, batch_results)
        )
        rows.append((workers, run.frames_per_s, run.messages, run.dropped))

    assert agreement, "streaming verdicts diverged from the batch path"

    # pytest-benchmark statistics for the middle configuration.
    source = ReplaySource(stream, 8192)
    cfg = StreamConfig(n_workers=2, batch_size=16)
    benchmark(lambda: pipeline.stream(source, cfg))

    lines = [
        "Streaming vs batch throughput (Vehicle A, ~10 s replay)",
        f"  batch     : {batch_fps:8.0f} frames/s ({n_batch} messages)",
    ]
    for workers, fps, messages, dropped in rows:
        lines.append(
            f"  stream x{workers}: {fps:8.0f} frames/s "
            f"({fps / batch_fps:5.2f}x batch, dropped={dropped})"
        )
    text = "\n".join(lines)
    report("stream_throughput", text)
    report_json(
        "stream_throughput",
        {
            "batch": {"frames_per_s": batch_fps, "messages": n_batch},
            "stream": [
                {
                    "workers": workers,
                    "frames_per_s": fps,
                    "messages": messages,
                    "dropped": dropped,
                    "speedup_vs_batch": fps / batch_fps,
                }
                for workers, fps, messages, dropped in rows
            ],
            "verdict_agreement": agreement,
        },
    )
