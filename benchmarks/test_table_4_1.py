"""Table 4.1: Vehicle A confusion matrices with Euclidean distance.

Regenerates the three detection experiments and benchmarks the
Euclidean batch-classification kernel behind them.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.detection import Detector
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.eval.reporting import format_suite
from repro.eval.suite import run_detection_suite


def test_table_4_1(benchmark, inputs_a, veh_a):
    result = run_detection_suite(inputs_a, Metric.EUCLIDEAN, seed=11)
    report("table_4_1", format_suite(result))

    # Sanity: the paper's shape — clean FP/hijack, foreign slips through.
    assert result.false_positive.accuracy > 0.99
    assert result.hijack.f_score > 0.97
    assert result.foreign.f_score < 0.3
    assert {result.foreign_scenario.imposter, result.foreign_scenario.victim} == {
        "ECU1",
        "ECU4",
    }

    model = train_model(
        TrainingData.from_edge_sets(inputs_a.train),
        metric=Metric.EUCLIDEAN,
        sa_clusters=veh_a.sa_clusters,
    )
    detector = Detector(model, margin=result.false_positive.margin)
    vectors = np.stack([e.vector for e in inputs_a.test])
    sas = np.array([e.source_address for e in inputs_a.test])

    batch = benchmark(detector.classify_batch, vectors, sas)
    assert batch.anomalies().mean() < 0.01
