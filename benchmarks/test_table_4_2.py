"""Table 4.2: Vehicle B confusion matrices with Euclidean distance.

The paper's negative result: on the vehicle with less distinct voltage
profiles, the Euclidean metric degrades badly (accuracy ~0.89, hijack
F ~0.81, foreign F ~0.42, and no margin removes all false positives).
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.detection import Detector
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.eval.reporting import format_suite
from repro.eval.suite import run_detection_suite


def test_table_4_2(benchmark, inputs_b, veh_b):
    result = run_detection_suite(inputs_b, Metric.EUCLIDEAN, seed=11)
    report("table_4_2", format_suite(result))

    # Shape: clearly degraded relative to Vehicle A / Mahalanobis.
    assert 0.6 < result.false_positive.accuracy < 0.97
    assert 0.5 < result.hijack.f_score < 0.95
    assert result.foreign.f_score < 0.7
    # "We could not find a margin that removed all false positives."
    assert result.foreign.zero_fp_score is None

    model = train_model(
        TrainingData.from_edge_sets(inputs_b.train),
        metric=Metric.EUCLIDEAN,
        sa_clusters=veh_b.sa_clusters,
    )
    detector = Detector(model, margin=result.false_positive.margin)
    vectors = np.stack([e.vector for e in inputs_b.test])
    sas = np.array([e.source_address for e in inputs_b.test])
    benchmark(detector.classify_batch, vectors, sas)
