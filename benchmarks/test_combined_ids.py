"""Combined-IDS coverage matrix (paper Section 6.1 deployment).

Prints which detection channel catches which attack class — the
coverage argument behind the paper's recommendation to pair vProfile
with period/payload monitors — and benchmarks the combined per-message
processing cost.
"""

import numpy as np

from benchmarks.conftest import report
from repro.can.frame import CanFrame
from repro.core import PipelineConfig, VProfilePipeline
from repro.ids import CombinedIds, ObservedMessage


def test_combined_ids_coverage(benchmark, session_a, veh_a):
    train, test = session_a.split_time(0.5)
    ids = CombinedIds(
        VProfilePipeline(PipelineConfig(margin=8.0, sa_clusters=veh_a.sa_clusters))
    )
    ids.fit([ObservedMessage.from_trace(t) for t in train])

    clean = [ids.process(ObservedMessage.from_trace(t)) for t in test[:800]]
    clean_rate = float(np.mean([v.is_anomaly for v in clean]))

    rng = np.random.default_rng(3)
    chain = veh_a.capture_chain()
    now = test[-1].start_s + 1.0
    coverage: dict[str, set[str]] = {}

    # Attack 1: hijack — ECU2's transceiver claiming ECU3's SA.
    template = next(t for t in test if t.metadata["sender"] == "ECU2")
    forged_frame = CanFrame(
        can_id=(template.metadata["frame"].can_id & ~0xFF) | 0x17,
        data=template.metadata["frame"].data,
    )
    trace = chain.capture_frame(
        forged_frame, veh_a.transceiver_of("ECU2"), rng=rng, start_s=now
    )
    verdict = ids.process(ObservedMessage(now, forged_frame, trace))
    coverage["hijack (forged SA)"] = {a.detector for a in verdict.alerts}

    # Attack 2: flood — 10 frames 0.2 ms apart, no analog tap.
    flood_frame = test[0].metadata["frame"]
    detectors: set[str] = set()
    for k in range(10):
        verdict = ids.process(
            ObservedMessage(now + 1.0 + k * 2e-4, flood_frame, trace=None)
        )
        detectors |= {a.detector for a in verdict.alerts}
    coverage["flood (injection)"] = detectors

    # Attack 3: forged payload under the sender's own SA.
    original = test[0].metadata["frame"]
    forged_payload = CanFrame(
        can_id=original.can_id, data=b"\xff" * len(original.data)
    )
    verdict = ids.process(ObservedMessage(now + 5.0, forged_payload, trace=None))
    coverage["payload forgery (own SA)"] = {a.detector for a in verdict.alerts}

    lines = [
        "=== Combined IDS coverage (Section 6.1 deployment) ===",
        f"clean replay anomaly rate: {clean_rate:.4f} over {len(clean)} messages",
        f"{'attack':>26} | detecting channels",
    ]
    for attack, channels in coverage.items():
        lines.append(f"{attack:>26} | {', '.join(sorted(channels)) or '(none)'}")
    report("combined_ids", "\n".join(lines))

    assert clean_rate < 0.03
    assert "voltage" in coverage["hijack (forged SA)"]
    assert "period" in coverage["flood (injection)"]
    assert "payload" in coverage["payload forgery (own SA)"]

    message = ObservedMessage.from_trace(test[900])
    benchmark(ids.process, message)
