"""Table 4.8 + Figure 4.6: temperature variance experiment.

Trains on the -5..0 degC bin, replays 0..25 degC, reports the confusion
matrix (a handful of hot-bin false positives that vanish once 20 degC
data joins the training set) and the per-ECU distance-drift series with
99 % confidence intervals.  Benchmarks the drift computation.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.distances import mahalanobis_distances
from repro.eval.environment import temperature_experiment
from repro.eval.reporting import format_temperature


def test_table_4_8_figure_4_6(benchmark, veh_a):
    result = temperature_experiment(
        veh_a, trials=2, duration_per_capture_s=2.5, seed=77
    )
    from repro.eval.plotting import drift_bars

    hottest = result.drift[-1].condition
    report(
        "table_4_8",
        format_temperature(result) + "\n\n" + drift_bars(result.drift, hottest),
    )

    # Table 4.8 shape: rare false positives, none after warm data.
    assert result.confusion.false_positive_rate < 0.01
    assert (
        result.confusion_with_warm_data.false_positive
        <= result.confusion.false_positive
    )

    # Figure 4.6 shape: drift grows with temperature; ECUs 0 and 2 lead.
    final_bin = {}
    for point in result.drift:
        final_bin[point.ecu] = point.percent_delta
    ranked = sorted(final_bin, key=final_bin.get, reverse=True)
    assert set(ranked[:2]) == {"ECU0", "ECU2"}
    assert final_bin["ECU0"] > 5.0

    # Benchmark the kernel behind the drift series.
    rng = np.random.default_rng(0)
    points = rng.normal(size=(1000, 64))
    mean = np.zeros(64)
    inv_cov = np.eye(64)
    benchmark(mahalanobis_distances, points, mean, inv_cov)
