"""Table 4.6: Vehicle A sampling-rate x resolution sweep.

Downsamples the 20 MS/s / 16-bit capture in software over the paper's
4 x 4 grid and re-runs the three Mahalanobis experiments per cell.
Benchmarks the software downsample + requantise transform.
"""

from benchmarks.conftest import report
from repro.eval.reporting import format_sweep
from repro.eval.sweeps import rate_resolution_sweep


def _transform_all(traces):
    return [t.downsampled(8).at_resolution(10) for t in traces]


def test_table_4_6(benchmark, session_a):
    cells = rate_resolution_sweep(
        session_a,
        rate_divisors=(1, 2, 4, 8),
        resolutions=(16, 14, 12, 10),
        seed=12,
    )
    report("table_4_6", format_sweep(cells, "Table 4.6: Vehicle A rate x resolution"))

    usable = [c for c in cells if not c.singular]
    assert len(usable) >= 12  # the grid stays mostly usable
    # Graceful degradation: every usable cell keeps high scores.
    assert all(c.fp_accuracy > 0.99 for c in usable)
    assert all(c.hijack_f > 0.98 for c in usable)
    native = next(c for c in usable if c.sample_rate == 20e6 and c.resolution_bits == 16)
    assert native.fp_accuracy >= 0.999

    benchmark(_transform_all, session_a.traces[:500])
