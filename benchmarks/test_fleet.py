"""Fleet gateway scale: N concurrent vehicles through one process.

The gateway's figure of merit is how many simulated vehicles one
process sustains and what the chunk ingest-to-verdict latency looks
like at that scale (p50/p99 client-side round-trip, WebSocket and REST
mixed).  The run also performs the evict/rehydrate byte-identical
verdict check under load, so the committed artefact doubles as a
regression record of the supervisor's core guarantee.

Scale knobs for CI smoke runs: ``REPRO_FLEET_TENANTS`` (default 100)
and ``REPRO_FLEET_DURATION`` (simulated bus seconds per tenant,
default 0.1).  Marked ``slow``: the default shape streams ~700 chunks
through a single core.
"""

import os

import pytest

from benchmarks.conftest import report, report_json
from repro.fleet.gateway import GatewayConfig, GatewayThread
from repro.fleet.loadgen import LoadgenConfig, format_report, run_loadgen
from repro.obs.registry import MetricsRegistry

TENANTS = int(os.environ.get("REPRO_FLEET_TENANTS", "100"))
DURATION_S = float(os.environ.get("REPRO_FLEET_DURATION", "0.1"))


@pytest.mark.slow
def test_fleet_gateway_scale(tmp_path):
    config = LoadgenConfig(
        tenants=TENANTS,
        duration_s=DURATION_S,
        chunk_samples=32768,
        seed=0,
        train_duration_s=4.0,
        ws_fraction=0.5,
        check_rehydration=True,
    )
    registry = MetricsRegistry()
    gateway_config = GatewayConfig(
        state_dir=tmp_path / "state",
        # Headroom above the fleet size: this benchmark measures
        # steady-state serving; eviction is exercised by the
        # rehydration check and pinned by the tier-1 suite.
        max_resident=TENANTS + 8,
    )
    with GatewayThread(gateway_config, registry) as server:
        result = run_loadgen(server.host, server.port, config)
        summary = server.gateway._fleet_summary()

    assert result["tenants"] == TENANTS
    assert result["chunks"] > 0 and result["frames"] > 0
    assert result["latency"]["count"] == result["chunks"]
    assert result["latency"]["p99_ms"] >= result["latency"]["p50_ms"]
    # The gateway's own counters agree with the client-side tally
    # (the rehydration check adds its two control tenants' chunks).
    assert summary["chunks"] >= result["chunks"]
    assert result["rehydration"]["identical"], "evicted verdicts diverged"

    result["gateway"] = {
        "chunks": summary["chunks"],
        "frames": summary["frames"],
        "anomalies": summary["anomalies"],
        "verdict_latency_s": summary["verdict_latency"],
        "evictions": summary["evictions"],
        "rehydrations": summary["rehydrations"],
    }
    report("fleet_gateway", format_report(result).rstrip("\n"))
    report_json("fleet_gateway", result)
