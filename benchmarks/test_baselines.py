"""Baseline comparison (paper Section 1.2.1, qualitative claims).

Runs the same Vehicle A capture through the related-work identifiers and
vProfile, reporting sender-identification accuracy and per-message
prediction cost.  The paper's qualitative ordering — Murvay & Groza weak,
Viden/Scission/SIMPLE strong but heavier, vProfile accurate with a
single lightweight feature — should reproduce.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, report_json
from repro.obs import Stopwatch
from repro.baselines import (
    MurvayGrozaIdentifier,
    ScissionIdentifier,
    SimpleAuthenticator,
    VidenIdentifier,
    VoltageIdsIdentifier,
)
from repro.core.detection import Detector
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set, extract_many
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model


@pytest.fixture(scope="module")
def comparison_data(session_a):
    train, test = session_a.split(0.5, seed=13)
    train, test = train[:1500], test[:600]
    return (
        train,
        [t.metadata["sender"] for t in train],
        test,
        [t.metadata["sender"] for t in test],
        ExtractionConfig.for_trace(train[0]),
    )


def _vprofile_identifier(train, labels, config, sa_clusters):
    edge_sets = extract_many(train, config)
    model = train_model(
        TrainingData.from_edge_sets(edge_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=sa_clusters,
    )
    detector = Detector(model, margin=5.0)

    def predict_one(trace):
        result = detector.classify(extract_edge_set(trace, config))
        return model.clusters[result.predicted_cluster].name

    return predict_one


def test_baseline_comparison(benchmark, comparison_data, veh_a):
    train, y_train, test, y_test, config = comparison_data
    threshold = config.threshold

    identifiers = {
        "murvay-mse": MurvayGrozaIdentifier("mse", prefix_samples=1500).fit(
            train, y_train
        ).predict_one,
        "viden": VidenIdentifier(threshold).fit(train, y_train).predict_one,
        "scission": ScissionIdentifier(threshold, epochs=150)
        .fit(train, y_train)
        .predict_one,
        "simple": SimpleAuthenticator(threshold).fit(train, y_train).predict_one,
        "voltageids": VoltageIdsIdentifier(threshold, epochs=12)
        .fit(train, y_train)
        .predict_one,
        "vprofile": _vprofile_identifier(train, y_train, config, veh_a.sa_clusters),
    }

    lines = [
        "=== Baseline comparison: sender identification on Vehicle A ===",
        f"{'method':>12} {'accuracy':>9} {'us/message':>11}",
    ]
    accuracy = {}
    rows = {}
    for name, predict_one in identifiers.items():
        with Stopwatch() as sw:
            predictions = [predict_one(trace) for trace in test]
        accuracy[name] = float(
            np.mean([p == t for p, t in zip(predictions, y_test)])
        )
        us_per_message = sw.wall_s / len(test) * 1e6
        rows[name] = {
            "accuracy": accuracy[name],
            "us_per_message": us_per_message,
            "cpu_us_per_message": sw.cpu_s / len(test) * 1e6,
        }
        lines.append(
            f"{name:>12} {accuracy[name]:>9.4f} {us_per_message:>11.1f}"
        )
    report("baseline_comparison", "\n".join(lines))
    report_json(
        "baseline_comparison",
        {"vehicle": "VehicleA", "messages": len(test), "methods": rows},
    )

    # Qualitative ordering from the paper's related-work discussion.
    assert accuracy["vprofile"] >= 0.99
    assert accuracy["simple"] >= 0.95
    assert accuracy["scission"] >= 0.90
    assert accuracy["viden"] >= 0.90
    assert accuracy["voltageids"] >= 0.90
    assert accuracy["murvay-mse"] < accuracy["vprofile"]

    benchmark(identifiers["vprofile"], test[0])
