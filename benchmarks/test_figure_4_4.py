"""Figure 4.4: per-sample-index standard deviation of ECU 0's edge sets.

The motivation for the Mahalanobis metric: edge samples are an order of
magnitude noisier than steady-state samples while contributing little to
the profile.  Benchmarks the per-index std computation.
"""

import numpy as np

from benchmarks.conftest import report
from repro.eval.figures import sample_stddev_profile
from repro.vehicles.dataset import capture_session
from repro.core.edge_extraction import extract_many


def test_figure_4_4(benchmark, veh_a):
    profile = sample_stddev_profile(veh_a, "ECU0", duration_s=4.0, seed=44)

    lines = [
        "=== Figure 4.4: per-sample-index std for ECU0 ===",
        f"edge sample indices (dashed lines): {profile.edge_indices}",
        f"edge/steady std ratio: {profile.edge_to_steady_ratio:.1f}x",
        "index: std (counts)",
    ]
    for index, std in enumerate(profile.per_index_std):
        marker = "  <-- edge" if index in profile.edge_indices else ""
        lines.append(f"{index:>4}: {std:>9.2f}{marker}")
    from repro.eval.plotting import ascii_chart

    lines.append("")
    lines.append(
        ascii_chart(
            profile.per_index_std, width=64, height=12,
            title="per-sample-index standard deviation (counts)",
        )
    )
    report("figure_4_4", "\n".join(lines))

    assert profile.edge_to_steady_ratio > 3.0

    session = capture_session(veh_a, 2.0, seed=45)
    vectors = np.stack([e.vector for e in extract_many(session.traces)])
    benchmark(lambda: vectors.std(axis=0))
