"""Table 4.5 / Figure 4.5: Euclidean vs Mahalanobis distance quotients.

A held-out ECU 0 edge set is compared against both cluster means.  Both
metrics pick the right cluster, but the Mahalanobis wrong/right quotient
is an order of magnitude larger — the paper's argument for the switch.
Benchmarks a single Mahalanobis distance evaluation.
"""

from benchmarks.conftest import report
from repro.core.distances import mahalanobis_distance
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.eval.figures import distance_comparison
from repro.eval.reporting import format_distance_comparison
from repro.vehicles.dataset import capture_session


def test_table_4_5(benchmark, sterling):
    comparison = distance_comparison(sterling, duration_s=6.0, seed=42)
    report("table_4_5", format_distance_comparison(comparison))

    assert comparison.euclidean["ECU0"] < comparison.euclidean["ECU1"]
    assert comparison.mahalanobis["ECU0"] < comparison.mahalanobis["ECU1"]
    assert comparison.quotient("mahalanobis") > 3 * comparison.quotient("euclidean")

    # Benchmark: one Mahalanobis evaluation against a trained cluster.
    session = capture_session(sterling, 3.0, seed=43)
    edge_sets = extract_many(
        session.traces, ExtractionConfig.for_trace(session.traces[0])
    )
    model = train_model(
        TrainingData.from_edge_sets(edge_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=sterling.sa_clusters,
    )
    cluster = model.clusters[0]
    vector = edge_sets[0].vector
    benchmark(mahalanobis_distance, vector, cluster.mean, cluster.inv_covariance)
