"""Figure 2.5: edge-set overlays of two ECUs on the Sterling Acterra.

Prints summary statistics of the 200-trace-per-ECU overlay (same-ECU
traces near-identical, different ECUs clearly distinct) and benchmarks
edge-set extraction — the preprocessing stage behind the figure.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.edge_extraction import ExtractionConfig, extract_edge_set
from repro.eval.figures import edge_set_overlay
from repro.vehicles.dataset import capture_session


def test_figure_2_5(benchmark, sterling):
    overlay = edge_set_overlay(sterling, traces_per_ecu=200, duration_s=10.0, seed=25)

    lines = ["=== Figure 2.5: edge sets of two ECUs (per-ECU summary) ==="]
    means = {}
    for name in overlay.ecu_names():
        vectors = overlay.vectors_by_ecu[name]
        means[name] = vectors.mean(axis=0)
        intra = np.linalg.norm(vectors - means[name], axis=1).mean()
        lines.append(
            f"{name}: {vectors.shape[0]} traces, dominant level "
            f"~{vectors.max(axis=1).mean():.0f} counts, mean intra-cluster "
            f"distance {intra:.1f}"
        )
    inter = np.linalg.norm(means["ECU0"] - means["ECU1"])
    lines.append(f"inter-ECU mean distance: {inter:.1f} counts")
    report("figure_2_5", "\n".join(lines))

    intra0 = np.linalg.norm(
        overlay.vectors_by_ecu["ECU0"] - means["ECU0"], axis=1
    ).mean()
    assert inter > 2 * intra0  # two visually distinct waveforms

    session = capture_session(sterling, 0.5, seed=26)
    config = ExtractionConfig.for_trace(session.traces[0])
    benchmark(extract_edge_set, session.traces[0], config)
