"""Table 4.7: Vehicle B sampling-rate sweep at 12 bits.

The paper: performance drops slightly at 2.5 MS/s but stays above 0.999
— confirming 10 MS/s @ 12 bit as the operating point.  Also exercises
the paper's singular-covariance failure by sweeping one cell below the
usable resolution.
"""

from benchmarks.conftest import report
from repro.eval.reporting import format_sweep
from repro.eval.sweeps import rate_resolution_sweep


def test_table_4_7(benchmark, session_b):
    cells = rate_resolution_sweep(
        session_b, rate_divisors=(1, 2, 4), resolutions=(12,), seed=12
    )
    low_res = rate_resolution_sweep(
        session_b, rate_divisors=(1,), resolutions=(6,), seed=12
    )
    report(
        "table_4_7",
        format_sweep(cells + low_res, "Table 4.7: Vehicle B rates (+ singular cell)"),
    )

    by_rate = {c.sample_rate: c for c in cells}
    assert by_rate[10e6].fp_accuracy >= 0.999
    assert by_rate[2.5e6].fp_accuracy >= 0.99
    # The paper's ordering: lower rates never beat the native rate by much.
    assert by_rate[10e6].foreign_f >= by_rate[2.5e6].foreign_f - 0.01
    # Below ~8 bits the covariance goes singular, as in the paper.
    assert low_res[0].singular

    benchmark(lambda: [t.downsampled(4) for t in session_b.traces[:500]])
