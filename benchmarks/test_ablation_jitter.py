"""Ablation: sampling-phase jitter is what breaks the Euclidean metric.

DESIGN.md calls out edge-sample jitter as the mechanism that inflates
Euclidean max-distance thresholds (Figure 4.4) and lets foreign devices
slip under them (Table 4.1c).  This ablation re-runs the Vehicle A
foreign-device experiment with the digitizer phase pinned to zero: with
no jitter the Euclidean threshold tightens and the previously invisible
foreign device becomes detectable.
"""

import numpy as np

from benchmarks.conftest import report
from repro.attacks.foreign import apply_foreign_imitation, most_similar_pair
from repro.core.detection import Detector
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.acquisition.trace import VoltageTrace
from repro.analog.waveform import synthesize_waveform
from repro.can.traffic import TrafficGenerator
from repro.eval.margin import tune_margin
from repro.eval.confusion import ConfusionMatrix


def _capture_fixed_phase(vehicle, duration_s, seed):
    """Capture like the normal chain but with the sampling phase pinned."""
    rng = np.random.default_rng(seed)
    generator = TrafficGenerator(
        schedules=[
            (ecu.name, s) for ecu in vehicle.ecus for s in ecu.schedules
        ],
        seed=seed,
    )
    chain = vehicle.capture_chain()
    traces = []
    transceivers = {ecu.name: ecu.transceiver for ecu in vehicle.ecus}
    for scheduled in generator.frames_until(duration_s):
        volts = synthesize_waveform(
            scheduled.frame.stuffed_bits(),
            transceivers[scheduled.sender],
            chain.synthesis,
            noise=chain.noise,
            rng=rng,
            phase=0.0,  # <-- the ablation: no sampling jitter
        )
        traces.append(
            VoltageTrace(
                counts=chain.adc.quantize(volts),
                sample_rate=chain.synthesis.sample_rate,
                resolution_bits=chain.adc.resolution_bits,
                metadata={"sender": scheduled.sender, "frame": scheduled.frame},
            )
        )
    return traces


def _foreign_f_score(edge_sets, vehicle):
    n = len(edge_sets)
    train, test = edge_sets[: n // 2], edge_sets[n // 2 :]
    full_model = train_model(
        TrainingData.from_edge_sets(train),
        metric=Metric.EUCLIDEAN,
        sa_clusters=vehicle.sa_clusters,
    )
    scenario = most_similar_pair(full_model)
    reduced_lut = {
        sa: name
        for sa, name in vehicle.sa_clusters.items()
        if name != scenario.imposter
    }
    model = train_model(
        TrainingData.from_edge_sets(
            [e for e in train if e.metadata["sender"] != scenario.imposter]
        ),
        metric=Metric.EUCLIDEAN,
        sa_clusters=reduced_lut,
    )
    victim_sa = min(
        sa for sa, name in vehicle.sa_clusters.items() if name == scenario.victim
    )
    labelled = apply_foreign_imitation(test, scenario, victim_sa)
    vectors = np.stack([l.edge_set.vector for l in labelled])
    sas = np.array([l.edge_set.source_address for l in labelled])
    actual = np.array([l.is_attack for l in labelled])
    batch = Detector(model).classify_batch(vectors, sas)
    choice = tune_margin(batch, actual, "f-score")
    cm = ConfusionMatrix.from_predictions(actual, batch.anomalies(choice.margin))
    return cm.f_score


def test_jitter_ablation(benchmark, veh_a, inputs_a):
    # Jittered capture: reuse the shared session's extraction results.
    jittered_f = _foreign_f_score(inputs_a.train + inputs_a.test, veh_a)

    # Jitter-free capture at the same scale.
    traces = _capture_fixed_phase(veh_a, duration_s=12.0, seed=99)
    config = ExtractionConfig.for_trace(traces[0])
    pinned_sets = extract_many(traces, config)
    pinned_f = _foreign_f_score(pinned_sets, veh_a)

    report(
        "ablation_jitter",
        "=== Ablation: sampling-phase jitter vs Euclidean foreign detection ===\n"
        f"foreign-device F-score with jitter   : {jittered_f:.4f}\n"
        f"foreign-device F-score, phase pinned : {pinned_f:.4f}\n"
        "(jitter inflates the Euclidean thresholds; removing it restores "
        "detectability)",
    )

    assert pinned_f > jittered_f + 0.3

    benchmark(
        synthesize_waveform,
        [0, 1, 0, 1, 1, 0, 0, 1] * 6,
        veh_a.ecus[0].transceiver,
        veh_a.capture_chain().synthesis,
        phase=0.0,
    )
