"""Online model update (Algorithm 4, Section 5.3): ablation + cost.

Under temperature drift, a static model accumulates false positives
while a model fed verified-legitimate messages through the online
updater tracks the drift.  Benchmarks a single rank-1 update.
"""

import numpy as np

from benchmarks.conftest import report
from repro.analog.environment import Environment
from repro.core.detection import Detector
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.core.model import Metric
from repro.core.online_update import OnlineUpdater
from repro.core.training import TrainingData, train_model
from repro.vehicles.dataset import capture_session


def _capture_sets(vehicle, temp, seed, duration=2.5, extraction=None):
    session = capture_session(
        vehicle, duration, env=Environment(temperature_c=temp), seed=seed
    )
    if extraction is None:
        extraction = ExtractionConfig.for_trace(session.traces[0])
    return extract_many(session.traces, extraction), extraction


def _false_positive_rate(model, margin, edge_sets):
    vectors = np.stack([e.vector for e in edge_sets])
    sas = np.array([e.source_address for e in edge_sets])
    batch = Detector(model).classify_batch(vectors, sas)
    return float(batch.anomalies(margin).mean())


def test_online_update_tracks_drift(benchmark, veh_a):
    train_sets, extraction = _capture_sets(veh_a, temp=0.0, seed=60, duration=4.0)
    calib_sets, _ = _capture_sets(veh_a, temp=0.5, seed=61, extraction=extraction)

    static = train_model(
        TrainingData.from_edge_sets(train_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_a.sa_clusters,
    )
    updated = train_model(
        TrainingData.from_edge_sets(train_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=veh_a.sa_clusters,
    )
    calib_vectors = np.stack([e.vector for e in calib_sets])
    calib_sas = np.array([e.source_address for e in calib_sets])
    margin = float(
        np.max(Detector(static).classify_batch(calib_vectors, calib_sas).slack)
    ) + 1e-6

    updater = OnlineUpdater(updated)
    lines = [
        "=== Online update ablation: static vs updated model under drift ===",
        f"{'temp':>6} {'static FP rate':>15} {'updated FP rate':>16}",
    ]
    static_rates, updated_rates = [], []
    for step, temp in enumerate((8.0, 16.0, 24.0, 32.0)):
        drifted, _ = _capture_sets(veh_a, temp, seed=62 + step, extraction=extraction)
        static_rate = _false_positive_rate(static, margin, drifted)
        updated_rate = _false_positive_rate(updated, margin, drifted)
        static_rates.append(static_rate)
        updated_rates.append(updated_rate)
        lines.append(f"{temp:>5g}C {static_rate:>15.4f} {updated_rate:>16.4f}")
        # Feed the verified-legitimate drifted messages into Algorithm 4.
        updater.update(drifted)
    report("online_update", "\n".join(lines))

    # The static model degrades strictly more than the updated one.
    assert static_rates[-1] >= updated_rates[-1]
    assert sum(updated_rates) <= sum(static_rates) + 1e-9

    # Benchmark one streaming update (rank-1 mean/covariance/inverse).
    edge_set = train_sets[0]
    benchmark(updater.update, [edge_set])
