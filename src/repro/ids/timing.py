"""Timing-based intrusion detection (paper Section 1.2.2).

Two detectors built on message arrival times:

* :class:`PeriodMonitor` — learns each periodic identifier's
  inter-arrival distribution and flags messages that arrive implausibly
  early (the signature of injection/flood attacks) or whose cadence
  disappears (suspension attacks).
* :class:`ClockSkewIdentifier` — a CIDS-style fingerprinting scheme
  (Cho & Shin): the accumulated clock offset of a periodic sender grows
  linearly with a slope (the clock skew) unique to the transmitting
  ECU's crystal.  The identifier estimates per-identifier skews with a
  recursive least-squares fit and raises an alarm via CUSUM when the
  observed offsets stop following the learned skew — which happens the
  moment a different ECU starts producing the stream.

Both consume plain ``(timestamp, can_id)`` observations, so they run on
any CAN controller without analog hardware — exactly the complementary
coverage the paper recommends pairing vProfile with (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.ids.alerts import Alert


@dataclass
class _PeriodStats:
    """Learned inter-arrival statistics for one identifier."""

    mean: float
    std: float
    count: int
    last_seen_s: float


class PeriodMonitor:
    """Flags violations of each identifier's learned message period.

    Parameters
    ----------
    early_sigma:
        A message arriving more than ``early_sigma`` standard deviations
        *before* its expected time is flagged (injection).
    missing_factor:
        An identifier silent for ``missing_factor`` periods is flagged
        once when it reappears (suspension / bus-off attack evidence).
    min_training_messages:
        Identifiers seen fewer times than this during training are not
        monitored (one-shot messages have no period).
    """

    def __init__(
        self,
        early_sigma: float = 4.0,
        missing_factor: float = 3.0,
        min_training_messages: int = 5,
    ):
        if early_sigma <= 0 or missing_factor <= 1:
            raise TrainingError("invalid period-monitor thresholds")
        self.early_sigma = early_sigma
        self.missing_factor = missing_factor
        self.min_training_messages = min_training_messages
        self._stats: dict[int, _PeriodStats] = {}

    def fit(self, observations: list[tuple[float, int]]) -> "PeriodMonitor":
        """Learn periods from a clean ``(timestamp, can_id)`` capture."""
        arrivals: dict[int, list[float]] = {}
        for timestamp, can_id in sorted(observations):
            arrivals.setdefault(can_id, []).append(timestamp)
        self._stats = {}
        for can_id, times in arrivals.items():
            if len(times) < self.min_training_messages:
                continue
            gaps = np.diff(times)
            # Timing jitter floors the std so a perfectly regular
            # schedule does not produce a zero-width acceptance band.
            std = max(float(gaps.std()), 0.01 * float(gaps.mean()), 1e-6)
            self._stats[can_id] = _PeriodStats(
                mean=float(gaps.mean()),
                std=std,
                count=len(times),
                last_seen_s=times[-1],
            )
        if not self._stats:
            raise TrainingError("no periodic identifiers found in training data")
        return self

    @property
    def monitored_ids(self) -> set[int]:
        return set(self._stats)

    def observe(self, timestamp_s: float, can_id: int) -> Alert | None:
        """Process one live message; returns an alert or None."""
        stats = self._stats.get(can_id)
        if stats is None:
            return Alert(
                timestamp_s=timestamp_s,
                detector="period",
                can_id=can_id,
                reason="unknown-id",
                detail="identifier never seen during training",
            )
        gap = timestamp_s - stats.last_seen_s
        stats.last_seen_s = timestamp_s
        early_limit = stats.mean - self.early_sigma * stats.std
        if gap < early_limit:
            return Alert(
                timestamp_s=timestamp_s,
                detector="period",
                can_id=can_id,
                reason="too-early",
                detail=f"gap {gap * 1e3:.2f} ms vs period {stats.mean * 1e3:.2f} ms",
            )
        if gap > self.missing_factor * stats.mean:
            return Alert(
                timestamp_s=timestamp_s,
                detector="period",
                can_id=can_id,
                reason="gap",
                detail=f"silent for {gap / stats.mean:.1f} periods",
            )
        return None


@dataclass
class _SkewState:
    """Recursive least-squares state for one identifier's clock offset."""

    period: float
    skew: float = 0.0           # seconds of offset per second (ppm scale)
    p: float = 1e6              # RLS covariance
    accumulated_offset: float = 0.0
    expected_next: float = 0.0
    origin_s: float = 0.0
    cusum_pos: float = 0.0
    cusum_neg: float = 0.0
    residual_scale: float = 1e-5


class ClockSkewIdentifier:
    """CIDS-style clock-offset fingerprinting of periodic senders.

    For each identifier the detector tracks the accumulated clock offset
    (observed arrival minus ideal arrival from the learned period) and
    fits its slope — the sender's clock skew — by recursive least
    squares.  A CUSUM over the identification residuals raises an alarm
    when the offsets stop following the learned skew, i.e. when another
    ECU (with a different crystal) takes over the stream.

    Parameters
    ----------
    forgetting:
        RLS forgetting factor (1.0 = ordinary least squares).
    cusum_threshold:
        Alarm level for the one-sided CUSUM statistics.
    cusum_drift:
        CUSUM slack per update, in residual-sigma units.
    """

    def __init__(
        self,
        forgetting: float = 0.9995,
        cusum_threshold: float = 8.0,
        cusum_drift: float = 0.5,
    ):
        if not 0.9 <= forgetting <= 1.0:
            raise TrainingError("forgetting factor must be in [0.9, 1.0]")
        self.forgetting = forgetting
        self.cusum_threshold = cusum_threshold
        self.cusum_drift = cusum_drift
        self._states: dict[int, _SkewState] = {}

    def fit(self, observations: list[tuple[float, int]]) -> "ClockSkewIdentifier":
        """Learn per-identifier periods and initial skews."""
        arrivals: dict[int, list[float]] = {}
        for timestamp, can_id in sorted(observations):
            arrivals.setdefault(can_id, []).append(timestamp)
        self._states = {}
        for can_id, times in arrivals.items():
            if len(times) < 10:
                continue
            gaps = np.diff(times)
            period = float(np.median(gaps))
            state = _SkewState(
                period=period,
                origin_s=times[0],
                expected_next=times[0],
            )
            residuals = []
            for timestamp in times:
                residuals.append(self._update_state(state, timestamp))
            settled = np.abs(residuals[len(residuals) // 2 :])
            state.residual_scale = max(float(np.median(settled)) * 1.4826, 1e-7)
            state.cusum_pos = 0.0
            state.cusum_neg = 0.0
            self._states[can_id] = state
        if not self._states:
            raise TrainingError("need >= 10 messages per id to fingerprint clocks")
        return self

    def skew_of(self, can_id: int) -> float:
        """Learned clock skew (s/s) of an identifier's sender."""
        if can_id not in self._states:
            raise TrainingError(f"id 0x{can_id:X} was not fingerprinted")
        return self._states[can_id].skew

    def _update_state(self, state: _SkewState, timestamp_s: float) -> float:
        """One RLS step; returns the pre-update identification residual."""
        elapsed = timestamp_s - state.origin_s
        ideal = state.expected_next
        offset = timestamp_s - ideal
        state.accumulated_offset += offset
        predicted = state.skew * elapsed
        residual = state.accumulated_offset - predicted
        # RLS with scalar regressor (elapsed time).
        lam = self.forgetting
        denom = lam + state.p * elapsed * elapsed
        gain = state.p * elapsed / denom
        state.skew += gain * residual
        state.p = (state.p - gain * elapsed * state.p) / lam
        state.expected_next = timestamp_s + state.period
        return residual

    def observe(self, timestamp_s: float, can_id: int) -> Alert | None:
        """Process one live message; returns an alert or None."""
        state = self._states.get(can_id)
        if state is None:
            return None  # not a fingerprinted stream
        residual = self._update_state(state, timestamp_s)
        z = residual / state.residual_scale
        state.cusum_pos = max(0.0, state.cusum_pos + z - self.cusum_drift)
        state.cusum_neg = max(0.0, state.cusum_neg - z - self.cusum_drift)
        if max(state.cusum_pos, state.cusum_neg) > self.cusum_threshold:
            state.cusum_pos = 0.0
            state.cusum_neg = 0.0
            return Alert(
                timestamp_s=timestamp_s,
                detector="timing",
                can_id=can_id,
                reason="clock-skew",
                detail=f"offset residual {residual * 1e6:.1f} us off the learned skew",
            )
        return None
