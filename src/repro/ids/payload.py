"""Payload-based anomaly detection.

The second complementary signal the paper recommends next to vProfile
(Section 6.1): learn how each identifier's data bytes behave and flag
payloads that leave their envelope.  Two learned properties per
(identifier, byte position):

* **range** — observed min/max, with a configurable guard band;
* **step** — the largest observed change between consecutive messages,
  which catches physically impossible jumps (a wheel-speed byte going
  0 -> 255 in 10 ms) even when both values are individually in range.

Constant bytes (checksums aside) get an exact-match constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.ids.alerts import Alert


@dataclass
class _ByteEnvelope:
    """Learned behaviour of one byte position of one identifier."""

    minimum: int
    maximum: int
    max_step: int
    constant: bool


class PayloadMonitor:
    """Per-identifier payload envelope learning and checking.

    Parameters
    ----------
    range_guard:
        Extra slack added to the learned min/max, as a fraction of the
        observed span (0.1 = 10 %).
    step_guard:
        Multiplier on the learned maximum inter-message step.
    min_training_messages:
        Identifiers with fewer training messages are not monitored.
    """

    def __init__(
        self,
        range_guard: float = 0.1,
        step_guard: float = 1.5,
        min_training_messages: int = 5,
    ):
        if range_guard < 0 or step_guard < 1.0:
            raise TrainingError("invalid payload-monitor guards")
        self.range_guard = range_guard
        self.step_guard = step_guard
        self.min_training_messages = min_training_messages
        self._envelopes: dict[int, list[_ByteEnvelope]] = {}
        self._last_payload: dict[int, bytes] = {}

    def fit(self, observations: list[tuple[float, int, bytes]]) -> "PayloadMonitor":
        """Learn envelopes from clean ``(timestamp, can_id, data)`` records."""
        payloads: dict[int, list[bytes]] = {}
        for _, can_id, data in sorted(observations):
            payloads.setdefault(can_id, []).append(data)
        self._envelopes = {}
        for can_id, series in payloads.items():
            if len(series) < self.min_training_messages:
                continue
            length = min(len(p) for p in series)
            matrix = np.array(
                [list(p[:length]) for p in series], dtype=np.int64
            )
            envelopes = []
            for position in range(length):
                column = matrix[:, position]
                steps = _modular_steps(column)
                span = int(column.max() - column.min())
                guard = int(np.ceil(self.range_guard * max(span, 1)))
                max_step = int(
                    np.ceil(self.step_guard * max(int(steps.max(initial=0)), 1))
                )
                if _is_counter(steps, span):
                    # A wrapping counter visits the whole code space over
                    # time even if training only saw part of it; the step
                    # constraint is the meaningful one.
                    minimum, maximum = 0, 255
                else:
                    minimum = max(0, int(column.min()) - guard)
                    maximum = min(255, int(column.max()) + guard)
                envelopes.append(
                    _ByteEnvelope(
                        minimum=minimum,
                        maximum=maximum,
                        max_step=max_step,
                        constant=span == 0,
                    )
                )
            self._envelopes[can_id] = envelopes
            self._last_payload[can_id] = series[-1]
        if not self._envelopes:
            raise TrainingError("no identifiers had enough payload samples")
        return self

    @property
    def monitored_ids(self) -> set[int]:
        return set(self._envelopes)

    def observe(self, timestamp_s: float, can_id: int, data: bytes) -> Alert | None:
        """Check one live payload; returns an alert or None."""
        envelopes = self._envelopes.get(can_id)
        if envelopes is None:
            return None
        previous = self._last_payload.get(can_id)
        self._last_payload[can_id] = data
        for position, envelope in enumerate(envelopes):
            if position >= len(data):
                return Alert(
                    timestamp_s=timestamp_s,
                    detector="payload",
                    can_id=can_id,
                    reason="truncated",
                    detail=f"payload shrank to {len(data)} bytes",
                )
            value = data[position]
            if not envelope.minimum <= value <= envelope.maximum:
                return Alert(
                    timestamp_s=timestamp_s,
                    detector="payload",
                    can_id=can_id,
                    reason="out-of-range",
                    detail=(
                        f"byte {position} = {value} outside "
                        f"[{envelope.minimum}, {envelope.maximum}]"
                    ),
                )
            if previous is not None and position < len(previous):
                step = _modular_distance(value, previous[position])
                if step > envelope.max_step:
                    return Alert(
                        timestamp_s=timestamp_s,
                        detector="payload",
                        can_id=can_id,
                        reason="step",
                        detail=(
                            f"byte {position} jumped by {step} "
                            f"(limit {envelope.max_step})"
                        ),
                    )
        return None


def _is_counter(steps: "np.ndarray", span: int) -> bool:
    """Heuristic for counter-like bytes: steady non-zero modular steps.

    A message counter moves by the same amount every transmission (e.g.
    +1 or +3 mod 256), so its modular step sequence is a near-constant
    positive value while its value span keeps growing with observation
    time.
    """
    if steps.size < 4 or span == 0:
        return False
    return bool(steps.min() > 0 and (steps.max() - steps.min()) <= 2)


def _modular_distance(a: int, b: int) -> int:
    """Byte distance on the mod-256 circle (counters wrap 255 -> 0)."""
    diff = abs(int(a) - int(b))
    return min(diff, 256 - diff)


def _modular_steps(column: "np.ndarray") -> "np.ndarray":
    """Consecutive modular distances along a byte column."""
    if column.size < 2:
        return np.zeros(0, dtype=np.int64)
    diff = np.abs(np.diff(column))
    return np.minimum(diff, 256 - diff)
