"""IDS integration layer: vProfile fused with timing/payload detection.

Implements the deployment the paper recommends in Section 6.1 — vProfile
covering sender authenticity, complemented by detectors over message
period and payload (and optionally a CIDS-style clock-skew
fingerprinter, representing the timing-based related work of Section
1.2.2).
"""

from repro.ids.alerts import Alert, AlertLog
from repro.ids.combined import CombinedIds, CombinedVerdict, ObservedMessage
from repro.ids.payload import PayloadMonitor
from repro.ids.timing import ClockSkewIdentifier, PeriodMonitor

__all__ = [
    "Alert",
    "AlertLog",
    "CombinedIds",
    "CombinedVerdict",
    "ObservedMessage",
    "PayloadMonitor",
    "ClockSkewIdentifier",
    "PeriodMonitor",
]
