"""Combined intrusion detection: vProfile + timing + payload.

Section 6.1 of the paper: vProfile cannot see a hijacked ECU sending
forged content under its *own* SAs, so "we recommend using vProfile in
an IDS that can detect anomalies based on other message properties, such
as the period and payload".  :class:`CombinedIds` is that deployment: it
fuses the voltage fingerprint verdict with the timing and payload
monitors into one alert stream.

The IDS node is assumed to have both an analog tap (voltage traces) and
a regular CAN controller (decoded frames with timestamps), which is how
the paper's capture hardware is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.acquisition.trace import VoltageTrace
from repro.can.frame import CanFrame
from repro.core.detection import Verdict
from repro.core.pipeline import VProfilePipeline
from repro.errors import DetectionError
from repro.ids.alerts import Alert, AlertLog
from repro.ids.payload import PayloadMonitor
from repro.ids.timing import ClockSkewIdentifier, PeriodMonitor


@dataclass(frozen=True)
class ObservedMessage:
    """One bus message as an IDS node sees it.

    Attributes
    ----------
    timestamp_s:
        Arrival time from the CAN controller.
    frame:
        The decoded frame.
    trace:
        The analog capture of the same message (``None`` when the
        digitizer missed it; the voltage check is then skipped).
    """

    timestamp_s: float
    frame: CanFrame
    trace: VoltageTrace | None = None

    @classmethod
    def from_trace(cls, trace: VoltageTrace) -> "ObservedMessage":
        """Build from a capture-session trace (frame rides in metadata)."""
        frame = trace.metadata.get("frame")
        if frame is None:
            raise DetectionError("trace metadata lacks the decoded frame")
        return cls(timestamp_s=trace.start_s, frame=frame, trace=trace)


@dataclass
class CombinedVerdict:
    """Fused result for one message."""

    is_anomaly: bool
    alerts: list[Alert] = field(default_factory=list)


class CombinedIds:
    """Voltage + timing + payload intrusion detection.

    Parameters
    ----------
    pipeline:
        A (possibly pre-configured) vProfile pipeline; trained during
        :meth:`fit`.
    use_clock_skew:
        Also run the CIDS-style clock-skew fingerprinting (heavier and
        slower to alarm than the period monitor, but able to catch
        masquerades at the right cadence).
    """

    def __init__(
        self,
        pipeline: VProfilePipeline,
        *,
        period_monitor: PeriodMonitor | None = None,
        payload_monitor: PayloadMonitor | None = None,
        use_clock_skew: bool = False,
    ):
        self.pipeline = pipeline
        self.period_monitor = period_monitor or PeriodMonitor()
        self.payload_monitor = payload_monitor or PayloadMonitor()
        self.clock_skew = ClockSkewIdentifier() if use_clock_skew else None
        self.log = AlertLog()
        self._trained = False

    def fit(self, messages: Sequence[ObservedMessage]) -> "CombinedIds":
        """Train every detector on one clean capture."""
        if not messages:
            raise DetectionError("cannot train the combined IDS on nothing")
        traces = [m.trace for m in messages if m.trace is not None]
        if not traces:
            raise DetectionError("combined IDS training needs voltage traces")
        self.pipeline.train(traces)
        timing_obs = [(m.timestamp_s, m.frame.can_id) for m in messages]
        payload_obs = [
            (m.timestamp_s, m.frame.can_id, m.frame.data) for m in messages
        ]
        self.period_monitor.fit(timing_obs)
        self.payload_monitor.fit(payload_obs)
        if self.clock_skew is not None:
            self.clock_skew.fit(timing_obs)
        self._trained = True
        return self

    def process(self, message: ObservedMessage) -> CombinedVerdict:
        """Run one live message through every detector and fuse alerts."""
        if not self._trained:
            raise DetectionError("combined IDS is not trained")
        alerts: list[Alert] = []

        if message.trace is not None:
            result = self.pipeline.process(message.trace)
            if result.verdict is Verdict.ANOMALY:
                alerts.append(
                    Alert(
                        timestamp_s=message.timestamp_s,
                        detector="voltage",
                        can_id=message.frame.can_id,
                        reason=result.reason.value if result.reason else "anomaly",
                        detail=(
                            f"claimed SA 0x{result.source_address:02X}, "
                            f"min distance {result.min_distance:.2f}"
                            if result.min_distance is not None
                            else f"claimed SA 0x{result.source_address:02X}"
                        ),
                    )
                )

        period_alert = self.period_monitor.observe(
            message.timestamp_s, message.frame.can_id
        )
        if period_alert:
            alerts.append(period_alert)

        payload_alert = self.payload_monitor.observe(
            message.timestamp_s, message.frame.can_id, message.frame.data
        )
        if payload_alert:
            alerts.append(payload_alert)

        if self.clock_skew is not None:
            skew_alert = self.clock_skew.observe(
                message.timestamp_s, message.frame.can_id
            )
            if skew_alert:
                alerts.append(skew_alert)

        self.log.extend(alerts)
        return CombinedVerdict(is_anomaly=bool(alerts), alerts=alerts)

    def process_stream(
        self, messages: Sequence[ObservedMessage]
    ) -> list[CombinedVerdict]:
        """Process a whole replay, returning per-message verdicts."""
        return [self.process(message) for message in messages]
