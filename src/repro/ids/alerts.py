"""Alert plumbing shared by the IDS detectors.

Every detector in :mod:`repro.ids` reports :class:`Alert` objects into an
:class:`AlertLog`, which keeps per-detector and per-identifier counters
so an operator (or a test) can ask "who is alarming, about what, how
often" without re-scanning the stream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Alert:
    """One anomaly report.

    Attributes
    ----------
    timestamp_s:
        Bus time of the offending message.
    detector:
        Which detector raised the alert (``"voltage"``, ``"timing"``,
        ``"payload"``, ``"period"``).
    can_id:
        Identifier of the offending message.
    reason:
        Short machine-readable cause (e.g. ``"cluster-mismatch"``).
    detail:
        Human-readable context.
    """

    timestamp_s: float
    detector: str
    can_id: int
    reason: str
    detail: str = ""


@dataclass
class AlertLog:
    """Accumulates alerts with cheap aggregate queries."""

    alerts: list[Alert] = field(default_factory=list)

    def record(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def extend(self, alerts: Iterable[Alert]) -> None:
        self.alerts.extend(alerts)

    def __len__(self) -> int:
        return len(self.alerts)

    def by_detector(self) -> dict[str, int]:
        """Alert counts per detector."""
        return dict(Counter(a.detector for a in self.alerts))

    def by_can_id(self) -> dict[int, int]:
        """Alert counts per offending identifier."""
        return dict(Counter(a.can_id for a in self.alerts))

    def by_reason(self) -> dict[str, int]:
        """Alert counts per cause."""
        return dict(Counter(a.reason for a in self.alerts))

    def in_window(self, start_s: float, end_s: float) -> list[Alert]:
        """Alerts whose timestamp falls in ``[start_s, end_s)``."""
        return [a for a in self.alerts if start_s <= a.timestamp_s < end_s]

    def summary(self) -> str:
        """One-paragraph operator summary."""
        if not self.alerts:
            return "no alerts"
        detectors = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.by_detector().items())
        )
        ids = ", ".join(
            f"0x{can_id:X}: {count}"
            for can_id, count in sorted(self.by_can_id().items())
        )
        return f"{len(self.alerts)} alerts ({detectors}) on ids [{ids}]"
