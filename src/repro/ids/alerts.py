"""Alert plumbing shared by the IDS detectors.

Every detector in :mod:`repro.ids` reports :class:`Alert` objects into an
:class:`AlertLog`, which keeps per-detector and per-identifier counters
so an operator (or a test) can ask "who is alarming, about what, how
often" without re-scanning the stream.

Observability: the log is rebased onto :mod:`repro.obs` — each recorded
alert increments ``vprofile_ids_alerts_total{detector=...,reason=...}``
and emits a structured ``ids.alert`` event.  The aggregate queries
(``by_detector`` & co.) are backed by incrementally-maintained
:class:`collections.Counter` instances, so they are O(distinct keys)
instead of a rescan of the whole alert list.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.events import get_event_log
from repro.obs.registry import get_registry

#: Counter fed by every recorded alert.
IDS_ALERTS_METRIC = "vprofile_ids_alerts_total"


@dataclass(frozen=True)
class Alert:
    """One anomaly report.

    Attributes
    ----------
    timestamp_s:
        Bus time of the offending message.
    detector:
        Which detector raised the alert (``"voltage"``, ``"timing"``,
        ``"payload"``, ``"period"``).
    can_id:
        Identifier of the offending message.
    reason:
        Short machine-readable cause (e.g. ``"cluster-mismatch"``).
    detail:
        Human-readable context.
    """

    timestamp_s: float
    detector: str
    can_id: int
    reason: str
    detail: str = ""


@dataclass
class AlertLog:
    """Accumulates alerts with cheap aggregate queries."""

    alerts: list[Alert] = field(default_factory=list)
    _by_detector: Counter = field(default_factory=Counter, repr=False, compare=False)
    _by_can_id: Counter = field(default_factory=Counter, repr=False, compare=False)
    _by_reason: Counter = field(default_factory=Counter, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Rebuild aggregates when constructed from an existing list.
        for alert in self.alerts:
            self._count(alert)

    def record(self, alert: Alert) -> None:
        self.alerts.append(alert)
        self._count(alert)
        get_registry().counter(
            IDS_ALERTS_METRIC,
            help="Alerts raised by the IDS detectors",
            detector=alert.detector,
            reason=alert.reason,
        ).inc()
        get_event_log().warning(
            "ids.alert",
            detector=alert.detector,
            can_id=alert.can_id,
            reason=alert.reason,
            detail=alert.detail,
            timestamp_s=alert.timestamp_s,
        )

    def extend(self, alerts: Iterable[Alert]) -> None:
        for alert in alerts:
            self.record(alert)

    def _count(self, alert: Alert) -> None:
        self._by_detector[alert.detector] += 1
        self._by_can_id[alert.can_id] += 1
        self._by_reason[alert.reason] += 1

    def __len__(self) -> int:
        return len(self.alerts)

    def by_detector(self) -> dict[str, int]:
        """Alert counts per detector."""
        return dict(self._by_detector)

    def by_can_id(self) -> dict[int, int]:
        """Alert counts per offending identifier."""
        return dict(self._by_can_id)

    def by_reason(self) -> dict[str, int]:
        """Alert counts per cause."""
        return dict(self._by_reason)

    def in_window(self, start_s: float, end_s: float) -> list[Alert]:
        """Alerts whose timestamp falls in ``[start_s, end_s)``."""
        return [a for a in self.alerts if start_s <= a.timestamp_s < end_s]

    def summary(self) -> str:
        """One-paragraph operator summary."""
        if not self.alerts:
            return "no alerts"
        detectors = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.by_detector().items())
        )
        ids = ", ".join(
            f"0x{can_id:X}: {count}"
            for can_id, count in sorted(self.by_can_id().items())
        )
        return f"{len(self.alerts)} alerts ({detectors}) on ids [{ids}]"
