"""Deterministic fleet load generator.

Simulates N vehicles streaming against one gateway: every tenant gets
its own deterministic :class:`~repro.stream.chunks.LiveSource` (seeded
``seed + 1000 + index``), a share of the tenants speak the WebSocket
protocol and the rest REST keep-alive, and every chunk round-trip is
timed client-side, so the report's p50/p99 verdict latencies measure
the full wire-to-verdict path.

One model is trained once (client-side, on a thread executor) and
uploaded to every tenant — fleet benchmarks measure the gateway, not N
redundant training runs.

The optional rehydration check registers two extra tenants fed the
identical chunk sequence; one is forcibly evicted halfway.  The run
fails the check unless both verdict sequences are byte-identical, which
pins the supervisor's core guarantee under the same load the benchmark
reports.

Everything is deterministic for a given config: seeds drive the
simulated traffic, the WebSocket nonces and masks derive from the
tenant index, and latency quantiles are the only machine-dependent
numbers in the report.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.core.model import VProfileModel
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.errors import FleetError
from repro.fleet.protocol import (
    OP_CLOSE,
    OP_TEXT,
    client_ws_connect,
    encode_ws_frame,
    http_json,
    read_ws_frame,
)
from repro.fleet.tenant import builtin_vehicle, encode_chunk, model_to_b64
from repro.obs.clock import monotonic
from repro.stream.chunks import SampleChunk
from repro.vehicles.dataset import capture_session


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generator run.

    Attributes
    ----------
    tenants:
        Simulated vehicles streaming concurrently.
    duration_s:
        Simulated bus time streamed per tenant.
    vehicle / sample_rate:
        Built-in vehicle every tenant registers as; the default halves
        sterling's capture rate to 2 MS/s, the setting the streaming
        test-suite standardises on.
    chunk_samples:
        Digitizer chunk size each tenant sends.
    seed:
        Base seed; tenant ``i`` streams traffic seeded ``seed+1000+i``.
    train_duration_s:
        Length of the one shared training capture.
    margin:
        Detection margin every tenant registers with.
    ws_fraction:
        Fraction of tenants using the WebSocket path (the rest REST).
    check_rehydration:
        Run the evict/rehydrate byte-identical verdict check.
    """

    tenants: int = 8
    duration_s: float = 0.25
    vehicle: str = "sterling"
    sample_rate: float | None = 2_000_000.0
    chunk_samples: int = 32768
    seed: int = 0
    train_duration_s: float = 4.0
    margin: float = 5.0
    ws_fraction: float = 0.5
    check_rehydration: bool = True


@dataclass
class _TenantResult:
    tenant: str
    transport: str
    chunks: int = 0
    frames: int = 0
    anomalies: int = 0
    latencies: list[float] | None = None
    verdicts: list[dict[str, Any]] | None = None


def train_shared_model(config: LoadgenConfig) -> VProfileModel:
    """Train the one model every simulated vehicle uploads."""
    vehicle = builtin_vehicle(config.vehicle, config.sample_rate)
    session = capture_session(
        vehicle, config.train_duration_s, seed=config.seed
    )
    pipeline = VProfilePipeline(
        PipelineConfig(margin=config.margin, sa_clusters=vehicle.sa_clusters)
    )
    pipeline.train(session.traces)
    return pipeline.model


def _chunk_iter(config: LoadgenConfig, index: int) -> Iterator[SampleChunk]:
    from repro.stream.chunks import LiveSource

    vehicle = builtin_vehicle(config.vehicle, config.sample_rate)
    return LiveSource(
        vehicle,
        config.duration_s,
        config.chunk_samples,
        seed=config.seed + 1000 + index,
    ).chunks()


def _mask_for(tenant: str, seq: int) -> bytes:
    return hashlib.sha256(f"mask-{tenant}-{seq}".encode()).digest()[:4]


async def _register(
    host: str,
    port: int,
    tenant: str,
    model_b64: str,
    config: LoadgenConfig,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        status, body = await http_json(
            reader,
            writer,
            "POST",
            "/tenants",
            {
                "tenant": tenant,
                "vehicle": config.vehicle,
                "sample_rate": config.sample_rate,
                "margin": config.margin,
                "model_b64": model_b64,
            },
        )
        if status != 200:
            raise FleetError(f"register {tenant!r} failed ({status}): {body}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def _tally(
    result: _TenantResult, verdicts: list[dict[str, Any]], elapsed: float
) -> None:
    result.chunks += 1
    result.frames += len(verdicts)
    result.anomalies += sum(v["verdict"] == "anomaly" for v in verdicts)
    if result.latencies is not None:
        result.latencies.append(elapsed)
    if result.verdicts is not None:
        result.verdicts.extend(verdicts)


async def _drive_tenant(
    host: str,
    port: int,
    tenant: str,
    index: int,
    config: LoadgenConfig,
    executor: ThreadPoolExecutor,
    use_ws: bool,
) -> _TenantResult:
    """Stream one tenant's whole session over one persistent connection.

    Each tenant alternates chunk synthesis (on the client executor, so
    the event loop stays free) with one timed wire round-trip — the
    shape of a real vehicle's steady send/ack loop.
    """
    result = _TenantResult(
        tenant=tenant,
        transport="ws" if use_ws else "rest",
        latencies=[],
    )
    loop = asyncio.get_running_loop()
    iterator = await loop.run_in_executor(
        executor, lambda: _chunk_iter(config, index)
    )
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if use_ws:
            await client_ws_connect(
                reader, writer, f"/tenants/{tenant}/stream", key_seed=index
            )
        seq = 0
        while True:
            chunk = await loop.run_in_executor(
                executor, lambda: next(iterator, None)
            )
            if chunk is None:
                break
            if use_ws:
                frame = json.dumps(
                    {"type": "chunk", **encode_chunk(chunk)}, sort_keys=True
                ).encode("utf-8")
                started = monotonic()
                writer.write(
                    encode_ws_frame(
                        frame, opcode=OP_TEXT, mask_key=_mask_for(tenant, seq)
                    )
                )
                await writer.drain()
                opcode, payload = await read_ws_frame(reader)
                elapsed = monotonic() - started
                if opcode == OP_CLOSE:
                    raise FleetError(f"gateway closed {tenant!r} mid-stream")
                reply = json.loads(payload.decode("utf-8"))
                if reply.get("type") != "verdicts":
                    raise FleetError(f"tenant {tenant!r}: {reply}")
                _tally(result, reply["verdicts"], elapsed)
            else:
                started = monotonic()
                status, body = await http_json(
                    reader,
                    writer,
                    "POST",
                    f"/tenants/{tenant}/ingest",
                    encode_chunk(chunk),
                )
                elapsed = monotonic() - started
                if status != 200:
                    raise FleetError(
                        f"ingest {tenant!r} failed ({status}): {body}"
                    )
                _tally(result, body["verdicts"], elapsed)
            seq += 1
        if use_ws:
            writer.write(
                encode_ws_frame(
                    b"", opcode=OP_CLOSE, mask_key=_mask_for(tenant, -1)
                )
            )
            await writer.drain()
            await read_ws_frame(reader)  # close echo
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    return result


async def _rehydration_check(
    host: str,
    port: int,
    model_b64: str,
    config: LoadgenConfig,
    executor: ThreadPoolExecutor,
) -> dict[str, Any]:
    """Two tenants, same traffic; one evicted halfway.  Verdicts must match."""
    loop = asyncio.get_running_loop()
    index = config.tenants + 1  # seed outside the fleet's range
    chunks = await loop.run_in_executor(
        executor, lambda: list(_chunk_iter(config, index))
    )
    reader, writer = await asyncio.open_connection(host, port)
    try:
        sequences: dict[str, list[dict[str, Any]]] = {}
        for name in ("loadgen-ctrl", "loadgen-evictee"):
            status, body = await http_json(
                reader,
                writer,
                "POST",
                "/tenants",
                {
                    "tenant": name,
                    "vehicle": config.vehicle,
                    "sample_rate": config.sample_rate,
                    "margin": config.margin,
                    "model_b64": model_b64,
                },
            )
            if status != 200:
                raise FleetError(f"register {name!r} failed ({status}): {body}")
            collected: list[dict[str, Any]] = []
            halfway = len(chunks) // 2
            for position, chunk in enumerate(chunks):
                if name == "loadgen-evictee" and position == halfway:
                    status, body = await http_json(
                        reader, writer, "POST", f"/tenants/{name}/evict"
                    )
                    if status != 200:
                        raise FleetError(f"evict failed ({status}): {body}")
                status, body = await http_json(
                    reader,
                    writer,
                    "POST",
                    f"/tenants/{name}/ingest",
                    encode_chunk(chunk),
                )
                if status != 200:
                    raise FleetError(
                        f"ingest {name!r} failed ({status}): {body}"
                    )
                collected.extend(body["verdicts"])
            sequences[name] = collected
        control = json.dumps(sequences["loadgen-ctrl"], sort_keys=True)
        evicted = json.dumps(sequences["loadgen-evictee"], sort_keys=True)
        for name in ("loadgen-ctrl", "loadgen-evictee"):
            await http_json(reader, writer, "DELETE", f"/tenants/{name}")
        return {
            "identical": control == evicted,
            "verdicts": len(sequences["loadgen-ctrl"]),
        }
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _run(host: str, port: int, config: LoadgenConfig) -> dict[str, Any]:
    if config.tenants < 1:
        raise FleetError(f"need at least one tenant, got {config.tenants}")
    executor = ThreadPoolExecutor(
        max_workers=min(8, config.tenants),
        thread_name_prefix="vprofile-loadgen",
    )
    try:
        loop = asyncio.get_running_loop()
        model = await loop.run_in_executor(
            executor, lambda: train_shared_model(config)
        )
        model_b64 = await loop.run_in_executor(
            executor, lambda: model_to_b64(model)
        )

        tenants = [f"loadgen-{i}" for i in range(config.tenants)]
        for name in tenants:
            await _register(host, port, name, model_b64, config)

        ws_cutoff = int(round(config.ws_fraction * config.tenants))
        started = monotonic()
        results = await asyncio.gather(
            *(
                _drive_tenant(
                    host, port, name, i, config, executor, use_ws=i < ws_cutoff
                )
                for i, name in enumerate(tenants)
            )
        )
        elapsed = monotonic() - started

        rehydration = None
        if config.check_rehydration:
            rehydration = await _rehydration_check(
                host, port, model_b64, config, executor
            )

        latencies = np.array(
            [l for r in results for l in (r.latencies or [])], dtype=float
        )
        frames = sum(r.frames for r in results)
        chunks = sum(r.chunks for r in results)
        cores = os.cpu_count() or 1
        report: dict[str, Any] = {
            "tenants": config.tenants,
            "ws_tenants": ws_cutoff,
            "rest_tenants": config.tenants - ws_cutoff,
            "duration_s": config.duration_s,
            "chunk_samples": config.chunk_samples,
            "seed": config.seed,
            "elapsed_s": float(elapsed),
            "chunks": chunks,
            "frames": frames,
            "anomalies": sum(r.anomalies for r in results),
            "frames_per_s": float(frames / elapsed) if elapsed > 0 else 0.0,
            "chunks_per_s": float(chunks / elapsed) if elapsed > 0 else 0.0,
            "cores": cores,
            "tenants_per_core": float(config.tenants / cores),
            "latency": {
                "count": int(latencies.size),
                "p50_ms": float(np.percentile(latencies, 50) * 1e3)
                if latencies.size
                else None,
                "p99_ms": float(np.percentile(latencies, 99) * 1e3)
                if latencies.size
                else None,
                "mean_ms": float(latencies.mean() * 1e3)
                if latencies.size
                else None,
                "max_ms": float(latencies.max() * 1e3)
                if latencies.size
                else None,
            },
            "rehydration": rehydration,
        }
        return report
    finally:
        executor.shutdown(wait=True)


def run_loadgen(host: str, port: int, config: LoadgenConfig) -> dict[str, Any]:
    """Drive a full load-generator run against ``host:port``; blocking."""
    return asyncio.run(_run(host, port, config))


def format_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_loadgen` output."""
    lines = [
        "fleet gateway load test",
        f"  tenants:     {report['tenants']} "
        f"({report['ws_tenants']} ws, {report['rest_tenants']} rest), "
        f"{report['tenants_per_core']:.1f} per core "
        f"({report['cores']} cores)",
        f"  traffic:     {report['duration_s']:g}s x "
        f"{report['chunk_samples']} samples/chunk, seed {report['seed']}",
        f"  streamed:    {report['chunks']} chunks, {report['frames']} frames "
        f"({report['anomalies']} anomalies) in {report['elapsed_s']:.2f}s",
        f"  throughput:  {report['frames_per_s']:.0f} frames/s aggregate",
    ]
    latency = report["latency"]
    if latency["count"]:
        lines.append(
            f"  latency:     p50 {latency['p50_ms']:.2f} ms, "
            f"p99 {latency['p99_ms']:.2f} ms, "
            f"max {latency['max_ms']:.2f} ms "
            f"({latency['count']} chunk round-trips)"
        )
    rehydration = report.get("rehydration")
    if rehydration is not None:
        verdict = "byte-identical" if rehydration["identical"] else "DIVERGED"
        lines.append(
            f"  rehydration: {verdict} across eviction "
            f"({rehydration['verdicts']} verdicts compared)"
        )
    return "\n".join(lines) + "\n"


__all__ = [
    "LoadgenConfig",
    "format_report",
    "run_loadgen",
    "train_shared_model",
]
