"""Multi-tenant detection gateway: many vehicles, one service.

Everything below :mod:`repro.stream` assumes one vehicle per process.
This subsystem lifts that to a fleet: an asyncio gateway
(:mod:`repro.fleet.gateway`) accepts sample streams from many vehicles
at once — REST ingest or persistent WebSocket connections, both spoken
by the stdlib-only codec in :mod:`repro.fleet.protocol` — and routes
each tenant to its own :class:`~repro.fleet.tenant.TenantEngine`, the
single-vehicle slice of the streaming runtime (incremental extraction,
vectorised detection, Algorithm-4 online updates, profile health).

Memory stays bounded by the supervisor
(:mod:`repro.fleet.supervisor`): beyond ``max_resident`` tenants, the
least-recently-active one is evicted to a
:mod:`repro.stream.checkpoint` directory and rehydrated on its next
request — byte-identically, so eviction never perturbs a verdict
stream.  :mod:`repro.fleet.loadgen` is the deterministic N-vehicle
client used by the benchmarks and the CI smoke test.

Typical use::

    config = GatewayConfig(state_dir="fleet-state", max_resident=32)
    with GatewayThread(config) as server:
        report = run_loadgen(server.host, server.port, LoadgenConfig())
    print(format_report(report))
"""

from repro.fleet.gateway import (
    ANOMALIES_METRIC,
    CHUNKS_METRIC,
    FRAMES_METRIC,
    REQUESTS_METRIC,
    VERDICT_LATENCY_METRIC,
    WS_CONNECTIONS_METRIC,
    FleetGateway,
    GatewayConfig,
    GatewayThread,
)
from repro.fleet.loadgen import (
    LoadgenConfig,
    format_report,
    run_loadgen,
    train_shared_model,
)
from repro.fleet.protocol import ProtocolError
from repro.fleet.supervisor import (
    EVICTIONS_METRIC,
    REHYDRATIONS_METRIC,
    TENANTS_METRIC,
    FleetSupervisor,
    TenantRecord,
)
from repro.fleet.tenant import (
    CaptureParams,
    TenantEngine,
    builtin_vehicle,
    decode_chunk,
    encode_chunk,
    model_from_b64,
    model_to_b64,
)

__all__ = [
    "ANOMALIES_METRIC",
    "CHUNKS_METRIC",
    "CaptureParams",
    "EVICTIONS_METRIC",
    "FRAMES_METRIC",
    "FleetGateway",
    "FleetSupervisor",
    "GatewayConfig",
    "GatewayThread",
    "LoadgenConfig",
    "ProtocolError",
    "REHYDRATIONS_METRIC",
    "REQUESTS_METRIC",
    "TENANTS_METRIC",
    "TenantEngine",
    "TenantRecord",
    "VERDICT_LATENCY_METRIC",
    "WS_CONNECTIONS_METRIC",
    "builtin_vehicle",
    "decode_chunk",
    "encode_chunk",
    "format_report",
    "model_from_b64",
    "model_to_b64",
    "run_loadgen",
    "train_shared_model",
]
