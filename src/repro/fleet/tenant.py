"""Per-vehicle detection state inside the fleet gateway.

One :class:`TenantEngine` is the single-vehicle slice of the streaming
runtime: the same :class:`~repro.stream.extractor.StreamingExtractor`
carrying Algorithm-1 state across chunk boundaries, the same vectorised
:class:`~repro.core.detection.Detector` batch path, the same Algorithm-4
:class:`~repro.core.online_update.OnlineUpdater` folding OK verdicts
into the tenant's *own* profile store.  Because every piece is the
``repro.stream`` machinery, a tenant evicted to a
:mod:`repro.stream.checkpoint` directory and rehydrated later produces
the byte-identical verdict sequence an uninterrupted tenant would —
the property the fleet supervisor's residency budget leans on.

Engines are driven from the gateway's thread executor, one chunk at a
time per tenant (the per-tenant asyncio lock serialises access), so the
engine itself holds no locks.

The module also owns the wire codec for chunks and verdicts: JSON
payloads with base64 sample blocks, floats carried at full ``repr``
precision so the byte-identical guarantee survives the HTTP hop.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.detection import Detector
from repro.core.model import Metric, VProfileModel
from repro.core.online_update import OnlineUpdater
from repro.errors import FleetError
from repro.obs.health import ProfileHealthMonitor
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.chunks import SampleChunk
from repro.stream.extractor import StreamingExtractor
from repro.stream.workers import result_from_batch
from repro.vehicles.profiles import VehicleConfig, sterling_acterra, vehicle_a, vehicle_b

#: Built-in synthetic vehicles a tenant may register as.
BUILTIN_VEHICLES: Mapping[str, Callable[[], VehicleConfig]] = {
    "a": vehicle_a,
    "b": vehicle_b,
    "sterling": sterling_acterra,
}

#: Sample dtypes accepted on the ingest path.
ALLOWED_DTYPES = frozenset({"int16", "int32", "int64", "uint16", "uint8"})

#: Sidecar file carrying tenant state the stream checkpoint does not.
TENANT_META_FILE = "tenant.json"


@dataclass(frozen=True)
class CaptureParams:
    """Digitizer parameters, fixed per tenant at registration."""

    sample_rate: float
    resolution_bits: int
    bitrate: float

    def to_payload(self) -> dict[str, float | int]:
        return {
            "sample_rate": self.sample_rate,
            "resolution_bits": self.resolution_bits,
            "bitrate": self.bitrate,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CaptureParams":
        try:
            return cls(
                sample_rate=float(payload["sample_rate"]),
                resolution_bits=int(payload["resolution_bits"]),
                bitrate=float(payload["bitrate"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"bad capture parameters: {exc!r}") from exc

    @classmethod
    def for_vehicle(cls, vehicle: VehicleConfig) -> "CaptureParams":
        return cls(
            sample_rate=vehicle.sample_rate,
            resolution_bits=vehicle.resolution_bits,
            bitrate=vehicle.bitrate,
        )


def builtin_vehicle(name: str, sample_rate: float | None = None) -> VehicleConfig:
    """A built-in vehicle, optionally at a reduced capture rate."""
    try:
        factory = BUILTIN_VEHICLES[name]
    except KeyError:
        raise FleetError(
            f"unknown vehicle {name!r}; choose from "
            f"{', '.join(sorted(BUILTIN_VEHICLES))}"
        ) from None
    vehicle = factory()
    if sample_rate is not None:
        from dataclasses import replace

        vehicle = replace(vehicle, sample_rate=float(sample_rate))
    return vehicle


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------

def encode_chunk(chunk: SampleChunk) -> dict[str, Any]:
    """JSON-able ingest payload for one sample chunk."""
    counts = np.ascontiguousarray(chunk.counts)
    return {
        "seq": int(chunk.seq),
        "start_s": float(chunk.start_s),
        "dtype": str(counts.dtype),
        "counts": base64.b64encode(counts.tobytes()).decode("ascii"),
    }


def decode_chunk(payload: Mapping[str, Any], params: CaptureParams) -> SampleChunk:
    """Rebuild a :class:`SampleChunk` from its wire payload."""
    try:
        seq = int(payload["seq"])
        start_s = float(payload["start_s"])
        dtype_name = str(payload.get("dtype", "int32"))
        raw = base64.b64decode(str(payload["counts"]), validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise FleetError(f"malformed chunk payload: {exc!r}") from exc
    if dtype_name not in ALLOWED_DTYPES:
        raise FleetError(
            f"unsupported sample dtype {dtype_name!r}; "
            f"allowed: {', '.join(sorted(ALLOWED_DTYPES))}"
        )
    dtype = np.dtype(dtype_name)
    if len(raw) % dtype.itemsize:
        raise FleetError(
            f"chunk byte length {len(raw)} is not a multiple of "
            f"{dtype.itemsize}-byte {dtype_name} samples"
        )
    counts = np.frombuffer(raw, dtype=dtype)
    return SampleChunk(
        counts=counts,
        seq=seq,
        start_s=start_s,
        sample_rate=params.sample_rate,
        resolution_bits=params.resolution_bits,
        bitrate=params.bitrate,
    )


def model_to_b64(model: VProfileModel) -> str:
    """Serialise a profile store for the register payload."""
    import io

    buffer = io.BytesIO()
    model.save(buffer)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def model_from_b64(text: str) -> VProfileModel:
    """Load an uploaded profile store (each call returns a fresh copy)."""
    import io

    try:
        raw = base64.b64decode(text, validate=True)
        return VProfileModel.load(io.BytesIO(raw))
    except FleetError:
        raise
    except Exception as exc:  # zipfile/numpy raise a zoo of types here
        raise FleetError(f"cannot decode uploaded model: {exc!r}") from exc


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class TenantEngine:
    """One vehicle's streaming detection state.

    Parameters
    ----------
    tenant_id:
        Stable identifier; labels metadata and checkpoint sidecars.
    vehicle:
        Registered vehicle name (informational; the model carries the
        actual profiles).
    model:
        The tenant's private profile store — mutated in place by online
        updates, serialised whole on eviction.
    params:
        Digitizer parameters every ingested chunk is interpreted with.
    margin / online_update / retrain_bound:
        Detection margin and Algorithm-4 settings, as in
        :class:`~repro.core.pipeline.PipelineConfig`.
    verdict_ring:
        How many recent verdicts ``/verdicts`` can page through.  The
        ring is in-memory only: verdicts are delivered inline on every
        ingest response, the ring is a convenience for late readers.
    """

    def __init__(
        self,
        tenant_id: str,
        *,
        vehicle: str,
        model: VProfileModel,
        params: CaptureParams,
        margin: float = 5.0,
        online_update: bool = False,
        retrain_bound: int | None = None,
        verdict_ring: int = 4096,
    ) -> None:
        self.tenant_id = tenant_id
        self.vehicle = vehicle
        self.params = params
        self.margin = float(margin)
        self.online_update = bool(online_update)
        self.retrain_bound = retrain_bound
        self.detector = Detector(model, margin=self.margin)
        self.updater: OnlineUpdater | None = None
        if self.online_update:
            self.updater = OnlineUpdater(model, retrain_bound)
        self.extractor = StreamingExtractor(
            metadata={"tenant": tenant_id, "vehicle": vehicle}
        )
        # Health pins inverse-covariance baselines; Euclidean models
        # have none, so those tenants run without drift monitoring.
        self.health: ProfileHealthMonitor | None = None
        if model.metric is Metric.MAHALANOBIS:
            self.health = ProfileHealthMonitor(model)
        if self.updater is not None and self.health is not None:
            self.updater.observer = self.health.record_update
        self.next_chunk = 0
        self.next_seq = 0
        self.chunks = 0
        self.samples = 0
        self.frames = 0
        self.anomalies = 0
        self.updated = 0
        self.verdict_ring = int(verdict_ring)
        self._verdicts: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Hot path (runs on the gateway's thread executor)
    # ------------------------------------------------------------------
    def process_chunk(self, chunk: SampleChunk) -> list[dict[str, Any]]:
        """Classify every message completed by ``chunk``; return verdicts.

        Chunks must arrive in order: the incremental extractor carries
        sample state across boundaries, so a gap or replay would
        silently corrupt every later verdict.
        """
        if chunk.seq != self.next_chunk:
            raise FleetError(
                f"tenant {self.tenant_id}: out-of-order chunk "
                f"{chunk.seq} (expected {self.next_chunk})"
            )
        messages = self.extractor.push(chunk)
        self.next_chunk += 1
        self.chunks += 1
        self.samples += len(chunk)
        if not messages:
            return []
        vectors = np.stack([m.edge_set.vector for m in messages])
        sas = np.array(
            [m.edge_set.source_address for m in messages], dtype=np.int64
        )
        detection = self.detector.classify_batch(vectors, sas)
        verdicts: list[dict[str, Any]] = []
        for row, message in enumerate(messages):
            result = result_from_batch(detection, row, int(sas[row]), self.margin)
            if self.health is not None:
                self.health.record_verdict(result.source_address, result.is_anomaly)
            if not result.is_anomaly and self.updater is not None:
                report = self.updater.update([message.edge_set])
                self.updated += sum(report.updated.values())
            verdict = {
                "seq": self.next_seq,
                "sa": int(result.source_address),
                "verdict": "anomaly" if result.is_anomaly else "ok",
                "reason": result.reason.value if result.reason else None,
                "expected_cluster": result.expected_cluster,
                "predicted_cluster": result.predicted_cluster,
                "min_distance": result.min_distance,
                "slack": result.slack,
                "start_s": float(message.start_s),
            }
            self.next_seq += 1
            self.frames += 1
            if result.is_anomaly:
                self.anomalies += 1
            verdicts.append(verdict)
        self._verdicts.extend(verdicts)
        overflow = len(self._verdicts) - self.verdict_ring
        if overflow > 0:
            del self._verdicts[:overflow]
        return verdicts

    def recent_verdicts(
        self, since: int = 0, limit: int = 256
    ) -> list[dict[str, Any]]:
        """Ring slice: verdicts with ``seq >= since``, at most ``limit``."""
        out = [v for v in self._verdicts if v["seq"] >= since]
        return out[: max(0, int(limit))]

    def status(self) -> dict[str, Any]:
        """The ``/tenants/<id>`` payload."""
        return {
            "tenant": self.tenant_id,
            "vehicle": self.vehicle,
            "margin": self.margin,
            "online_update": self.online_update,
            "chunks": self.chunks,
            "samples": self.samples,
            "frames": self.frames,
            "anomalies": self.anomalies,
            "online_updates": self.updated,
            "extraction_failures": self.extractor.stats.extraction_failures,
            "next_chunk": self.next_chunk,
            "next_seq": self.next_seq,
            **self.params.to_payload(),
        }

    def health_report(self) -> dict[str, Any]:
        """The ``/tenants/<id>/health`` payload."""
        if self.health is None:
            return {"overall": "unavailable", "sources": {}}
        return self.health.verdicts()

    # ------------------------------------------------------------------
    # Eviction / rehydration (also executor-side)
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path) -> None:
        """Persist everything needed to continue this tenant elsewhere."""
        directory = Path(directory)
        # A tenant evicted before its first chunk has no segmentation
        # state to carry; a fresh extractor on rehydrate is equivalent.
        extractor_state = (
            self.extractor.state_dict() if self.chunks else None
        )
        save_checkpoint(
            directory,
            model=self.detector.model,
            extraction=self.extractor.extraction,
            extractor_state=extractor_state,
            next_chunk=self.next_chunk,
            next_seq=self.next_seq,
            margin=self.margin,
        )
        meta = {
            "tenant": self.tenant_id,
            "vehicle": self.vehicle,
            "online_update": self.online_update,
            "retrain_bound": self.retrain_bound,
            "verdict_ring": self.verdict_ring,
            "chunks": self.chunks,
            "samples": self.samples,
            "frames": self.frames,
            "anomalies": self.anomalies,
            "online_updates": self.updated,
            **self.params.to_payload(),
        }
        (directory / TENANT_META_FILE).write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def rehydrate(cls, directory: str | Path) -> "TenantEngine":
        """Rebuild an engine from :meth:`checkpoint` output.

        The restored engine continues the verdict sequence exactly where
        the evicted one stopped (same model bytes, same extractor state,
        same sequence counters) — pinned by the eviction equivalence
        property tests.
        """
        directory = Path(directory)
        meta_path = directory / TENANT_META_FILE
        if not meta_path.exists():
            raise FleetError(f"not a tenant checkpoint: {directory}")
        try:
            meta = json.loads(meta_path.read_text())
        except json.JSONDecodeError as exc:
            raise FleetError(f"corrupt tenant sidecar: {exc}") from exc
        checkpoint = load_checkpoint(directory)
        params = CaptureParams.from_payload(meta)
        bound = meta.get("retrain_bound")
        engine = cls(
            str(meta["tenant"]),
            vehicle=str(meta.get("vehicle", "?")),
            model=checkpoint.model,
            params=params,
            margin=checkpoint.margin,
            online_update=bool(meta.get("online_update", False)),
            retrain_bound=None if bound is None else int(bound),
            verdict_ring=int(meta.get("verdict_ring", 4096)),
        )
        if checkpoint.extractor_state is not None:
            engine.extractor.load_state(checkpoint.extractor_state)
            engine.extractor.extraction = checkpoint.extraction
        elif checkpoint.extraction is not None:
            engine.extractor.extraction = checkpoint.extraction
        engine.next_chunk = checkpoint.next_chunk
        engine.next_seq = checkpoint.next_seq
        engine.chunks = int(meta.get("chunks", 0))
        engine.samples = int(meta.get("samples", 0))
        engine.frames = int(meta.get("frames", 0))
        engine.anomalies = int(meta.get("anomalies", 0))
        engine.updated = int(meta.get("online_updates", 0))
        return engine


__all__ = [
    "ALLOWED_DTYPES",
    "BUILTIN_VEHICLES",
    "CaptureParams",
    "TENANT_META_FILE",
    "TenantEngine",
    "builtin_vehicle",
    "decode_chunk",
    "encode_chunk",
    "model_from_b64",
    "model_to_b64",
]
