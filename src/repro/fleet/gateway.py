"""The asyncio multi-tenant detection gateway.

One process, one event loop, many vehicles: each registered tenant
streams digitizer chunks in (REST ``POST /tenants/<id>/ingest`` or a
persistent WebSocket) and gets that chunk's verdicts back on the same
round-trip.  The event loop only parses and routes; every CPU-heavy
step — model training, chunk classification, checkpoint serialisation —
runs on a thread executor while the tenant's asyncio lock is held, so
one slow vehicle never stalls the others.

Routes
------
==== =========================== ==========================================
POST ``/tenants``                register a vehicle (upload or train model)
GET  ``/tenants``                list tenants and residency
GET  ``/tenants/<id>``           per-tenant status counters
GET  ``/tenants/<id>/health``    per-SA profile-health verdicts
GET  ``/tenants/<id>/verdicts``  recent verdict ring (``?since=&limit=``)
POST ``/tenants/<id>/ingest``    one sample chunk in, its verdicts out
POST ``/tenants/<id>/evict``     checkpoint the tenant out immediately
DEL  ``/tenants/<id>``           forget the tenant and its checkpoint
GET  ``/tenants/<id>/stream``    WebSocket upgrade (chunk/verdict frames)
GET  ``/fleet``                  aggregate fleet summary
GET  ``/metrics``                Prometheus text exposition
==== =========================== ==========================================

Shutdown is graceful: :meth:`FleetGateway.drain` flips the gateway into
a draining state (ingest answers 503), waits for in-flight chunks to
finish, and checkpoints every resident tenant so no accepted sample is
lost across a restart.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.model import VProfileModel
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.errors import FleetError, ReproError
from repro.fleet import protocol
from repro.fleet.protocol import (
    HttpRequest,
    ProtocolError,
    encode_ws_frame,
    read_http_request,
    read_ws_frame,
    render_json,
    render_response,
    render_ws_handshake,
)
from repro.fleet.supervisor import FleetSupervisor, TenantRecord
from repro.fleet.tenant import (
    CaptureParams,
    TenantEngine,
    builtin_vehicle,
    decode_chunk,
    model_from_b64,
)
from repro.obs.clock import monotonic
from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE
from repro.vehicles.dataset import capture_session

#: Chunks accepted across all tenants.
CHUNKS_METRIC = "vprofile_fleet_chunks_total"
#: Frames classified across all tenants.
FRAMES_METRIC = "vprofile_fleet_frames_total"
#: Anomalous frames across all tenants.
ANOMALIES_METRIC = "vprofile_fleet_anomalies_total"
#: Ingest-to-verdict latency of one chunk through the gateway.
VERDICT_LATENCY_METRIC = "vprofile_fleet_verdict_seconds"
#: HTTP requests served, by route class and status.
REQUESTS_METRIC = "vprofile_fleet_requests_total"
#: Currently open WebSocket streaming sessions.
WS_CONNECTIONS_METRIC = "vprofile_fleet_ws_connections"


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway deployment knobs.

    Attributes
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (the chosen one
        is :attr:`FleetGateway.port`).
    state_dir:
        Checkpoint spill directory for evicted tenants; ``None``
        disables eviction (every tenant stays resident).
    max_resident:
        Residency budget enforced by the supervisor.
    executor_workers:
        Thread-pool size for the blocking work; ``None`` uses the
        :class:`~concurrent.futures.ThreadPoolExecutor` default.
    train_duration_limit_s:
        Upper bound on server-side training captures, so one register
        call cannot monopolise the executor for minutes.
    """

    host: str = "127.0.0.1"
    port: int = 0
    state_dir: str | Path | None = None
    max_resident: int = 64
    executor_workers: int | None = None
    train_duration_limit_s: float = 30.0


class FleetGateway:
    """The asyncio server: owns the supervisor, executor and routes."""

    def __init__(
        self,
        config: GatewayConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.config = config or GatewayConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="vprofile-fleet",
        )
        self.supervisor = FleetSupervisor(
            self.registry,
            state_dir=self.config.state_dir,
            max_resident=self.config.max_resident,
            executor=self.executor,
        )
        self.draining = False
        self._server: asyncio.Server | None = None
        self._sessions: set[asyncio.Task[None]] = set()
        self._auto_id = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetGateway":
        if self._server is not None:
            raise FleetError("gateway already started")
        try:
            self._server = await asyncio.start_server(
                self._serve_connection, self.config.host, self.config.port
            )
        except OSError as exc:
            raise FleetError(
                f"cannot bind gateway to "
                f"{self.config.host}:{self.config.port}: {exc}"
            ) from exc
        # A drained predecessor leaves checkpoints behind; re-list them
        # so the restarted gateway serves the same fleet.
        self.supervisor.adopt_checkpoints()
        return self

    @property
    def host(self) -> str:
        if self._server is None:
            raise FleetError("gateway is not started")
        return str(self._server.sockets[0].getsockname()[0])

    @property
    def port(self) -> int:
        if self._server is None:
            raise FleetError("gateway is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def drain(self) -> int:
        """Refuse new work, finish in-flight chunks, checkpoint tenants.

        Returns the number of tenants flushed to disk.  Idempotent: a
        second drain finds nothing resident and flushes zero.
        """
        self.draining = True
        # In-flight ingests hold their tenant lock; evict() waits on the
        # same lock, so the per-tenant flush below is the barrier that
        # lets them finish before their state is serialised.
        return await self.supervisor.drain()

    async def stop(self) -> None:
        """Stop accepting connections and tear the server down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        self.executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._sessions.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_http_request(reader)
            except ProtocolError as exc:
                writer.write(
                    render_json(400, {"error": str(exc)}, keep_alive=False)
                )
                await writer.drain()
                return
            if request is None:
                return
            if request.is_websocket_upgrade:
                await self._websocket_session(request, reader, writer)
                return
            status, response = await self._dispatch(request)
            self._count_request(request, status)
            writer.write(response)
            await writer.drain()
            if not request.keep_alive:
                return

    def _count_request(self, request: HttpRequest, status: int) -> None:
        if not self.registry.enabled:
            return
        route = request.path.split("/")[1] if "/" in request.path else ""
        self.registry.counter(
            REQUESTS_METRIC,
            help="HTTP requests served by the fleet gateway",
            route=route or "root",
            status=str(status),
        ).inc()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> tuple[int, bytes]:
        keep = request.keep_alive
        try:
            status, payload = await self._route(request)
        except ProtocolError as exc:
            status, payload = 400, {"error": str(exc)}
        except FleetError as exc:
            code = 409 if "out-of-order" in str(exc) else 400
            if "unknown tenant" in str(exc):
                code = 404
            status, payload = code, {"error": str(exc)}
        except ReproError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # route bugs must not kill the loop
            status, payload = 500, {"error": repr(exc)}
        if isinstance(payload, bytes):
            return status, payload
        return status, render_json(status, payload, keep_alive=keep)

    async def _route(self, request: HttpRequest) -> tuple[int, Any]:
        parts = [p for p in request.path.split("/") if p]
        if request.path == "/metrics" and request.method == "GET":
            body = to_prometheus(self.registry).encode("utf-8")
            return 200, render_response(
                200,
                body,
                content_type=PROMETHEUS_CONTENT_TYPE,
                keep_alive=request.keep_alive,
            )
        if request.path == "/fleet" and request.method == "GET":
            return 200, self._fleet_summary()
        if request.path == "/tenants":
            if request.method == "POST":
                return await self._register(request)
            if request.method == "GET":
                return 200, self._list_tenants()
            return 405, {"error": f"{request.method} not allowed on /tenants"}
        if parts and parts[0] == "tenants" and len(parts) >= 2:
            return await self._tenant_route(request, parts[1], parts[2:])
        return 404, {
            "error": f"unknown route {request.path!r}",
            "routes": ["/tenants", "/fleet", "/metrics"],
        }

    async def _tenant_route(
        self, request: HttpRequest, tenant_id: str, rest: list[str]
    ) -> tuple[int, Any]:
        record = self.supervisor.record(tenant_id)
        action = rest[0] if rest else ""
        if request.method == "GET" and action in ("", "status"):
            return 200, await self._tenant_status(record)
        if request.method == "GET" and action == "health":
            async with record.lock:
                engine = await self.supervisor.resident_engine(record)
                return 200, engine.health_report()
        if request.method == "GET" and action == "verdicts":
            since = _int_query(request, "since", 0)
            limit = _int_query(request, "limit", 256)
            async with record.lock:
                engine = await self.supervisor.resident_engine(record)
                return 200, {
                    "tenant": tenant_id,
                    "verdicts": engine.recent_verdicts(since, limit),
                }
        if request.method == "POST" and action == "ingest":
            return await self._ingest(record, request.json())
        if request.method == "POST" and action == "evict":
            await self.supervisor.evict(record)
            return 200, {"tenant": tenant_id, "resident": False}
        if request.method == "DELETE" and not action:
            await self.supervisor.remove(tenant_id)
            return 200, {"tenant": tenant_id, "removed": True}
        return 405, {
            "error": f"{request.method} {request.path} is not a fleet route"
        }

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    async def _register(self, request: HttpRequest) -> tuple[int, Any]:
        if self.draining:
            return 503, {"error": "gateway is draining"}
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError("register payload must be a JSON object")
        tenant_id = str(payload.get("tenant") or self._next_tenant_id())
        if "/" in tenant_id or tenant_id in (".", ".."):
            raise FleetError(f"invalid tenant id: {tenant_id!r}")
        if tenant_id in self.supervisor.tenants:
            return 409, {"error": f"tenant already registered: {tenant_id!r}"}
        vehicle_name = str(payload.get("vehicle", "sterling"))
        sample_rate = payload.get("sample_rate")
        vehicle = builtin_vehicle(
            vehicle_name,
            None if sample_rate is None else float(sample_rate),
        )
        params = CaptureParams.for_vehicle(vehicle)
        margin = float(payload.get("margin", 5.0))
        online_update = bool(payload.get("online_update", False))
        bound = payload.get("retrain_bound")
        retrain_bound = None if bound is None else int(bound)

        loop = asyncio.get_running_loop()
        if "model_b64" in payload:
            model_text = str(payload["model_b64"])
            model = await loop.run_in_executor(
                self.executor, lambda: model_from_b64(model_text)
            )
        elif "train" in payload:
            spec = payload["train"]
            if not isinstance(spec, dict):
                raise ProtocolError("train spec must be a JSON object")
            duration_s = float(spec.get("duration_s", 4.0))
            seed = int(spec.get("seed", 0))
            limit = self.config.train_duration_limit_s
            if not 0 < duration_s <= limit:
                raise FleetError(
                    f"train duration must be in (0, {limit:g}] seconds"
                )
            model = await loop.run_in_executor(
                self.executor,
                lambda: _train_model(vehicle, duration_s, seed, margin),
            )
        else:
            raise FleetError(
                "register payload needs 'model_b64' or 'train'"
            )

        engine = TenantEngine(
            tenant_id,
            vehicle=vehicle_name,
            model=model,
            params=params,
            margin=margin,
            online_update=online_update,
            retrain_bound=retrain_bound,
        )
        record = await self.supervisor.register(tenant_id, engine)
        return 200, await self._tenant_status(record)

    def _next_tenant_id(self) -> str:
        while True:
            self._auto_id += 1
            candidate = f"vehicle-{self._auto_id}"
            if candidate not in self.supervisor.tenants:
                return candidate

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    async def _ingest(
        self, record: TenantRecord, payload: Any
    ) -> tuple[int, Any]:
        if self.draining:
            return 503, {"error": "gateway is draining"}
        if not isinstance(payload, dict):
            raise ProtocolError("ingest payload must be a JSON object")
        loop = asyncio.get_running_loop()
        started = monotonic()
        async with record.lock:
            engine = await self.supervisor.resident_engine(record)
            chunk = decode_chunk(payload, engine.params)
            verdicts = await loop.run_in_executor(
                self.executor, lambda: engine.process_chunk(chunk)
            )
        self._observe_ingest(record.tenant_id, verdicts, monotonic() - started)
        return 200, {
            "tenant": record.tenant_id,
            "chunk": chunk.seq,
            "verdicts": verdicts,
        }

    def _observe_ingest(
        self, tenant_id: str, verdicts: list[dict[str, Any]], elapsed: float
    ) -> None:
        if not self.registry.enabled:
            return
        self.registry.counter(
            CHUNKS_METRIC, help="Chunks accepted across all tenants"
        ).inc()
        if verdicts:
            self.registry.counter(
                FRAMES_METRIC, help="Frames classified across all tenants"
            ).inc(len(verdicts))
            anomalies = sum(v["verdict"] == "anomaly" for v in verdicts)
            if anomalies:
                self.registry.counter(
                    ANOMALIES_METRIC,
                    help="Anomalous frames across all tenants",
                ).inc(anomalies)
        self.registry.histogram(
            VERDICT_LATENCY_METRIC,
            help="Ingest-to-verdict latency of one chunk through the gateway",
        ).observe(elapsed)

    # ------------------------------------------------------------------
    # WebSocket streaming sessions
    # ------------------------------------------------------------------
    async def _websocket_session(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = [p for p in request.path.split("/") if p]
        valid = (
            len(parts) == 3
            and parts[0] == "tenants"
            and parts[2] == "stream"
            and "sec-websocket-key" in request.headers
        )
        if not valid:
            writer.write(
                render_json(
                    400,
                    {"error": "WebSocket upgrades live at /tenants/<id>/stream"},
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        try:
            record = self.supervisor.record(parts[1])
        except FleetError as exc:
            writer.write(render_json(404, {"error": str(exc)}, keep_alive=False))
            await writer.drain()
            return
        writer.write(render_ws_handshake(request.headers["sec-websocket-key"]))
        await writer.drain()
        gauge = None
        if self.registry.enabled:
            gauge = self.registry.gauge(
                WS_CONNECTIONS_METRIC,
                help="Currently open WebSocket streaming sessions",
            )
            gauge.inc()
        try:
            await self._ws_loop(record, reader, writer)
        finally:
            if gauge is not None:
                gauge.dec()

    async def _ws_loop(
        self,
        record: TenantRecord,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            opcode, frame = await read_ws_frame(reader)
            if opcode == protocol.OP_CLOSE:
                writer.write(encode_ws_frame(frame, opcode=protocol.OP_CLOSE))
                await writer.drain()
                return
            if opcode == protocol.OP_PING:
                writer.write(encode_ws_frame(frame, opcode=protocol.OP_PONG))
                await writer.drain()
                continue
            if opcode not in (protocol.OP_TEXT, protocol.OP_BINARY):
                continue
            reply = await self._ws_message(record, frame)
            writer.write(
                encode_ws_frame(
                    json.dumps(reply, sort_keys=True).encode("utf-8")
                )
            )
            await writer.drain()

    async def _ws_message(
        self, record: TenantRecord, frame: bytes
    ) -> dict[str, Any]:
        try:
            message = json.loads(frame.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return {"type": "error", "error": f"bad frame: {exc}"}
        if not isinstance(message, dict):
            return {"type": "error", "error": "frame must be a JSON object"}
        kind = message.get("type", "chunk")
        if kind != "chunk":
            return {"type": "error", "error": f"unknown frame type {kind!r}"}
        try:
            status, payload = await self._ingest(record, message)
        except ReproError as exc:
            return {"type": "error", "error": str(exc)}
        if status != 200:
            return {"type": "error", "error": str(payload.get("error", status))}
        return {
            "type": "verdicts",
            "chunk": payload["chunk"],
            "verdicts": payload["verdicts"],
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _list_tenants(self) -> dict[str, Any]:
        return {
            "tenants": [
                {
                    "tenant": record.tenant_id,
                    "resident": record.resident,
                    "evicted": record.evicted,
                }
                for record in self.supervisor.tenants.values()
            ]
        }

    async def _tenant_status(self, record: TenantRecord) -> dict[str, Any]:
        if not record.resident:
            return {
                "tenant": record.tenant_id,
                "resident": False,
                "evicted": record.evicted,
            }
        async with record.lock:
            engine = await self.supervisor.resident_engine(record)
            status = engine.status()
        status["resident"] = True
        status["evicted"] = False
        return status

    def _fleet_summary(self) -> dict[str, Any]:
        summary: dict[str, Any] = {
            "draining": self.draining,
            **self.supervisor.stats(),
        }
        if self.registry.enabled:
            for key, name in (
                ("chunks", CHUNKS_METRIC),
                ("frames", FRAMES_METRIC),
                ("anomalies", ANOMALIES_METRIC),
            ):
                total = 0.0
                for _labels, metric in self.registry.samples(name):
                    total += metric.value
                summary[key] = int(total)
            histogram = self.registry.histogram(
                VERDICT_LATENCY_METRIC,
                help="Ingest-to-verdict latency of one chunk through the gateway",
            )
            summary["verdict_latency"] = {
                "count": histogram.count,
                "p50": histogram.quantile(0.5),
                "p99": histogram.quantile(0.99),
                "max": histogram.max,
            }
        return summary


def _train_model(
    vehicle: Any, duration_s: float, seed: int, margin: float
) -> VProfileModel:
    """Server-side registration path: capture and train on the executor."""
    session = capture_session(vehicle, duration_s, seed=seed)
    pipeline = VProfilePipeline(
        PipelineConfig(margin=margin, sa_clusters=vehicle.sa_clusters)
    )
    pipeline.train(session.traces)
    return pipeline.model


def _int_query(request: HttpRequest, name: str, default: int) -> int:
    values = request.query.get(name)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError:
        raise ProtocolError(
            f"query parameter {name!r} must be an integer, got {values[0]!r}"
        ) from None


class GatewayThread:
    """Run a :class:`FleetGateway` on a dedicated event-loop thread.

    Synchronous callers (tests, examples, the benchmark harness) start
    the gateway with ``GatewayThread(config).start()``, talk plain HTTP
    to :attr:`url`, and ``stop()`` it when done.  ``drain()`` and
    ``stop()`` are marshalled onto the loop thread.
    """

    def __init__(
        self,
        config: GatewayConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.gateway = FleetGateway(config, registry)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "GatewayThread":
        if self._thread is not None:
            raise FleetError("gateway thread already started")
        self._thread = threading.Thread(
            target=self._run, name="vprofile-fleet-gateway", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise FleetError("gateway failed to start within 30s")
        if self._startup_error is not None:
            raise FleetError(
                f"gateway failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.gateway.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
            # Post-loop cleanup scheduled by stop():
            loop.run_until_complete(self.gateway.stop())
        finally:
            loop.close()
            self._stopped.set()

    @property
    def host(self) -> str:
        return self.gateway.host

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def url(self) -> str:
        return self.gateway.url

    def drain(self, timeout: float = 60.0) -> int:
        """Run a graceful drain on the loop thread; returns tenants flushed."""
        loop = self._require_loop()
        future = asyncio.run_coroutine_threadsafe(self.gateway.drain(), loop)
        return future.result(timeout=timeout)

    def stop(self, timeout: float = 60.0) -> None:
        loop = self._loop
        if loop is None or self._thread is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if not self._stopped.wait(timeout=timeout):
            raise FleetError("gateway thread did not stop in time")
        self._thread.join(timeout=timeout)
        self._thread = None
        self._loop = None

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise FleetError("gateway thread is not running")
        return self._loop

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = [
    "ANOMALIES_METRIC",
    "CHUNKS_METRIC",
    "FRAMES_METRIC",
    "FleetGateway",
    "GatewayConfig",
    "GatewayThread",
    "REQUESTS_METRIC",
    "VERDICT_LATENCY_METRIC",
    "WS_CONNECTIONS_METRIC",
]
