"""Tenant residency supervision for the fleet gateway.

The gateway can serve far more registered vehicles than it can afford to
keep resident: every resident tenant pins a profile store, an extractor
sample buffer and a health monitor.  :class:`FleetSupervisor` enforces a
``max_resident`` budget — when a registration or an ingest would exceed
it, the least-recently-active idle tenant is evicted to a
:mod:`repro.stream.checkpoint` directory and its memory released.  The
next request for that tenant rehydrates it from disk; the checkpoint
round-trip is byte-identical, so eviction is invisible in the verdict
stream (pinned by the equivalence property tests).

Concurrency model: all bookkeeping (the tenant table, LRU ordering,
eviction choice) happens on the event loop, so it needs no locks.  The
heavy lifting — chunk classification, checkpoint serialisation,
rehydration — runs in the gateway's thread executor while the tenant's
own :class:`asyncio.Lock` is held, which serialises each tenant's
pipeline without blocking the loop or other tenants.
"""

from __future__ import annotations

import asyncio
import shutil
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro.errors import FleetError
from repro.fleet.tenant import TENANT_META_FILE, TenantEngine
from repro.obs.clock import monotonic
from repro.obs.registry import MetricsRegistry

#: Registered tenants by residency state (gauge, label ``state``).
TENANTS_METRIC = "vprofile_fleet_tenants"
#: Tenants checkpointed out to disk to respect the residency budget.
EVICTIONS_METRIC = "vprofile_fleet_evictions_total"
#: Tenants restored from a checkpoint on demand.
REHYDRATIONS_METRIC = "vprofile_fleet_rehydrations_total"

_T = TypeVar("_T")


class TenantRecord:
    """Book-keeping for one registered tenant."""

    __slots__ = ("tenant_id", "engine", "lock", "last_active", "evicted")

    def __init__(self, tenant_id: str, engine: TenantEngine | None):
        self.tenant_id = tenant_id
        self.engine: TenantEngine | None = engine
        self.lock = asyncio.Lock()
        self.last_active = monotonic()
        self.evicted = False

    @property
    def resident(self) -> bool:
        return self.engine is not None

    def touch(self) -> None:
        self.last_active = monotonic()


class FleetSupervisor:
    """Owns the tenant table and the residency budget.

    Parameters
    ----------
    registry:
        Metrics registry the fleet gauges/counters live in.
    state_dir:
        Directory holding one checkpoint subdirectory per evicted
        tenant.  Required for eviction; with ``None`` the supervisor
        refuses to evict (every tenant stays resident).
    max_resident:
        Upper bound on simultaneously resident tenants.
    executor:
        Thread pool the blocking work (classify, checkpoint, rehydrate)
        is pushed onto.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        state_dir: str | Path | None = None,
        max_resident: int = 64,
        executor: ThreadPoolExecutor | None = None,
    ):
        if max_resident < 1:
            raise FleetError(f"max_resident must be >= 1, got {max_resident}")
        self.registry = registry
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.max_resident = int(max_resident)
        self.executor = executor
        self.tenants: dict[str, TenantRecord] = {}
        self.evictions = 0
        self.rehydrations = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    async def _run(self, fn: Callable[[], _T]) -> _T:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn)

    def _checkpoint_dir(self, tenant_id: str) -> Path:
        if self.state_dir is None:
            raise FleetError(
                "no state directory configured: cannot evict or rehydrate"
            )
        return self.state_dir / tenant_id

    def _publish(self) -> None:
        if not self.registry.enabled:
            return
        resident = sum(1 for r in self.tenants.values() if r.resident)
        self.registry.gauge(
            TENANTS_METRIC, help="Registered tenants by residency state",
            state="resident",
        ).set(resident)
        self.registry.gauge(
            TENANTS_METRIC, help="Registered tenants by residency state",
            state="evicted",
        ).set(len(self.tenants) - resident)

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def adopt_checkpoints(self) -> list[str]:
        """Re-list tenants left in the state directory by a drained run.

        Each subdirectory carrying a tenant sidecar becomes an evicted
        record; the engine itself is only rehydrated when the tenant's
        next request arrives, so adopting a large fleet is cheap.
        """
        if self.state_dir is None or not self.state_dir.is_dir():
            return []
        adopted: list[str] = []
        for entry in sorted(self.state_dir.iterdir()):
            if not (entry / TENANT_META_FILE).is_file():
                continue
            tenant_id = entry.name
            if tenant_id in self.tenants:
                continue
            record = TenantRecord(tenant_id, engine=None)
            record.evicted = True
            self.tenants[tenant_id] = record
            adopted.append(tenant_id)
        if adopted:
            self._publish()
        return adopted

    def record(self, tenant_id: str) -> TenantRecord:
        try:
            return self.tenants[tenant_id]
        except KeyError:
            raise FleetError(f"unknown tenant: {tenant_id!r}") from None

    async def register(self, tenant_id: str, engine: TenantEngine) -> TenantRecord:
        """Admit a new tenant, evicting others if over budget."""
        if tenant_id in self.tenants:
            raise FleetError(f"tenant already registered: {tenant_id!r}")
        record = TenantRecord(tenant_id, engine)
        self.tenants[tenant_id] = record
        await self._enforce_budget(keep=record)
        self._publish()
        return record

    async def resident_engine(self, record: TenantRecord) -> TenantEngine:
        """The tenant's engine, rehydrated from disk if evicted.

        Must be called with ``record.lock`` held: the lock is what keeps
        a concurrent evictor's hands off the engine while it is in use.
        """
        record.touch()
        if record.engine is None:
            directory = self._checkpoint_dir(record.tenant_id)
            record.engine = await self._run(
                lambda: TenantEngine.rehydrate(directory)
            )
            record.evicted = False
            self.rehydrations += 1
            if self.registry.enabled:
                self.registry.counter(
                    REHYDRATIONS_METRIC,
                    help="Tenants restored from an eviction checkpoint",
                ).inc()
            await self._enforce_budget(keep=record)
            self._publish()
        return record.engine

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _resident_records(self) -> list[TenantRecord]:
        return [r for r in self.tenants.values() if r.resident]

    async def _enforce_budget(self, keep: TenantRecord | None = None) -> None:
        """Evict LRU idle tenants until the budget holds."""
        if self.state_dir is None:
            return  # no spill target: the budget is advisory
        while True:
            resident = self._resident_records()
            if len(resident) <= self.max_resident:
                return
            victims = [
                r for r in resident if r is not keep and not r.lock.locked()
            ]
            if not victims:
                return  # everything else is mid-request; try again later
            victim = min(victims, key=lambda r: r.last_active)
            await self.evict(victim)

    async def evict(self, record: TenantRecord) -> None:
        """Checkpoint one tenant to disk and release its memory."""
        async with record.lock:
            engine = record.engine
            if engine is None:
                return  # already evicted
            directory = self._checkpoint_dir(record.tenant_id)
            await self._run(lambda: engine.checkpoint(directory))
            record.engine = None
            record.evicted = True
            self.evictions += 1
            if self.registry.enabled:
                self.registry.counter(
                    EVICTIONS_METRIC,
                    help="Tenants checkpointed out by the residency budget",
                ).inc()
        self._publish()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> int:
        """Checkpoint every resident tenant (graceful shutdown).

        Returns the number of tenants flushed.  With no state directory
        there is nowhere to flush to; the in-memory verdict state is
        simply dropped, as for any in-memory service.
        """
        if self.state_dir is None:
            return 0
        flushed = 0
        for record in list(self.tenants.values()):
            if record.resident:
                await self.evict(record)
                flushed += 1
        return flushed

    async def remove(self, tenant_id: str) -> None:
        """Forget a tenant entirely, including its checkpoint."""
        record = self.record(tenant_id)
        async with record.lock:
            record.engine = None
            del self.tenants[tenant_id]
        if self.state_dir is not None:
            directory = self.state_dir / tenant_id
            if directory.exists():
                await self._run(lambda: shutil.rmtree(directory))
        self._publish()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        resident = self._resident_records()
        return {
            "tenants": len(self.tenants),
            "resident": len(resident),
            "evicted_now": len(self.tenants) - len(resident),
            "max_resident": self.max_resident,
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
        }


__all__ = [
    "EVICTIONS_METRIC",
    "FleetSupervisor",
    "REHYDRATIONS_METRIC",
    "TENANTS_METRIC",
    "TenantRecord",
]
