"""Wire protocol of the fleet gateway: HTTP/1.1 and WebSocket, stdlib only.

The gateway cannot assume an HTTP framework in the container, so this
module implements the minimum slice of both protocols over
:mod:`asyncio` streams:

* **HTTP/1.1** — request parsing (request line, headers,
  ``Content-Length`` bodies) and response rendering with keep-alive, for
  the REST control plane (``/tenants``, ``/fleet``, ``/metrics``);
* **WebSocket (RFC 6455)** — the ``Sec-WebSocket-Accept`` handshake and
  a single-frame codec (text/binary/ping/pong/close, 7/16/64-bit
  lengths, client masking) for the persistent per-vehicle streaming
  connections.

Both sides of each protocol live here: the gateway serves with the
unmasked-server rules, and the load generator connects with the
masked-client rules, so one codec is exercised from both ends by every
fleet test.

Frames are never fragmented by either peer (each chunk/verdict payload
is one frame), so the codec rejects ``FIN=0`` rather than carrying
reassembly state.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qs, urlparse

from repro.errors import FleetError

#: Reason phrases for the status codes the gateway actually emits.
STATUS_PHRASES: Mapping[int, str] = {
    101: "Switching Protocols",
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    426: "Upgrade Required",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Upper bounds keeping a malformed peer from ballooning memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: RFC 6455 handshake GUID (fixed by the spec).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes used by the gateway.
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class ProtocolError(FleetError):
    """The peer sent bytes that are not valid HTTP/WebSocket."""


# ----------------------------------------------------------------------
# HTTP requests
# ----------------------------------------------------------------------

@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request.

    ``headers`` keys are lower-cased; ``query`` values keep the
    ``parse_qs`` list shape so multi-valued parameters survive.
    """

    method: str
    target: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    @property
    def is_websocket_upgrade(self) -> bool:
        return (
            "upgrade" in self.headers.get("connection", "").lower()
            and self.headers.get("upgrade", "").lower() == "websocket"
        )

    def json(self) -> Any:
        """Decode the body as JSON, mapping failures to 400-able errors."""
        if not self.body:
            raise ProtocolError("request body is empty, expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc


async def read_http_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for malformed requests (bad request
    line, oversize headers/body, non-numeric ``Content-Length``).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head exceeds the header limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head exceeds the header limit")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}") from None
    if length < 0 or length > max_body:
        raise ProtocolError(f"unacceptable Content-Length: {length}")
    body = await reader.readexactly(length) if length else b""

    parsed = urlparse(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=parsed.path.rstrip("/") or "/",
        query=parse_qs(parsed.query),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = JSON_CONTENT_TYPE,
    keep_alive: bool = True,
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """Serialise one HTTP/1.1 response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_json(
    status: int, payload: Any, *, keep_alive: bool = True
) -> bytes:
    """A JSON response in the same shape :mod:`repro.obs.server` emits."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body, keep_alive=keep_alive)


# ----------------------------------------------------------------------
# HTTP client side (used by the load generator and the CLI)
# ----------------------------------------------------------------------

async def read_http_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Parse one response: ``(status, headers, body)``."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError("connection closed before a full response") from exc
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line: {lines[0]!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


async def http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    *,
    body: bytes | None = None,
    headers: Mapping[str, str] | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """Issue one keep-alive request over an open connection."""
    payload = body or b""
    lines = [
        f"{method} {path} HTTP/1.1",
        "Host: fleet",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()
    return await read_http_response(reader)


async def http_json(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: Any | None = None,
) -> tuple[int, Any]:
    """JSON request/response helper: ``(status, decoded body)``."""
    body = None
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
    status, _headers, raw = await http_request(
        reader, writer, method, path, body=body
    )
    decoded: Any = None
    if raw:
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = raw.decode("latin-1")
    return status, decoded


# ----------------------------------------------------------------------
# WebSocket (RFC 6455)
# ----------------------------------------------------------------------

def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def render_ws_handshake(key: str) -> bytes:
    """The 101 response completing a WebSocket upgrade."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n\r\n"
    ).encode("latin-1")


def encode_ws_frame(
    payload: bytes,
    *,
    opcode: int = OP_TEXT,
    mask_key: bytes | None = None,
) -> bytes:
    """Encode one final (FIN=1) frame; clients must pass a 4-byte mask."""
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask_key is not None else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += length.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += length.to_bytes(8, "big")
    if mask_key is None:
        return bytes(head) + payload
    if len(mask_key) != 4:
        raise ProtocolError("WebSocket mask key must be 4 bytes")
    head += mask_key
    masked = bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + masked


async def read_ws_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one frame: ``(opcode, unmasked payload)``.

    Returns ``(OP_CLOSE, b"")`` when the peer closes the socket without
    a close frame, so session loops have a single exit condition.
    """
    try:
        head = await reader.readexactly(2)
    except asyncio.IncompleteReadError:
        return OP_CLOSE, b""
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin or opcode == OP_CONT:
        raise ProtocolError("fragmented WebSocket frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"WebSocket frame too large: {length} bytes")
    mask_key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


def client_handshake_request(path: str, key: str) -> bytes:
    """The upgrade request a connecting vehicle sends."""
    return (
        f"GET {path} HTTP/1.1\r\n"
        "Host: fleet\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        "Sec-WebSocket-Version: 13\r\n\r\n"
    ).encode("latin-1")


async def client_ws_connect(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    path: str,
    *,
    key_seed: int = 0,
) -> None:
    """Perform the client side of the upgrade, verifying the accept key.

    The nonce is derived from ``key_seed`` rather than OS entropy: the
    key only guards against misbehaving proxies, and a deterministic
    client keeps load-generator runs reproducible.
    """
    nonce = hashlib.sha256(f"vprofile-fleet-{key_seed}".encode()).digest()[:16]
    key = base64.b64encode(nonce).decode("latin-1")
    writer.write(client_handshake_request(path, key))
    await writer.drain()
    status, headers, _body = await read_http_response(reader)
    if status != 101:
        raise ProtocolError(f"WebSocket upgrade refused with status {status}")
    if headers.get("sec-websocket-accept") != websocket_accept(key):
        raise ProtocolError("WebSocket accept key mismatch")


__all__ = [
    "HttpRequest",
    "JSON_CONTENT_TYPE",
    "MAX_BODY_BYTES",
    "MAX_FRAME_BYTES",
    "MAX_HEADER_BYTES",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_CONT",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "ProtocolError",
    "STATUS_PHRASES",
    "WS_GUID",
    "client_handshake_request",
    "client_ws_connect",
    "encode_ws_frame",
    "http_json",
    "http_request",
    "read_http_request",
    "read_http_response",
    "read_ws_frame",
    "render_json",
    "render_response",
    "render_ws_handshake",
    "websocket_accept",
]
