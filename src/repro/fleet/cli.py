"""``repro fleet`` subcommands: ``serve`` and ``bench``.

``serve`` runs the gateway in the foreground until SIGTERM/SIGINT, then
drains gracefully: in-flight chunks finish and every resident tenant is
flushed to its checkpoint before the process exits, so a restart picks
up exactly where the fleet left off.

``bench`` drives the deterministic load generator against a gateway —
its own in-process one by default, or ``--address HOST:PORT`` for a
running ``serve``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any

from repro.fleet.gateway import FleetGateway, GatewayConfig, GatewayThread
from repro.fleet.loadgen import LoadgenConfig, format_report, run_loadgen
from repro.obs.registry import MetricsRegistry
from repro.obs.server import parse_host_port


def add_fleet_parser(commands: Any) -> None:
    """Attach the ``fleet`` subcommand tree to the main CLI."""
    fleet = commands.add_parser(
        "fleet",
        help="multi-tenant detection gateway (serve many vehicles at once)",
    )
    actions = fleet.add_subparsers(dest="fleet_command", required=True)

    serve = actions.add_parser(
        "serve", help="run the gateway until SIGTERM, then drain gracefully"
    )
    serve.add_argument("--address", metavar="HOST:PORT",
                       default="127.0.0.1:0",
                       help="bind address (port 0 picks a free port)")
    serve.add_argument("--state-dir", metavar="DIR", default=None,
                       help="checkpoint directory for evicted tenants "
                            "(required for eviction and graceful drain)")
    serve.add_argument("--max-resident", type=int, default=64,
                       help="resident-tenant budget before LRU eviction")
    serve.add_argument("--executor-workers", type=int, default=None,
                       metavar="N",
                       help="thread-pool size for classification work")
    serve.set_defaults(handler=cmd_fleet_serve)

    bench = actions.add_parser(
        "bench", help="run the deterministic fleet load generator"
    )
    bench.add_argument("--address", metavar="HOST:PORT", default=None,
                       help="benchmark a running gateway instead of an "
                            "in-process one")
    bench.add_argument("--tenants", type=int, default=8,
                       help="simulated vehicles streaming concurrently")
    bench.add_argument("--duration", type=float, default=0.25,
                       help="simulated bus seconds streamed per tenant")
    bench.add_argument("--chunk-samples", type=int, default=32768,
                       help="digitizer chunk size each tenant sends")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--train-duration", type=float, default=4.0,
                       help="length of the one shared training capture")
    bench.add_argument("--ws-fraction", type=float, default=0.5,
                       help="fraction of tenants on the WebSocket path")
    bench.add_argument("--max-resident", type=int, default=64,
                       help="residency budget of the in-process gateway")
    bench.add_argument("--no-rehydration-check", action="store_true",
                       help="skip the evict/rehydrate equivalence check")
    bench.add_argument("--json", action="store_true",
                       help="print the raw report as JSON")
    bench.set_defaults(handler=cmd_fleet_bench)


def cmd_fleet_serve(args: argparse.Namespace) -> int:
    host, port = parse_host_port(args.address)
    config = GatewayConfig(
        host=host,
        port=port,
        state_dir=args.state_dir,
        max_resident=args.max_resident,
        executor_workers=args.executor_workers,
    )
    return asyncio.run(_serve(config))


async def _serve(config: GatewayConfig) -> int:
    gateway = FleetGateway(config, MetricsRegistry())
    await gateway.start()
    print(f"fleet gateway on {gateway.url} "
          f"(max {config.max_resident} resident tenants"
          + (f", state in {config.state_dir}" if config.state_dir else "")
          + ")")
    print("routes: /tenants /fleet /metrics  (SIGTERM drains gracefully)")
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, shutdown.set)
    await shutdown.wait()
    print("draining fleet gateway ...", file=sys.stderr)
    flushed = await gateway.drain()
    await gateway.stop()
    print(f"drained: {flushed} tenant checkpoint"
          f"{'' if flushed == 1 else 's'} flushed", file=sys.stderr)
    return 0


def cmd_fleet_bench(args: argparse.Namespace) -> int:
    config = LoadgenConfig(
        tenants=args.tenants,
        duration_s=args.duration,
        chunk_samples=args.chunk_samples,
        seed=args.seed,
        train_duration_s=args.train_duration,
        ws_fraction=args.ws_fraction,
        check_rehydration=not args.no_rehydration_check,
    )
    if args.address:
        host, port = parse_host_port(args.address)
        report = run_loadgen(host, port, config)
    else:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as state_dir:
            with GatewayThread(
                GatewayConfig(
                    state_dir=state_dir, max_resident=args.max_resident
                ),
                MetricsRegistry(),
            ) as server:
                report = run_loadgen(server.host, server.port, config)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report), end="")
    rehydration = report.get("rehydration")
    if rehydration is not None and not rehydration["identical"]:
        print("error: rehydrated verdict sequence diverged", file=sys.stderr)
        return 2
    return 0


__all__ = ["add_fleet_parser", "cmd_fleet_bench", "cmd_fleet_serve"]
