"""CRC-15 computation as specified by the Bosch CAN 2.0 standard.

The CAN frame check sequence is a 15-bit CRC with generator polynomial

    x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1

computed over the destuffed bitstream from the start-of-frame bit through
the last data bit.  The register starts at zero and no final XOR is
applied.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Generator polynomial with the implicit x^15 term removed (Bosch spec).
CAN_CRC15_POLY = 0x4599

#: Bit mask keeping the register at 15 bits.
_CRC15_MASK = 0x7FFF


def _build_crc15_table() -> list[int]:
    """Precompute the register update for each possible 8-bit block."""
    table = []
    for byte in range(256):
        crc = (byte << 7) & _CRC15_MASK
        for _ in range(8):
            if crc & 0x4000:
                crc = ((crc << 1) & _CRC15_MASK) ^ CAN_CRC15_POLY
            else:
                crc = (crc << 1) & _CRC15_MASK
        table.append(crc)
    return table


_CRC15_TABLE = _build_crc15_table()


def crc15(bits: Iterable[int]) -> int:
    """Compute the CAN CRC-15 over a sequence of 0/1 bits.

    Table-driven: eight message bits advance the register per lookup,
    which matters because the frame encoder runs this over every frame
    the simulator schedules.

    Parameters
    ----------
    bits:
        Iterable of integers, each 0 or 1, ordered from the first
        transmitted bit (SOF) to the last data bit.

    Returns
    -------
    int
        The 15-bit CRC value.
    """
    bit_list = [bit & 1 for bit in bits]
    n = len(bit_list)
    crc = 0
    head = n & 7
    for bit in bit_list[:head]:
        crc_next = bit ^ ((crc >> 14) & 1)
        crc = (crc << 1) & _CRC15_MASK
        if crc_next:
            crc ^= CAN_CRC15_POLY
    table = _CRC15_TABLE
    for i in range(head, n, 8):
        b0, b1, b2, b3, b4, b5, b6, b7 = bit_list[i : i + 8]
        byte = (
            b0 << 7 | b1 << 6 | b2 << 5 | b3 << 4 | b4 << 3 | b5 << 2 | b6 << 1 | b7
        )
        crc = table[(crc >> 7) ^ byte] ^ ((crc << 8) & _CRC15_MASK)
    return crc


def crc15_bits(bits: Iterable[int]) -> list[int]:
    """Compute the CRC-15 and return it as 15 bits, MSB first."""
    value = crc15(bits)
    return [(value >> shift) & 1 for shift in range(14, -1, -1)]


def verify_crc15(payload_bits: Sequence[int], crc_field_bits: Sequence[int]) -> bool:
    """Check a received CRC field against the payload it covers.

    Parameters
    ----------
    payload_bits:
        The destuffed bits from SOF through the end of the data field.
    crc_field_bits:
        The 15 received CRC bits, MSB first.

    Returns
    -------
    bool
        ``True`` when the CRC matches.
    """
    if len(crc_field_bits) != 15:
        return False
    received = 0
    for bit in crc_field_bits:
        received = (received << 1) | (bit & 1)
    return crc15(payload_bits) == received
