"""CAN 2.0 / SAE J1939 protocol substrate.

Provides everything vProfile needs from the digital side of the bus:
frame encoding with CRC-15 and bit stuffing, J1939 identifier semantics,
bitwise arbitration, and periodic traffic scheduling.
"""

from repro.can.arbitration import ArbitrationResult, arbitrate, arbitration_order
from repro.can.bits import (
    bits_to_int,
    count_stuff_bits,
    destuff_bits,
    int_to_bits,
    stuff_bits,
    stuffed_length,
)
from repro.can.bus import INTERFRAME_SPACE_BITS, BusTransmission, CanBus
from repro.can.faults import (
    BUS_OFF_LIMIT,
    ERROR_PASSIVE_LIMIT,
    ErrorState,
    FaultConfinement,
)
from repro.can.crc import CAN_CRC15_POLY, crc15, crc15_bits, verify_crc15
from repro.can.frame import (
    EXT_FIRST_BIT_AFTER_ARBITRATION,
    EXT_SA_FIRST_BIT,
    EXT_SA_LAST_BIT,
    CanFrame,
)
from repro.can.j1939 import J1939Id, extract_source_address
from repro.can.traffic import MessageSchedule, ScheduledFrame, TrafficGenerator

__all__ = [
    "ArbitrationResult",
    "arbitrate",
    "arbitration_order",
    "bits_to_int",
    "count_stuff_bits",
    "destuff_bits",
    "int_to_bits",
    "stuff_bits",
    "stuffed_length",
    "INTERFRAME_SPACE_BITS",
    "BusTransmission",
    "CanBus",
    "BUS_OFF_LIMIT",
    "ERROR_PASSIVE_LIMIT",
    "ErrorState",
    "FaultConfinement",
    "CAN_CRC15_POLY",
    "crc15",
    "crc15_bits",
    "verify_crc15",
    "EXT_FIRST_BIT_AFTER_ARBITRATION",
    "EXT_SA_FIRST_BIT",
    "EXT_SA_LAST_BIT",
    "CanFrame",
    "J1939Id",
    "extract_source_address",
    "MessageSchedule",
    "ScheduledFrame",
    "TrafficGenerator",
]
