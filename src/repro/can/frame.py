"""CAN 2.0 data-frame model: field layout, encoding and decoding.

Implements both the standard (11-bit identifier, CAN 2.0A) and extended
(29-bit identifier, CAN 2.0B) data-frame formats described in Section
2.1.2 / Table 2.1 of the paper.  The extended format is the one exercised
throughout the evaluation because both test vehicles speak SAE J1939;
standard frames are provided for the future-work direction of Section 6.1.

A frame can be rendered to its *unstuffed* logical bit sequence and to
the *stuffed* wire bit sequence that the analog layer turns into a
voltage waveform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.can.bits import bits_to_int, destuff_bits, int_to_bits, stuff_bits
from repro.can.crc import crc15_bits, verify_crc15
from repro.errors import CanDecodingError, CanEncodingError, CrcError

#: Field widths shared by both formats.
SOF_BITS = 1
BASE_ID_BITS = 11
EXTENDED_ID_BITS = 18
DLC_BITS = 4
CRC_BITS = 15
EOF_BITS = 7

#: Bit indices (SOF = bit 0, stuff bits excluded) used by the paper's
#: extraction algorithm for extended frames.
EXT_SA_FIRST_BIT = 24
EXT_SA_LAST_BIT = 31
EXT_FIRST_BIT_AFTER_ARBITRATION = 33

MAX_STANDARD_ID = (1 << BASE_ID_BITS) - 1
MAX_EXTENDED_ID = (1 << 29) - 1
MAX_DATA_BYTES = 8


@dataclass(frozen=True)
class CanFrame:
    """A CAN data frame.

    Attributes
    ----------
    can_id:
        The identifier: 11 bits when ``extended`` is False, 29 bits when
        True.
    data:
        0-8 bytes of payload.
    extended:
        Frame format selector (CAN 2.0A vs 2.0B).
    """

    can_id: int
    data: bytes = field(default=b"")
    extended: bool = True

    def __post_init__(self) -> None:
        limit = MAX_EXTENDED_ID if self.extended else MAX_STANDARD_ID
        if not 0 <= self.can_id <= limit:
            kind = "extended" if self.extended else "standard"
            raise CanEncodingError(
                f"id 0x{self.can_id:X} out of range for a {kind} frame"
            )
        if len(self.data) > MAX_DATA_BYTES:
            raise CanEncodingError(
                f"data field is {len(self.data)} bytes; CAN allows at most 8"
            )

    @property
    def dlc(self) -> int:
        """Data length code: the number of payload bytes."""
        return len(self.data)

    @property
    def source_address(self) -> int:
        """J1939 source address (low byte of an extended identifier)."""
        if not self.extended:
            raise CanEncodingError("standard frames carry no J1939 SA")
        return self.can_id & 0xFF

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def header_bits(self) -> list[int]:
        """Bits from SOF through the data field (the CRC-covered region)."""
        bits: list[int] = [0]  # SOF is dominant
        if self.extended:
            base_id = (self.can_id >> EXTENDED_ID_BITS) & MAX_STANDARD_ID
            ext_id = self.can_id & ((1 << EXTENDED_ID_BITS) - 1)
            bits += int_to_bits(base_id, BASE_ID_BITS)
            bits.append(1)  # SRR, recessive
            bits.append(1)  # IDE, recessive selects extended format
            bits += int_to_bits(ext_id, EXTENDED_ID_BITS)
            bits.append(0)  # RTR, dominant for data frames
            bits += [0, 0]  # r1, r0 reserved
        else:
            bits += int_to_bits(self.can_id, BASE_ID_BITS)
            bits.append(0)  # RTR, dominant for data frames
            bits.append(0)  # IDE, dominant selects standard format
            bits.append(0)  # r0 reserved
        bits += int_to_bits(self.dlc, DLC_BITS)
        for byte in self.data:
            bits += int_to_bits(byte, 8)
        return bits

    def unstuffed_bits(self) -> list[int]:
        """The full logical frame: header, CRC, delimiters, ACK, EOF.

        The ACK slot is rendered dominant (0) because on a live bus at
        least one receiver asserts it; the paper notes its voltage can
        deviate since a *different* transceiver drives it.
        """
        header = self.header_bits()
        bits = list(header)
        bits += crc15_bits(header)
        bits.append(1)  # CRC delimiter
        bits.append(0)  # ACK slot, asserted by receivers
        bits.append(1)  # ACK delimiter
        bits += [1] * EOF_BITS
        return bits

    def stuffed_bits(self) -> list[int]:
        """The wire bit sequence: stuffing applies from SOF through CRC.

        Memoised per instance: the frame is frozen, and the scheduler
        (bus timing) and the analog renderer both need the same wire
        bits.  A fresh list is returned on every call so callers remain
        free to mutate it.
        """
        cached = self.__dict__.get("_stuffed_bits_memo")
        if cached is None:
            header = self.header_bits()
            crc_covered = header + crc15_bits(header)
            cached = stuff_bits(crc_covered)
            cached.append(1)  # CRC delimiter
            cached.append(0)  # ACK slot
            cached.append(1)  # ACK delimiter
            cached += [1] * EOF_BITS
            object.__setattr__(self, "_stuffed_bits_memo", cached)
        return cached.copy()

    def arbitration_bits(self) -> list[int]:
        """The stuff-free arbitration field bits including SOF.

        For extended frames this covers SOF, base id, SRR, IDE, extended
        id and RTR — the region where bus collisions are resolved and the
        reason vProfile only trusts edges after bit 33.
        """
        bits = self.unstuffed_bits()
        if self.extended:
            length = SOF_BITS + BASE_ID_BITS + 2 + EXTENDED_ID_BITS + 1
        else:
            length = SOF_BITS + BASE_ID_BITS + 1
        return bits[:length]

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    @classmethod
    def from_stuffed_bits(cls, bits: list[int]) -> "CanFrame":
        """Decode a stuffed wire bitstream into a frame.

        The stream must begin at SOF.  Trailing bus-idle bits are
        tolerated.  Raises :class:`CanDecodingError` on malformed frames
        and :class:`CrcError` on checksum mismatch.
        """
        # Stuffing only covers SOF..CRC, but the boundary position is not
        # known until the DLC is parsed.  Destuff generously, parse, then
        # validate.  Destuffing extra (unstuffed) tail bits is harmless
        # here because EOF/ACK regions are all-recessive or single bits
        # and runs of five recessive bits in EOF would be misread -- so
        # instead destuff incrementally: parse header from a destuffed
        # prefix that certainly covers it.
        destuffed = _destuff_prefix(bits)
        return cls.from_unstuffed_bits(destuffed)

    @classmethod
    def from_unstuffed_bits(cls, bits: list[int]) -> "CanFrame":
        """Decode a destuffed logical bitstream (starting at SOF)."""
        if not bits or bits[0] != 0:
            raise CanDecodingError("frame must start with a dominant SOF")
        pos = 1
        base_id_bits = _take(bits, pos, BASE_ID_BITS)
        pos += BASE_ID_BITS
        rtr_or_srr = _take(bits, pos, 1)[0]
        ide = _take(bits, pos + 1, 1)[0]
        pos += 2
        if ide == 1:
            if rtr_or_srr != 1:
                raise CanDecodingError("SRR must be recessive in extended frames")
            ext_id_bits = _take(bits, pos, EXTENDED_ID_BITS)
            pos += EXTENDED_ID_BITS
            rtr = _take(bits, pos, 1)[0]
            pos += 1
            if rtr != 0:
                raise CanDecodingError("remote frames are not supported")
            pos += 2  # r1, r0
            can_id = (bits_to_int(base_id_bits) << EXTENDED_ID_BITS) | bits_to_int(ext_id_bits)
            extended = True
        else:
            if rtr_or_srr != 0:
                raise CanDecodingError("remote frames are not supported")
            pos += 1  # r0
            can_id = bits_to_int(base_id_bits)
            extended = False
        dlc = bits_to_int(_take(bits, pos, DLC_BITS))
        pos += DLC_BITS
        if dlc > MAX_DATA_BYTES:
            raise CanDecodingError(f"DLC {dlc} exceeds 8 bytes")
        data = bytearray()
        for _ in range(dlc):
            data.append(bits_to_int(_take(bits, pos, 8)))
            pos += 8
        crc_field = _take(bits, pos, CRC_BITS)
        if not verify_crc15(bits[:pos], crc_field):
            raise CrcError("CRC-15 mismatch")
        return cls(can_id=can_id, data=bytes(data), extended=extended)

    def __len__(self) -> int:
        """Number of stuffed wire bits in the frame."""
        return len(self.stuffed_bits())

    def __str__(self) -> str:
        kind = "EXT" if self.extended else "STD"
        return f"CanFrame({kind} id=0x{self.can_id:X} data={self.data.hex()})"


def _take(bits: list[int], pos: int, count: int) -> list[int]:
    """Slice ``count`` bits at ``pos`` or raise a decoding error."""
    if pos + count > len(bits):
        raise CanDecodingError(
            f"bitstream truncated: needed {pos + count} bits, have {len(bits)}"
        )
    return bits[pos : pos + count]


def _destuff_prefix(bits: list[int]) -> list[int]:
    """Destuff a wire stream whose stuffed region ends at the CRC.

    Walks the stream removing stuff bits until enough logical bits exist
    to know the frame length (header + CRC), then appends the unstuffed
    remainder verbatim.
    """
    destuffed: list[int] = []
    run_value = -1
    run_length = 0
    index = 0
    stuffed_region_end = None
    while index < len(bits):
        bit = bits[index] & 1
        destuffed.append(bit)
        index += 1
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        boundary = _crc_end_if_known(destuffed)
        if boundary is not None and len(destuffed) >= boundary:
            stuffed_region_end = index
            break
        if run_length == 5:
            if index >= len(bits):
                raise CanDecodingError("stream ends inside a stuffed region")
            stuff_bit = bits[index] & 1
            if stuff_bit == run_value:
                from repro.errors import StuffingError

                raise StuffingError(
                    f"stuff violation at wire index {index}: six identical bits"
                )
            index += 1
            run_value = stuff_bit
            run_length = 1
    if stuffed_region_end is None:
        raise CanDecodingError("stream ended before the CRC field completed")
    destuffed.extend(b & 1 for b in bits[stuffed_region_end:])
    return destuffed


def _crc_end_if_known(destuffed: list[int]) -> int | None:
    """Return the logical index one past the CRC once the DLC is parseable."""
    if len(destuffed) < 2:
        return None
    # Determine format from the IDE bit.
    ide_index = 1 + BASE_ID_BITS + 1
    if len(destuffed) <= ide_index:
        return None
    if destuffed[ide_index] == 1:
        dlc_start = 1 + BASE_ID_BITS + 2 + EXTENDED_ID_BITS + 1 + 2
    else:
        dlc_start = 1 + BASE_ID_BITS + 2 + 1
    if len(destuffed) < dlc_start + DLC_BITS:
        return None
    dlc = bits_to_int(destuffed[dlc_start : dlc_start + DLC_BITS])
    dlc = min(dlc, MAX_DATA_BYTES)
    return dlc_start + DLC_BITS + 8 * dlc + CRC_BITS
