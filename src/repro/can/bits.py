"""Bit-level utilities for CAN streams: stuffing, destuffing, conversions.

CAN uses non-return-to-zero coding, so a bit of opposite polarity is
inserted after every run of five identical bits to guarantee enough edges
for receiver resynchronisation (ISO 11898-1).  Stuffing applies from the
start-of-frame bit through the CRC sequence; the CRC delimiter, ACK field
and end-of-frame are transmitted unstuffed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import CanEncodingError, StuffingError


def int_to_bits(value: int, width: int) -> list[int]:
    """Encode ``value`` as ``width`` bits, MSB first.

    Raises
    ------
    CanEncodingError
        If the value does not fit in ``width`` bits or is negative.
    """
    if width < 0:
        raise CanEncodingError(f"bit width must be non-negative, got {width}")
    if value < 0 or value >= (1 << width):
        raise CanEncodingError(f"value {value} does not fit in {width} bits")
    if not width:
        return []
    # format() renders the binary expansion at C speed; iterating the
    # ASCII encoding yields integer code points ('0' == 48).
    return [c - 48 for c in format(value, "b").zfill(width).encode()]


def bits_to_int(bits: Iterable[int]) -> int:
    """Decode an MSB-first bit sequence into an integer."""
    value = 0
    for bit in bits:
        value = (value << 1) | (bit & 1)
    return value


def stuff_bits(bits: Sequence[int]) -> list[int]:
    """Insert stuff bits after every run of five identical bits.

    The stuff bit itself participates in subsequent run counting, exactly
    as on a real bus (e.g. ``000001`` after stuffing ``00000`` can itself
    begin a run of ones).

    Returns
    -------
    list[int]
        The stuffed bitstream.
    """
    stuffed: list[int] = []
    append = stuffed.append
    run_value = -1
    run_length = 0
    for bit in bits:
        bit &= 1
        append(bit)
        if bit == run_value:
            run_length += 1
            # A run can only reach five through this increment; the
            # reset branch below always leaves it at one.
            if run_length == 5:
                stuff_bit = bit ^ 1
                append(stuff_bit)
                run_value = stuff_bit
                run_length = 1
        else:
            run_value = bit
            run_length = 1
    return stuffed


def destuff_bits(bits: Sequence[int]) -> list[int]:
    """Remove stuff bits from a stuffed stream.

    Raises
    ------
    StuffingError
        If six identical consecutive bits appear (a stuff violation, which
        on a real bus would be signalled as an error frame) or if a stuff
        bit has the same polarity as the run it terminates.
    """
    destuffed: list[int] = []
    run_value = -1
    run_length = 0
    expect_stuff = False
    for index, bit in enumerate(bits):
        bit = bit & 1
        if expect_stuff:
            if bit == run_value:
                raise StuffingError(
                    f"stuff violation at stuffed index {index}: expected a "
                    f"{run_value ^ 1} stuff bit after five {run_value}s"
                )
            run_value = bit
            run_length = 1
            expect_stuff = False
            continue
        destuffed.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            expect_stuff = True
    return destuffed


def stuffed_length(bits: Sequence[int]) -> int:
    """Return the length of ``bits`` after stuffing, without materialising it."""
    run_value = -1
    run_length = 0
    total = 0
    for bit in bits:
        bit = bit & 1
        total += 1
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            total += 1
            run_value = bit ^ 1
            run_length = 1
    return total


def count_stuff_bits(bits: Sequence[int]) -> int:
    """Return how many stuff bits stuffing would insert into ``bits``."""
    return stuffed_length(bits) - len(bits)
