"""Bitwise CAN arbitration simulation.

When several ECUs start transmitting in the same bit time, the wired-AND
bus resolves the conflict during the arbitration field: every transmitter
monitors the bus, and a node sending recessive (1) while the bus reads
dominant (0) has lost and must back off (Section 2.1.2, Figure 2.3).
Lower identifiers therefore preempt higher ones and no bandwidth is lost.

vProfile cares about arbitration because bits inside the arbitration
field may be driven by multiple ECUs at once, so their analog shape is
untrustworthy; only edges after the arbitration field identify a single
transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.can.frame import CanFrame
from repro.errors import CanError


@dataclass(frozen=True)
class ArbitrationResult:
    """Outcome of one arbitration round.

    Attributes
    ----------
    winner_index:
        Index (into the contending list) of the frame that won the bus.
    loss_bit:
        For each contender, the unstuffed bit index at which it backed
        off, or ``None`` for the winner.
    """

    winner_index: int
    loss_bit: tuple[int | None, ...]


def arbitrate(frames: Sequence[CanFrame]) -> ArbitrationResult:
    """Resolve simultaneous transmission of ``frames``.

    Simulates the wired-AND bus bit by bit over the arbitration fields.
    Mixing standard and extended frames is supported: a standard frame's
    dominant RTR bit beats an extended frame's recessive SRR at the same
    position, exactly as on a real bus.

    Raises
    ------
    CanError
        If no frames are given or two contenders share an identical
        arbitration field (which a real bus forbids — it would corrupt
        both frames past arbitration).
    """
    if not frames:
        raise CanError("arbitrate() requires at least one frame")
    if len(frames) == 1:
        return ArbitrationResult(winner_index=0, loss_bit=(None,))

    arb_fields = [frame.arbitration_bits() for frame in frames]
    alive = set(range(len(frames)))
    loss_bit: list[int | None] = [None] * len(frames)
    max_len = max(len(bits) for bits in arb_fields)

    for bit_index in range(max_len):
        # A transmitter whose arbitration field has ended has already won
        # priority over longer fields still driving recessive SRR/IDE bits
        # only if the bus stays recessive; model by treating exhausted
        # fields as dominant-complete (standard RTR=0 ends at bit 13).
        contenders = {i for i in alive if bit_index < len(arb_fields[i])}
        finished = alive - contenders
        if not contenders:
            break
        bus_bit = min(arb_fields[i][bit_index] for i in contenders)
        if finished:
            # A finished standard frame has sent dominant RTR where the
            # extended frame sends recessive IDE; the standard frame wins.
            bus_bit = 0
        for i in sorted(contenders):
            if arb_fields[i][bit_index] == 1 and bus_bit == 0:
                loss_bit[i] = bit_index
                alive.discard(i)
        if len(alive) == 1:
            break

    if len(alive) != 1:
        survivors = sorted(alive)
        ids = ", ".join(f"0x{frames[i].can_id:X}" for i in survivors)
        raise CanError(
            f"arbitration did not resolve: frames [{ids}] share an "
            "arbitration field"
        )
    winner = next(iter(alive))
    return ArbitrationResult(winner_index=winner, loss_bit=tuple(loss_bit))


def arbitration_order(frames: Sequence[CanFrame]) -> list[int]:
    """Return indices of ``frames`` in the order they would win the bus.

    Repeatedly arbitrates the remaining set, which is how a saturated bus
    drains a backlog of pending frames.
    """
    remaining = list(range(len(frames)))
    order: list[int] = []
    while remaining:
        result = arbitrate([frames[i] for i in remaining])
        order.append(remaining.pop(result.winner_index))
    return order
