"""CAN fault confinement: error counters, error states, bus-off.

Implements the Bosch CAN 2.0 fault-confinement rules (simplified to the
clauses relevant for security analysis):

* every node keeps a transmit error counter (TEC) and a receive error
  counter (REC);
* a transmit error adds 8 to TEC, a receive error adds 1 (8 when the
  node was the one signalling the error), successful operations
  subtract 1;
* TEC or REC above 127 puts the node in **error-passive** (it may only
  send passive error flags and waits extra suspend time);
* TEC above 255 puts the node in **bus-off**: it must not touch the bus
  until it has observed 128 occurrences of 11 consecutive recessive
  bits.

Security relevance (paper Section 1.1 cites fault-induction attacks
[6]): an attacker who can force bit errors on a victim's transmissions
walks the victim's TEC up by +8 per message and knocks it off the bus
after 32 induced errors — the *bus-off attack* simulated in
:mod:`repro.attacks.bus_off`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import CanError

#: Counter thresholds from the Bosch specification.
ERROR_PASSIVE_LIMIT = 127
BUS_OFF_LIMIT = 255
#: Bus-off recovery: 128 occurrences of 11 consecutive recessive bits.
RECOVERY_SEQUENCES = 128
RECOVERY_BITS_PER_SEQUENCE = 11

TX_ERROR_PENALTY = 8
RX_ERROR_PENALTY = 1
RX_PRIMARY_ERROR_PENALTY = 8
SUCCESS_REWARD = 1


class ErrorState(str, Enum):
    """The three fault-confinement states."""

    ERROR_ACTIVE = "error-active"
    ERROR_PASSIVE = "error-passive"
    BUS_OFF = "bus-off"


@dataclass
class FaultConfinement:
    """Per-node error counters and state machine.

    Attributes
    ----------
    tec / rec:
        Transmit / receive error counters.
    recovery_progress:
        Completed 11-recessive-bit sequences while in bus-off.
    """

    tec: int = 0
    rec: int = 0
    recovery_progress: int = 0
    history: list[tuple[str, int, int]] = field(default_factory=list, repr=False)

    @property
    def state(self) -> ErrorState:
        if self.tec > BUS_OFF_LIMIT:
            return ErrorState.BUS_OFF
        if self.tec > ERROR_PASSIVE_LIMIT or self.rec > ERROR_PASSIVE_LIMIT:
            return ErrorState.ERROR_PASSIVE
        return ErrorState.ERROR_ACTIVE

    @property
    def is_bus_off(self) -> bool:
        return self.state is ErrorState.BUS_OFF

    def _record(self, event: str) -> None:
        self.history.append((event, self.tec, self.rec))

    # ------------------------------------------------------------------
    # Transmit side
    # ------------------------------------------------------------------
    def on_tx_success(self) -> None:
        """A frame was transmitted and acknowledged."""
        if self.is_bus_off:
            raise CanError("a bus-off node cannot have transmitted")
        self.tec = max(0, self.tec - SUCCESS_REWARD)
        self._record("tx-success")

    def on_tx_error(self) -> None:
        """A transmission was destroyed by a bit/ACK/form error."""
        if self.is_bus_off:
            raise CanError("a bus-off node cannot have transmitted")
        self.tec += TX_ERROR_PENALTY
        self._record("tx-error")

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def on_rx_success(self) -> None:
        """A frame was received correctly."""
        self.rec = max(0, self.rec - SUCCESS_REWARD)
        self._record("rx-success")

    def on_rx_error(self, *, primary: bool = False) -> None:
        """A reception failed (``primary``: this node flagged it first)."""
        self.rec += RX_PRIMARY_ERROR_PENALTY if primary else RX_ERROR_PENALTY
        self._record("rx-error")

    # ------------------------------------------------------------------
    # Bus-off recovery
    # ------------------------------------------------------------------
    def observe_recessive_bits(self, count: int) -> bool:
        """Feed idle bus time to a bus-off node; True when recovered.

        ``count`` recessive bit times contribute
        ``count // RECOVERY_BITS_PER_SEQUENCE`` sequences toward the 128
        required.  On recovery both counters reset and the node returns
        to error-active.
        """
        if not self.is_bus_off:
            raise CanError("only a bus-off node runs the recovery sequence")
        if count < 0:
            raise CanError("recessive bit count must be non-negative")
        self.recovery_progress += count // RECOVERY_BITS_PER_SEQUENCE
        if self.recovery_progress >= RECOVERY_SEQUENCES:
            self.tec = 0
            self.rec = 0
            self.recovery_progress = 0
            self._record("recovered")
            return True
        return False

    def recovery_time_s(self, bitrate: float) -> float:
        """Minimum idle-bus time a bus-off node needs to recover."""
        remaining = max(RECOVERY_SEQUENCES - self.recovery_progress, 0)
        return remaining * RECOVERY_BITS_PER_SEQUENCE / bitrate
