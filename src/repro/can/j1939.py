"""SAE J1939 identifier model.

J1939 rides on CAN 2.0B extended frames and subdivides the 29-bit
identifier into a 3-bit priority, an 18-bit parameter group number (PGN)
and an 8-bit source address (SA) — see Figure 2.4 / Table 2.2 of the
paper.  Each SA maps to exactly one ECU, which is the property vProfile
relies on: the SA claims a sender, and the voltage fingerprint verifies
the claim.

The PGN itself splits into a data page bit, a PDU format byte (PF) and a
PDU specific byte (PS).  When PF < 240 (PDU1) the PS is a destination
address and is excluded from the PGN proper; when PF >= 240 (PDU2) the
message is broadcast and PS is a group extension.  We implement both so
that realistic truck traffic (mixed PDU1/PDU2) can be generated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CanEncodingError

#: Number of bits in each J1939 ID field.
PRIORITY_BITS = 3
PGN_BITS = 18
SA_BITS = 8

MAX_PRIORITY = (1 << PRIORITY_BITS) - 1
MAX_PGN = (1 << PGN_BITS) - 1
MAX_SA = (1 << SA_BITS) - 1

#: Conventional J1939 priorities (lower wins arbitration).
PRIORITY_CONTROL = 3
PRIORITY_DEFAULT = 6
PRIORITY_LOW = 7

#: Well-known source addresses (SAE J1939-81 appendix B).
SA_ENGINE_1 = 0x00
SA_TRANSMISSION_1 = 0x03
SA_BRAKES_SYSTEM = 0x0B
SA_INSTRUMENT_CLUSTER = 0x17
SA_BODY_CONTROLLER = 0x21
SA_CAB_CONTROLLER = 0x31
SA_RETARDER_ENGINE = 0x0F

#: Well-known parameter group numbers.
PGN_EEC1 = 0xF004          # Electronic Engine Controller 1 (engine speed)
PGN_EEC2 = 0xF003          # Electronic Engine Controller 2 (pedal position)
PGN_ETC1 = 0xF002          # Electronic Transmission Controller 1
PGN_EBC1 = 0xF001          # Electronic Brake Controller 1
PGN_CCVS = 0xFEF1          # Cruise Control / Vehicle Speed
PGN_ET1 = 0xFEEE           # Engine Temperature 1
PGN_VEP1 = 0xFEF7          # Vehicle Electrical Power 1
PGN_DM1 = 0xFECA           # Active diagnostic trouble codes
PGN_TSC1 = 0x0000          # Torque/Speed Control 1 (PDU1, destination specific)


@dataclass(frozen=True)
class J1939Id:
    """A decoded 29-bit J1939 identifier.

    Attributes
    ----------
    priority:
        3-bit arbitration priority; lower values win arbitration.
    pgn:
        18-bit parameter group number identifying the message content.
        For PDU1 PGNs the low byte is zero and the destination lives in
        the PS byte of the wire identifier.
    source_address:
        8-bit address of the transmitting ECU.
    destination_address:
        Destination for PDU1 messages; ``None`` for broadcast (PDU2).
    """

    priority: int
    pgn: int
    source_address: int
    destination_address: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.priority <= MAX_PRIORITY:
            raise CanEncodingError(f"priority {self.priority} out of range")
        if not 0 <= self.pgn <= MAX_PGN:
            raise CanEncodingError(f"PGN {self.pgn} out of range")
        if not 0 <= self.source_address <= MAX_SA:
            raise CanEncodingError(f"SA {self.source_address} out of range")
        if self.destination_address is not None:
            if not 0 <= self.destination_address <= MAX_SA:
                raise CanEncodingError(
                    f"DA {self.destination_address} out of range"
                )
            if not self.is_pdu1:
                raise CanEncodingError(
                    f"PGN 0x{self.pgn:05X} is PDU2 (broadcast) and cannot "
                    "carry a destination address"
                )

    @property
    def pdu_format(self) -> int:
        """The PF byte (bits 16..9 of the PGN)."""
        return (self.pgn >> 8) & 0xFF

    @property
    def is_pdu1(self) -> bool:
        """True when the PGN addresses a specific destination (PF < 240)."""
        return self.pdu_format < 240

    def to_can_id(self) -> int:
        """Pack into the 29-bit identifier transmitted on the wire."""
        pgn_field = self.pgn
        if self.is_pdu1:
            # PDU1: the PS byte carries the destination address.
            pgn_field = (self.pgn & 0x3FF00) | (self.destination_address or 0)
        return (self.priority << (PGN_BITS + SA_BITS)) | (pgn_field << SA_BITS) | self.source_address

    @classmethod
    def from_can_id(cls, can_id: int) -> "J1939Id":
        """Decode a 29-bit identifier back into its J1939 fields."""
        if not 0 <= can_id < (1 << 29):
            raise CanEncodingError(f"CAN id 0x{can_id:X} is not 29 bits")
        source_address = can_id & 0xFF
        pgn_field = (can_id >> SA_BITS) & MAX_PGN
        priority = (can_id >> (PGN_BITS + SA_BITS)) & MAX_PRIORITY
        pdu_format = (pgn_field >> 8) & 0xFF
        if pdu_format < 240:
            destination: int | None = pgn_field & 0xFF
            pgn = pgn_field & 0x3FF00
        else:
            destination = None
            pgn = pgn_field
        return cls(
            priority=priority,
            pgn=pgn,
            source_address=source_address,
            destination_address=destination,
        )

    def __str__(self) -> str:
        dest = "" if self.destination_address is None else f" DA=0x{self.destination_address:02X}"
        return (
            f"J1939(P={self.priority}, PGN=0x{self.pgn:05X}, "
            f"SA=0x{self.source_address:02X}{dest})"
        )


def extract_source_address(can_id: int) -> int:
    """Return the SA — the low byte of a 29-bit J1939 identifier.

    This is the only piece of the identifier vProfile needs (Section 2.1.2).
    """
    if not 0 <= can_id < (1 << 29):
        raise CanEncodingError(f"CAN id 0x{can_id:X} is not 29 bits")
    return can_id & 0xFF
