"""Periodic J1939 traffic generation.

Truck ECUs broadcast most parameter groups on fixed periods (EEC1 every
10-20 ms, CCVS every 100 ms, ...).  This module models an ECU's message
schedule and produces the stream of frames it would queue for
transmission, which the bus scheduler then serialises via arbitration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.can.frame import CanFrame
from repro.can.j1939 import J1939Id
from repro.errors import CanEncodingError


@dataclass(frozen=True)
class MessageSchedule:
    """One periodic message emitted by an ECU.

    Attributes
    ----------
    j1939_id:
        Identifier (priority / PGN / SA) of the message.
    period_s:
        Transmission period in seconds.
    dlc:
        Payload length in bytes (J1939 PGNs are almost always 8).
    phase_s:
        Offset of the first transmission from time zero.
    jitter_s:
        Uniform release jitter applied to every transmission, modelling
        task-scheduling noise inside the ECU firmware.
    """

    j1939_id: J1939Id
    period_s: float
    dlc: int = 8
    phase_s: float = 0.0
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise CanEncodingError(f"period must be positive, got {self.period_s}")
        if not 0 <= self.dlc <= 8:
            raise CanEncodingError(f"DLC {self.dlc} out of range")
        if self.jitter_s < 0 or self.phase_s < 0:
            raise CanEncodingError("phase and jitter must be non-negative")


@dataclass(frozen=True)
class ScheduledFrame:
    """A frame queued for transmission at a release time.

    Attributes
    ----------
    release_s:
        Instant at which the sending ECU enqueues the frame.
    frame:
        The CAN data frame.
    sender:
        Opaque label of the transmitting ECU (ground truth for the
        evaluation harness; never visible to the detector).
    """

    release_s: float
    frame: CanFrame
    sender: str


@dataclass
class TrafficGenerator:
    """Generate the frame release stream for a set of message schedules.

    Payload bytes are drawn pseudo-randomly per transmission, with a
    couple of bytes swept slowly to mimic signals like engine speed so
    that consecutive frames differ (exercising bit stuffing variety).
    """

    schedules: list[tuple[str, MessageSchedule]]
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def frames_until(self, horizon_s: float) -> list[ScheduledFrame]:
        """All frame releases in ``[0, horizon_s)``, sorted by release time."""
        released: list[ScheduledFrame] = []
        for sender, schedule in self.schedules:
            count = int(np.ceil((horizon_s - schedule.phase_s) / schedule.period_s))
            for k in range(max(count, 0)):
                release = schedule.phase_s + k * schedule.period_s
                if schedule.jitter_s:
                    release += float(self._rng.uniform(0.0, schedule.jitter_s))
                if release >= horizon_s:
                    continue
                frame = CanFrame(
                    can_id=schedule.j1939_id.to_can_id(),
                    data=self._payload(schedule, k),
                    extended=True,
                )
                released.append(ScheduledFrame(release, frame, sender))
        released.sort(key=lambda s: (s.release_s, s.frame.can_id))
        return released

    def iter_frames(self, horizon_s: float) -> Iterator[ScheduledFrame]:
        """Iterate releases in time order (convenience wrapper)."""
        return iter(self.frames_until(horizon_s))

    def _payload(self, schedule: MessageSchedule, index: int) -> bytes:
        """Produce a structured payload, J1939-style.

        Real parameter groups mix signal kinds; we model the common ones
        so that payload-level IDSs (see :mod:`repro.ids.payload`) have
        realistic envelopes to learn:

        * byte 0 — wrapping counter (message ramp, steps of 3);
        * byte 1 — sawtooth offset by the SA;
        * byte 2 — bounded noisy sensor value (90..110 band);
        * byte 3 — constant status/marker byte;
        * bytes 4+ — unconstrained (random) signal content.
        """
        if schedule.dlc == 0:
            return b""
        data = self._rng.integers(0, 256, size=schedule.dlc, dtype=np.uint8)
        data[0] = (index * 3) % 256
        if schedule.dlc > 1:
            data[1] = (index * 7 + schedule.j1939_id.source_address) % 256
        if schedule.dlc > 2:
            data[2] = 100 + int(self._rng.integers(-10, 11))
        if schedule.dlc > 3:
            data[3] = 0xFA
        return bytes(data)
