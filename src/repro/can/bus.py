"""CAN bus scheduler: serialise released frames through arbitration.

Turns the asynchronous frame releases of :mod:`repro.can.traffic` into
the actual transmission timeline of a shared bus: one frame occupies the
bus at a time, simultaneous contenders are resolved by bitwise
arbitration, and losers retry as soon as the bus frees (plus the 3-bit
interframe space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.can.arbitration import arbitrate
from repro.can.frame import CanFrame
from repro.can.traffic import ScheduledFrame
from repro.errors import CanError

#: Interframe space between consecutive data frames, in bit times.
INTERFRAME_SPACE_BITS = 3


@dataclass(frozen=True)
class BusTransmission:
    """One frame as actually transmitted on the bus.

    Attributes
    ----------
    start_s:
        Time of the SOF bit.
    frame:
        The transmitted frame.
    sender:
        Ground-truth sender label.
    contended:
        True when this frame won an arbitration round against at least
        one other pending frame.
    """

    start_s: float
    frame: CanFrame
    sender: str
    contended: bool

    def duration_s(self, bitrate: float) -> float:
        """Wire time of the frame at ``bitrate`` bits/second."""
        return len(self.frame.stuffed_bits()) / bitrate


class CanBus:
    """A single shared CAN bus at a fixed bitrate.

    Parameters
    ----------
    bitrate:
        Nominal bit rate in bits per second.  Both evaluation vehicles
        run 250 kb/s J1939 buses.
    """

    def __init__(self, bitrate: float = 250_000.0):
        if bitrate <= 0:
            raise CanError(f"bitrate must be positive, got {bitrate}")
        self.bitrate = float(bitrate)

    @property
    def bit_time_s(self) -> float:
        """Duration of one bit on the wire."""
        return 1.0 / self.bitrate

    def schedule(self, releases: Sequence[ScheduledFrame]) -> list[BusTransmission]:
        """Serialise released frames into a conflict-free transmission log.

        Frames released while the bus is busy wait and contend in the
        next arbitration round; identical release times contend
        immediately.  The output is ordered by transmission start time.
        """
        pending = sorted(releases, key=lambda s: s.release_s)
        transmissions: list[BusTransmission] = []
        bus_free_at = 0.0
        queue: list[ScheduledFrame] = []
        index = 0
        while index < len(pending) or queue:
            if not queue:
                # Fast-forward to the next release.
                next_release = pending[index].release_s
                start = max(next_release, bus_free_at)
                while index < len(pending) and pending[index].release_s <= start:
                    queue.append(pending[index])
                    index += 1
            start = max(bus_free_at, min(s.release_s for s in queue))
            # Everything released by the start instant contends.
            while index < len(pending) and pending[index].release_s <= start:
                queue.append(pending[index])
                index += 1
            contenders = [s for s in queue if s.release_s <= start]
            result = arbitrate([s.frame for s in contenders])
            winner = contenders[result.winner_index]
            queue.remove(winner)
            transmissions.append(
                BusTransmission(
                    start_s=start,
                    frame=winner.frame,
                    sender=winner.sender,
                    contended=len(contenders) > 1,
                )
            )
            frame_bits = len(winner.frame.stuffed_bits()) + INTERFRAME_SPACE_BITS
            bus_free_at = start + frame_bits * self.bit_time_s
        return transmissions

    def utilisation(self, transmissions: Sequence[BusTransmission], horizon_s: float) -> float:
        """Fraction of ``horizon_s`` spent transmitting frames."""
        if horizon_s <= 0:
            raise CanError("horizon must be positive")
        busy = sum(t.duration_s(self.bitrate) for t in transmissions)
        return busy / horizon_s
