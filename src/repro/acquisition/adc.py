"""ADC model: offset-binary quantisation and resolution reduction.

The paper's captures are raw ADC counts in offset binary (hence the "good
starting point" edge threshold of 38,000 on 16-bit data, roughly 1 V of
differential signal on a +/-5 V front end).  We reproduce that numeric
convention: 0 counts = negative full scale, mid-scale = 0 V.

Resolution reduction follows the paper's method of dropping least
significant bits (Section 3.2.1, Figure 3.1b), and rate reduction is
plain decimation of an oversampled capture (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AcquisitionError

#: Differential full-scale range of the capture front end, volts.
DEFAULT_V_MIN = -5.0
DEFAULT_V_MAX = 5.0


@dataclass(frozen=True)
class AdcConfig:
    """Digitizer configuration.

    Attributes
    ----------
    resolution_bits:
        ADC word width; the paper uses 16 bits (AlazarTech card, Vehicle
        A) and 12 bits (custom board, Vehicle B).
    v_min / v_max:
        Differential input range mapped onto the code space.
    """

    resolution_bits: int = 16
    v_min: float = DEFAULT_V_MIN
    v_max: float = DEFAULT_V_MAX

    def __post_init__(self) -> None:
        if not 2 <= self.resolution_bits <= 24:
            raise AcquisitionError(
                f"resolution must be 2..24 bits, got {self.resolution_bits}"
            )
        if self.v_max <= self.v_min:
            raise AcquisitionError("v_max must exceed v_min")

    @property
    def full_scale_counts(self) -> int:
        """Largest representable code."""
        return (1 << self.resolution_bits) - 1

    @property
    def volts_per_count(self) -> float:
        """LSB size in volts."""
        return (self.v_max - self.v_min) / self.full_scale_counts

    def quantize(self, volts: np.ndarray) -> np.ndarray:
        """Convert a voltage vector to offset-binary counts (clipping)."""
        volts = np.asarray(volts, dtype=float)
        # Same op sequence as rint((v - v_min) / lsb) then clip, but the
        # subtraction's fresh buffer is reused for every later step — the
        # engine quantizes megasample blocks, where the extra (G, S)
        # temporaries are measurable.
        codes = volts - self.v_min
        codes /= self.volts_per_count
        np.rint(codes, out=codes)
        np.clip(codes, 0, self.full_scale_counts, out=codes)
        return codes.astype(np.int32)

    def to_volts(self, counts: np.ndarray) -> np.ndarray:
        """Convert counts back to volts (code centre)."""
        return np.asarray(counts, dtype=float) * self.volts_per_count + self.v_min

    def volts_to_counts(self, volts: float) -> float:
        """Map a voltage to its (unrounded) position on the code axis.

        Useful for expressing thresholds: 1.0 V on a 16-bit +/-5 V front
        end sits near code 39,321 — the paper's "38,000 is a good
        starting point".
        """
        return (volts - self.v_min) / self.volts_per_count


def reduce_resolution(counts: np.ndarray, from_bits: int, to_bits: int) -> np.ndarray:
    """Drop least-significant bits, as the paper does in software.

    The result stays on the *reduced* code scale (0..2^to_bits-1); the
    paper's Figure 3.1b conversion artefacts come from rescaling these
    codes back to volts with the original offset.
    """
    if to_bits > from_bits:
        raise AcquisitionError(
            f"cannot raise resolution from {from_bits} to {to_bits} bits"
        )
    if to_bits < 1:
        raise AcquisitionError("resolution must be at least 1 bit")
    shift = from_bits - to_bits
    return np.asarray(counts, dtype=np.int64) >> shift


def downsample(samples: np.ndarray, factor: int) -> np.ndarray:
    """Keep every ``factor``-th sample (software decimation).

    The paper downsamples 20 MS/s captures to 10/5/2.5 MS/s this way; no
    anti-alias filter is applied because the signal of interest is far
    below Nyquist even at the lowest rate.
    """
    if factor < 1:
        raise AcquisitionError(f"downsample factor must be >= 1, got {factor}")
    return np.asarray(samples)[::factor]
