"""Voltage trace container.

A :class:`VoltageTrace` is one digitized CAN message: ADC counts plus the
capture parameters needed to interpret them.  It also carries optional
ground-truth metadata (true sender, the frame) used only by the
evaluation harness — the detector itself never reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.acquisition.adc import AdcConfig, downsample, reduce_resolution
from repro.errors import AcquisitionError


@dataclass(frozen=True)
class VoltageTrace:
    """A digitized capture of (part of) one CAN frame.

    Attributes
    ----------
    counts:
        ADC codes, offset binary.
    sample_rate:
        Samples per second.
    resolution_bits:
        ADC word width of ``counts``.
    bitrate:
        Bus bit rate during the capture.
    start_s:
        Bus time of the first sample.
    metadata:
        Ground-truth annotations for evaluation (``sender``, ``frame``,
        ``is_attack`` ...).  Never consulted by the detection path.
    """

    counts: np.ndarray
    sample_rate: float
    resolution_bits: int
    bitrate: float = 250_000.0
    start_s: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts)
        if counts.ndim != 1:
            raise AcquisitionError("a trace must be a 1-D sample vector")
        if self.sample_rate <= 0 or self.bitrate <= 0:
            raise AcquisitionError("sample_rate and bitrate must be positive")
        object.__setattr__(self, "counts", counts)

    def __len__(self) -> int:
        return int(self.counts.size)

    @property
    def samples_per_bit(self) -> float:
        """Digitizer samples per bus bit."""
        return self.sample_rate / self.bitrate

    @property
    def duration_s(self) -> float:
        """Capture length in seconds."""
        return self.counts.size / self.sample_rate

    def downsampled(self, factor: int) -> "VoltageTrace":
        """Return a copy decimated by ``factor``."""
        return replace(
            self,
            counts=downsample(self.counts, factor),
            sample_rate=self.sample_rate / factor,
        )

    def at_resolution(self, to_bits: int) -> "VoltageTrace":
        """Return a copy with least-significant bits dropped."""
        return replace(
            self,
            counts=reduce_resolution(self.counts, self.resolution_bits, to_bits),
            resolution_bits=to_bits,
        )

    def to_volts(self, adc: AdcConfig | None = None) -> np.ndarray:
        """Convert the counts to volts.

        When ``adc`` is omitted a full-scale +/-5 V front end at this
        trace's resolution is assumed.
        """
        if adc is None:
            adc = AdcConfig(resolution_bits=self.resolution_bits)
        if adc.resolution_bits != self.resolution_bits:
            raise AcquisitionError(
                f"ADC config is {adc.resolution_bits}-bit but the trace is "
                f"{self.resolution_bits}-bit"
            )
        return adc.to_volts(self.counts)
