"""Acquisition substrate: ADC model, traces and the capture chain."""

from repro.acquisition.adc import (
    DEFAULT_V_MAX,
    DEFAULT_V_MIN,
    AdcConfig,
    downsample,
    reduce_resolution,
)
from repro.acquisition.archive import load_traces, save_traces
from repro.acquisition.sampler import CaptureChain
from repro.acquisition.segmentation import (
    SegmentationConfig,
    assemble_stream,
    segment_capture,
)
from repro.acquisition.trace import VoltageTrace

__all__ = [
    "load_traces",
    "save_traces",
    "SegmentationConfig",
    "assemble_stream",
    "segment_capture",
    "DEFAULT_V_MAX",
    "DEFAULT_V_MIN",
    "AdcConfig",
    "downsample",
    "reduce_resolution",
    "CaptureChain",
    "VoltageTrace",
]
