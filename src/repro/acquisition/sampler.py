"""Capture chain: frame -> waveform -> ADC -> :class:`VoltageTrace`.

Bundles the analog synthesis and the ADC into one object so that vehicle
datasets and attack scenarios can capture messages with a single call,
exactly like the paper's digitizer hanging off the OBD-II port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.acquisition.adc import AdcConfig
from repro.acquisition.trace import VoltageTrace
from repro.analog.channel import ChannelNoise
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.analog.transceiver import TransceiverParams
from repro.analog.waveform import SynthesisConfig, synthesize_waveform
from repro.can.frame import CanFrame


@dataclass(frozen=True)
class CaptureChain:
    """A digitizer attached to a simulated bus.

    Attributes
    ----------
    synthesis:
        Bit rate, sample rate and framing of the rendered waveform.
    adc:
        Front-end range and resolution.
    noise:
        Channel noise model (``None`` for ideal captures).
    """

    synthesis: SynthesisConfig
    adc: AdcConfig
    noise: ChannelNoise | None = None

    def capture_frame(
        self,
        frame: CanFrame,
        transceiver: TransceiverParams,
        *,
        env: Environment = NOMINAL_ENVIRONMENT,
        rng: np.random.Generator | None = None,
        start_s: float = 0.0,
        metadata: dict[str, Any] | None = None,
        ack_driver: TransceiverParams | None = None,
    ) -> VoltageTrace:
        """Digitize one frame transmitted by ``transceiver``.

        The ground-truth sender name is always recorded in the trace
        metadata for the evaluation harness.
        """
        wire_bits = frame.stuffed_bits()
        ack_index = None
        if ack_driver is not None:
            # The ACK slot sits two bits before the ACK delimiter: the
            # stream tail is [.., CRC delim, ACK, ACK delim, EOF x7].
            ack_index = len(wire_bits) - (1 + 1 + 7)
        volts = synthesize_waveform(
            wire_bits,
            transceiver,
            self.synthesis,
            env=env,
            noise=self.noise,
            rng=rng,
            ack_bit_index=ack_index,
            ack_driver=ack_driver,
        )
        meta: dict[str, Any] = {"sender": transceiver.name, "frame": frame}
        if metadata:
            meta.update(metadata)
        return VoltageTrace(
            counts=self.adc.quantize(volts),
            sample_rate=self.synthesis.sample_rate,
            resolution_bits=self.adc.resolution_bits,
            bitrate=self.synthesis.bitrate,
            start_s=start_s,
            metadata=meta,
        )
