"""Continuous-capture segmentation: one long record -> per-message traces.

A real digitizer on the OBD-II port records one continuous sample
stream; messages must be cut out of it before Algorithm 1 can run.  CAN
guarantees the bus idles recessive between frames (3+ bit interframe
space, arbitrarily long idle), so message boundaries are recessive runs
of at least a few bit times followed by a dominant SOF.

:func:`segment_capture` implements that: it scans the stream for
dominant activity separated by sufficiently long recessive runs and
emits one :class:`VoltageTrace` per burst, with a little recessive
padding kept on both sides so edge-set extraction can find the SOF.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.errors import AcquisitionError


@dataclass(frozen=True)
class SegmentationConfig:
    """How message boundaries are located.

    Attributes
    ----------
    threshold:
        ADC-count level separating dominant from recessive.
    min_idle_bits:
        A recessive run at least this many bit times long separates two
        messages.  It must exceed 5 bits (the longest stuffed in-frame
        recessive run) and stay below 10 (EOF's 7 recessive bits plus
        the 3-bit interframe space).
    min_message_bits:
        Dominant bursts shorter than this are discarded as glitches.
    padding_bits:
        Recessive context kept before/after each message so SOF search
        and edge windows have room.
    """

    threshold: float
    min_idle_bits: float = 7.5
    min_message_bits: float = 10.0
    padding_bits: float = 1.5

    def __post_init__(self) -> None:
        if self.min_idle_bits <= 0 or self.min_message_bits <= 0:
            raise AcquisitionError("segmentation windows must be positive")


def segment_capture(
    stream: VoltageTrace,
    config: SegmentationConfig | None = None,
) -> list[VoltageTrace]:
    """Cut a continuous capture into per-message traces.

    Returns the messages in stream order.  Each trace's ``start_s`` is
    the bus time of its first (padded) sample; metadata is inherited
    from the stream.
    """
    if config is None:
        from repro.acquisition.adc import AdcConfig

        adc = AdcConfig(resolution_bits=stream.resolution_bits)
        config = SegmentationConfig(threshold=adc.volts_to_counts(1.0))

    samples = np.asarray(stream.counts)
    spb = stream.samples_per_bit
    min_idle = int(round(config.min_idle_bits * spb))
    min_message = int(round(config.min_message_bits * spb))
    padding = int(round(config.padding_bits * spb))

    dominant = samples >= config.threshold
    if not dominant.any():
        return []

    # Close gaps shorter than the idle window: a frame's internal
    # recessive runs (up to ~10 bit times inside the data field) must
    # not split it.  A run of consecutive dominant flags with gaps
    # < min_idle belongs to one message.
    dominant_indices = np.nonzero(dominant)[0]
    gaps = np.diff(dominant_indices)
    boundaries = np.nonzero(gaps > min_idle)[0]
    starts = np.concatenate([[dominant_indices[0]], dominant_indices[boundaries + 1]])
    ends = np.concatenate([dominant_indices[boundaries], [dominant_indices[-1]]])

    traces: list[VoltageTrace] = []
    for start, end in zip(starts, ends):
        if end - start < min_message:
            continue  # glitch / partial frame at the capture edge
        lo = max(0, start - padding)
        hi = min(samples.size, end + padding + 1)
        traces.append(
            replace(
                stream,
                counts=samples[lo:hi],
                start_s=stream.start_s + lo / stream.sample_rate,
                metadata=dict(stream.metadata),
            )
        )
    return traces


def assemble_stream(
    traces: list[VoltageTrace],
    *,
    idle_level_counts: float | None = None,
    metadata: dict[str, Any] | None = None,
) -> VoltageTrace:
    """Concatenate per-message traces into one continuous capture.

    The inverse of :func:`segment_capture` for simulation use: message
    traces are placed at their ``start_s`` positions in one sample
    stream, with the gaps filled by the recessive idle level (estimated
    from the traces when not given).  Overlapping traces are rejected —
    a real bus serialises messages.
    """
    if not traces:
        raise AcquisitionError("cannot assemble an empty stream")
    ordered = sorted(traces, key=lambda t: t.start_s)
    rate = ordered[0].sample_rate
    bits = ordered[0].resolution_bits
    bitrate = ordered[0].bitrate
    for trace in ordered:
        if (trace.sample_rate, trace.resolution_bits, trace.bitrate) != (
            rate,
            bits,
            bitrate,
        ):
            raise AcquisitionError("traces have mixed capture parameters")

    if idle_level_counts is None:
        idle_level_counts = float(
            np.median([np.median(t.counts[: max(4, len(t) // 50)]) for t in ordered])
        )

    origin = ordered[0].start_s
    end_index = 0
    placements = []
    for trace in ordered:
        index = int(round((trace.start_s - origin) * rate))
        if index < end_index:
            raise AcquisitionError(
                f"trace at t={trace.start_s:.6f}s overlaps the previous message"
            )
        placements.append((index, trace))
        end_index = index + len(trace)

    total = end_index
    stream = np.full(total, round(idle_level_counts), dtype=ordered[0].counts.dtype)
    for index, trace in placements:
        stream[index : index + len(trace)] = trace.counts
    return VoltageTrace(
        counts=stream,
        sample_rate=rate,
        resolution_bits=bits,
        bitrate=bitrate,
        start_s=origin,
        metadata=metadata or {},
    )
