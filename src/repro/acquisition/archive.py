"""Trace archives: persist captures as ``.npz`` files.

The paper's methodology records bus captures once and replays them into
vProfile for every experiment ("For test repeatability, we recorded the
CAN bus traffic of each vehicle and replayed it", Section 4.1).  This
module gives the library the same workflow: a capture session can be
saved to a single compressed archive and replayed later by the CLI, the
experiments, or a user's own harness.

All traces in one archive must share their capture parameters and sample
count (which they do when produced by one capture chain with a fixed
``max_frame_bits``).
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import BinaryIO, Union

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.can.frame import CanFrame
from repro.errors import AcquisitionError

#: Archive format version, stored for forward compatibility.
ARCHIVE_VERSION = 1

#: Archives read and write either a filesystem path or an open binary
#: file object (the CLI's ``-`` stdin/stdout plumbing relies on this).
PathOrFile = Union[str, Path, BinaryIO]


def _as_target(path: PathOrFile) -> Union[Path, BinaryIO]:
    if hasattr(path, "write") or hasattr(path, "read"):
        return path  # file-like: numpy handles it natively
    return Path(path)


def save_traces(path: PathOrFile, traces: list[VoltageTrace]) -> None:
    """Save a homogeneous list of traces to a compressed ``.npz``.

    ``path`` may be a filesystem path or a writable binary file object.
    Ground-truth metadata (``sender`` and the frame's id/payload) is
    preserved so that replayed experiments can still be scored.
    """
    if not traces:
        raise AcquisitionError("refusing to save an empty capture")
    lengths = {len(t) for t in traces}
    if len(lengths) != 1:
        raise AcquisitionError(
            f"traces have mixed lengths {sorted(lengths)}; archives require "
            "a fixed truncation"
        )
    rates = {t.sample_rate for t in traces}
    bits = {t.resolution_bits for t in traces}
    bitrates = {t.bitrate for t in traces}
    if len(rates) != 1 or len(bits) != 1 or len(bitrates) != 1:
        raise AcquisitionError("traces have mixed capture parameters")

    senders = np.array([t.metadata.get("sender", "") for t in traces])
    frames = [t.metadata.get("frame") for t in traces]
    can_ids = np.array(
        [f.can_id if isinstance(f, CanFrame) else -1 for f in frames],
        dtype=np.int64,
    )
    extended = np.array(
        [bool(f.extended) if isinstance(f, CanFrame) else True for f in frames]
    )
    payloads = np.array(
        [f.data.hex() if isinstance(f, CanFrame) else "" for f in frames]
    )
    np.savez_compressed(
        _as_target(path),
        version=np.array(ARCHIVE_VERSION),
        counts=np.stack([t.counts for t in traces]),
        start_s=np.array([t.start_s for t in traces]),
        sample_rate=np.array(traces[0].sample_rate),
        resolution_bits=np.array(traces[0].resolution_bits),
        bitrate=np.array(traces[0].bitrate),
        senders=senders,
        can_ids=can_ids,
        extended=extended,
        payloads=payloads,
    )


def load_traces(path: PathOrFile) -> list[VoltageTrace]:
    """Load a capture previously written by :func:`save_traces`.

    ``path`` may be a filesystem path or a *seekable* binary file
    object (``np.load`` needs random access, so pipes must be buffered
    into e.g. :class:`io.BytesIO` first).
    """
    try:
        context = np.load(_as_target(path), allow_pickle=False)
    except (EOFError, OSError, ValueError, zipfile.BadZipFile) as exc:
        raise AcquisitionError(f"not a trace archive: {exc}") from exc
    with context as archive:
        try:
            version = int(archive["version"])
            if version != ARCHIVE_VERSION:
                raise AcquisitionError(
                    f"archive version {version} unsupported "
                    f"(expected {ARCHIVE_VERSION})"
                )
            counts = archive["counts"]
            start_s = archive["start_s"]
            sample_rate = float(archive["sample_rate"])
            resolution_bits = int(archive["resolution_bits"])
            bitrate = float(archive["bitrate"])
            senders = [str(s) for s in archive["senders"]]
            can_ids = archive["can_ids"]
            extended = archive["extended"]
            payloads = [str(p) for p in archive["payloads"]]
        except KeyError as exc:
            raise AcquisitionError(
                f"trace archive is missing field {exc}"
            ) from exc

    traces = []
    for row in range(counts.shape[0]):
        metadata = {}
        if senders[row]:
            metadata["sender"] = senders[row]
        if can_ids[row] >= 0:
            metadata["frame"] = CanFrame(
                can_id=int(can_ids[row]),
                data=bytes.fromhex(payloads[row]),
                extended=bool(extended[row]),
            )
        traces.append(
            VoltageTrace(
                counts=counts[row],
                sample_rate=sample_rate,
                resolution_bits=resolution_bits,
                bitrate=bitrate,
                start_s=float(start_s[row]),
                metadata=metadata,
            )
        )
    return traces
