"""Command-line interface: ``python -m repro.cli <command>``.

Wraps the common workflows so the library is usable without writing
Python:

* ``info``        — describe a built-in vehicle;
* ``capture``     — record a simulated session to a trace archive;
* ``train``       — train a vProfile model from an archive (or a fresh
  capture) and save it;
* ``detect``      — replay an archive through a saved model, optionally
  injecting hijack attacks, and print the confusion matrix;
* ``stream``      — run the online streaming runtime (chunked ingestion,
  sharded workers, backpressure, checkpoint/resume) and print alerts;
  ``--serve HOST:PORT`` exposes ``/metrics`` / ``/health`` /
  ``/timeseries`` over HTTP while the run is live, ``--flight-dir``
  dumps forensics bundles on alert;
* ``health``      — scrape the per-SA profile-health verdicts from a
  running ``stream --serve`` endpoint;
* ``fleet``       — the multi-tenant detection gateway: ``fleet serve``
  runs it until SIGTERM (then drains tenants to checkpoints),
  ``fleet bench`` drives the deterministic N-vehicle load generator;
* ``experiment``  — regenerate one of the paper's experiments
  (``suite``, ``temperature``, ``voltage``, ``sweep``);
* ``stats``       — summarize a metrics file emitted by a previous run;
* ``lint``        — run the AST invariant checker (``VPLxxx`` rules)
  over the repo's own source.

``capture --output -`` writes the archive to stdout, and ``train`` /
``detect`` / ``stream`` accept ``--input -`` to read one from stdin, so
stages compose over pipes.

Observability: ``detect`` and ``experiment`` accept ``--metrics-out
PATH`` (enable the metrics registry and write a Prometheus ``.prom`` /
``.json`` snapshot on exit) and ``-v`` / ``-vv`` (stream structured
JSON events to stderr at info / debug level).  Errors from bad inputs
(missing model or archive paths, unknown vehicles) exit with status 2
and a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.acquisition.archive import load_traces, save_traces
from repro.acquisition.trace import VoltageTrace
from repro.attacks.hijack import LabelledEdgeSet, apply_hijack
from repro.core.detection import AnomalyReason, Detector
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.core.model import Metric, VProfileModel
from repro.core.pipeline import PipelineConfig, VProfilePipeline
from repro.core.training import TrainingData, train_model
from repro.errors import DatasetError, DetectionError, ReproError
from repro.eval.confusion import ConfusionMatrix
from repro.eval.environment import temperature_experiment, voltage_experiment
from repro.eval.margin import tune_margin
from repro.eval.reporting import (
    format_suite,
    format_sweep,
    format_temperature,
    format_voltage,
)
from repro.eval.suite import SuiteInputs, run_detection_suite
from repro.eval.sweeps import rate_resolution_sweep
from repro.perf.cache import CaptureCache
from repro.perf.parallel import default_jobs
from repro.perf.shm import SHM_ENV_VAR
from repro.stream import (
    DEFAULT_CHUNK_SAMPLES,
    LiveSource,
    OverflowPolicy,
    ReplaySource,
    StreamConfig,
    StreamTelemetry,
    TelemetryConfig,
    load_checkpoint,
)
from repro.vehicles.dataset import capture_session
from repro.vehicles.profiles import VehicleConfig, sterling_acterra, vehicle_a, vehicle_b

VEHICLES = {
    "a": vehicle_a,
    "b": vehicle_b,
    "sterling": sterling_acterra,
}


def _vehicle(name: str) -> VehicleConfig:
    try:
        factory = VEHICLES[name]
    except KeyError:
        raise DatasetError(
            f"unknown vehicle {name!r}; choose from {', '.join(sorted(VEHICLES))}"
        ) from None
    return factory()


def _add_vehicle_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vehicle",
        choices=sorted(VEHICLES),
        default="a",
        help="built-in synthetic vehicle (default: a)",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for capture/extraction (default: $REPRO_JOBS; "
             "leave both unset for the legacy serial path)",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="hand worker chunks back over pickle pipes instead of the "
             "zero-copy shared-memory arena (equivalent to REPRO_SHM=0; "
             "bytes are identical either way)",
    )


def _effective_jobs(args: argparse.Namespace) -> int | None:
    """``--jobs`` when given, else the ``REPRO_JOBS`` env default."""
    jobs = getattr(args, "jobs", None)
    return jobs if jobs is not None else default_jobs()


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="collect metrics and write them on exit "
             "(.json snapshot, anything else Prometheus text format)",
    )
    parser.add_argument(
        "-v", "--verbose",
        action="count",
        default=0,
        help="stream structured JSON events to stderr (-v info, -vv debug)",
    )


def cmd_info(args: argparse.Namespace) -> int:
    vehicle = _vehicle(args.vehicle)
    print(f"{vehicle.name}: {len(vehicle.ecus)} ECUs, "
          f"{vehicle.bitrate / 1e3:.0f} kb/s bus, captured at "
          f"{vehicle.sample_rate / 1e6:g} MS/s / {vehicle.resolution_bits} bit")
    for ecu in vehicle.ecus:
        trx = ecu.transceiver
        sas = ", ".join(f"0x{sa:02X}" for sa in ecu.source_addresses)
        rates = ", ".join(f"{1 / s.period_s:.0f}/s" for s in ecu.schedules)
        print(f"  {ecu.name}: dominant {trx.v_dominant:.3f} V, "
              f"rise {trx.rise.natural_freq_hz / 1e6:.2f} MHz "
              f"(zeta {trx.rise.damping}), SAs [{sas}], rates [{rates}]")
    return 0


def cmd_capture(args: argparse.Namespace) -> int:
    vehicle = _vehicle(args.vehicle)
    cache = None
    if args.cache:
        cache = CaptureCache(args.cache_dir)
    session = capture_session(
        vehicle, args.duration, seed=args.seed,
        jobs=_effective_jobs(args), cache=cache,
    )
    if args.output == "-":
        # np.savez needs a seekable sink; stdout pipes are not.
        buffer = io.BytesIO()
        save_traces(buffer, session.traces)
        sys.stdout.buffer.write(buffer.getvalue())
        sys.stdout.buffer.flush()
        destination, sink = "<stdout>", sys.stderr
    else:
        save_traces(args.output, session.traces)
        destination, sink = args.output, sys.stdout
    print(f"captured {len(session)} messages from {vehicle.name} "
          f"-> {destination}", file=sink)
    return 0


def _archive_input(path: str):
    """Resolve an ``--input`` value: ``-`` slurps stdin into a buffer."""
    if path == "-":
        return io.BytesIO(sys.stdin.buffer.read())
    if not Path(path).exists():
        raise DatasetError(f"trace archive not found: {path}")
    return path


def _traces_for(args: argparse.Namespace):
    vehicle = _vehicle(args.vehicle)
    input_path = getattr(args, "input", None)
    if input_path:
        return vehicle, load_traces(_archive_input(input_path))
    session = capture_session(
        vehicle, args.duration, seed=args.seed, jobs=_effective_jobs(args)
    )
    return vehicle, session.traces


def _extract_for(args: argparse.Namespace, traces, extraction):
    """Edge-set extraction honouring the effective ``--jobs`` value."""
    jobs = _effective_jobs(args)
    if jobs is not None:
        from repro.perf.engine import extract_many_parallel

        return extract_many_parallel(traces, extraction, jobs=jobs)
    return extract_many(traces, extraction)


def cmd_train(args: argparse.Namespace) -> int:
    vehicle, traces = _traces_for(args)
    extraction = ExtractionConfig.for_trace(traces[0])
    edge_sets = _extract_for(args, traces, extraction)
    model = train_model(
        TrainingData.from_edge_sets(edge_sets),
        metric=Metric(args.metric),
        sa_clusters=vehicle.sa_clusters if not args.cluster_by_distance else None,
    )
    model.save(args.output)
    print(f"trained {args.metric} model on {len(edge_sets)} messages "
          f"({model.n_clusters} clusters) -> {args.output}")
    for cluster in model.clusters:
        print(f"  {cluster.name}: {cluster.count} edge sets, "
              f"threshold {cluster.max_distance:.3f}")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    if not Path(args.model).exists():
        raise DetectionError(f"model file not found: {args.model}")
    vehicle, traces = _traces_for(args)
    model = VProfileModel.load(args.model)
    extraction = ExtractionConfig.for_trace(traces[0])
    with obs.span("cli.detect", vehicle=vehicle.name):
        edge_sets = _extract_for(args, traces, extraction)

        rng = np.random.default_rng(args.seed)
        if args.hijack > 0:
            labelled = apply_hijack(
                edge_sets, vehicle.sa_clusters, probability=args.hijack, rng=rng
            )
        else:
            labelled = [
                LabelledEdgeSet(e, is_attack=False, true_sender=e.metadata.get("sender", "?"))
                for e in edge_sets
            ]
        vectors = np.stack([l.edge_set.vector for l in labelled])
        sas = np.array([l.edge_set.source_address for l in labelled])
        actual = np.array([l.is_attack for l in labelled])
        batch = Detector(model).classify_batch(vectors, sas)
        if args.margin is None:
            objective = "f-score" if args.hijack > 0 else "accuracy"
            margin = tune_margin(batch, actual, objective).margin
            print(f"auto-tuned margin: {margin:.4g} (objective: {objective})")
        else:
            margin = args.margin
        predicted = batch.anomalies(margin)
        _count_batch_outcomes(batch, predicted, margin)
        confusion = ConfusionMatrix.from_predictions(actual, predicted)
    print(confusion.as_table())
    print(f"accuracy={confusion.accuracy:.5f} precision={confusion.precision:.5f} "
          f"recall={confusion.recall:.5f} F={confusion.f_score:.5f}")
    obs.get_event_log().info(
        "cli.detect",
        vehicle=vehicle.name,
        messages=len(labelled),
        anomalies=int(predicted.sum()),
        margin=float(margin),
        accuracy=confusion.accuracy,
        f_score=confusion.f_score,
    )
    return 0


def _count_batch_outcomes(batch, predicted: np.ndarray, margin: float) -> None:
    """Mirror the batch verdicts into the message/anomaly counters.

    The batch path bypasses ``VProfilePipeline.process``, so the
    per-reason breakdown is reconstructed from the batch arrays
    (Algorithm 3's precedence: unknown SA, then cluster mismatch, then
    distance).  A no-op on the null registry.
    """
    registry = obs.get_registry()
    if not registry.enabled:
        return
    registry.counter("vprofile_messages_total").inc(int(predicted.shape[0]))
    unknown = batch.expected_cluster < 0
    mismatch = ~unknown & (batch.expected_cluster != batch.predicted_cluster)
    exceeded = predicted & ~unknown & ~mismatch
    for reason, flags in (
        (AnomalyReason.UNKNOWN_SA, unknown),
        (AnomalyReason.CLUSTER_MISMATCH, mismatch),
        (AnomalyReason.DISTANCE_EXCEEDED, exceeded),
    ):
        count = int(flags.sum())
        if count:
            registry.counter("vprofile_anomalies_total", reason=reason.value).inc(count)


def cmd_stream(args: argparse.Namespace) -> int:
    vehicle = _vehicle(args.vehicle)

    resume = None
    margin = args.margin
    if args.resume:
        resume = load_checkpoint(args.resume)
        if margin is None:
            margin = resume.margin
    if margin is None:
        margin = 5.0  # comfortable slack against synthetic noise

    pipeline = VProfilePipeline(PipelineConfig(
        margin=margin,
        sa_clusters=vehicle.sa_clusters,
        online_update=args.online_update,
    ))

    if args.input:
        source = ReplaySource.from_archive(
            _archive_input(args.input), args.chunk_samples
        )
    else:
        # Live simulation; seed offset keeps the streamed traffic
        # distinct from the training capture below.
        source = LiveSource(
            vehicle, args.duration, args.chunk_samples, seed=args.seed + 1,
            jobs=_effective_jobs(args),
        )

    if resume is None:
        if args.model:
            if not Path(args.model).exists():
                raise DetectionError(f"model file not found: {args.model}")
            probe = VoltageTrace(
                counts=np.zeros(2, dtype=np.int32),
                sample_rate=source.sample_rate,
                resolution_bits=source.resolution_bits,
                bitrate=source.bitrate,
            )
            pipeline.load_model(
                VProfileModel.load(args.model), ExtractionConfig.for_trace(probe)
            )
        else:
            training = capture_session(
                vehicle, args.train_duration, seed=args.seed,
                jobs=_effective_jobs(args),
            )
            pipeline.train(training.traces)
            print(f"trained on a fresh {args.train_duration:g}s capture "
                  f"({len(training)} messages, "
                  f"{pipeline.model.n_clusters} clusters)")

    # Longitudinal telemetry: built up front (not by the runtime) so the
    # component handles exist before the run — the HTTP server scrapes
    # /health and /timeseries while the stream is still live.
    serve_spec = obs.parse_host_port(args.serve) if args.serve else None
    telemetry = None
    if args.telemetry or args.flight_dir or serve_spec is not None:
        model = resume.model if resume is not None else pipeline.model
        telemetry = StreamTelemetry(
            TelemetryConfig(flight_dir=args.flight_dir),
            model=model,
            margin=margin,
            n_shards=args.workers,
        )

    config = StreamConfig(
        n_workers=args.workers,
        queue_capacity=args.queue_capacity,
        policy=OverflowPolicy(args.policy),
        batch_size=args.batch_size,
        checkpoint_dir=args.checkpoint,
        checkpoint_every_chunks=args.checkpoint_every,
        hijack_probability=args.hijack,
        hijack_seed=args.hijack_seed,
        telemetry=telemetry,
    )

    # /metrics is only useful with a live registry; when --metrics-out
    # did not already enable one, serve a run-scoped registry.
    owned_registry = previous_registry = None
    if serve_spec is not None and not obs.get_registry().enabled:
        owned_registry = obs.MetricsRegistry()
        obs.preregister_pipeline_metrics(owned_registry)
        previous_registry = obs.set_registry(owned_registry)

    server = None
    try:
        if serve_spec is not None:
            assert telemetry is not None
            host, port = serve_spec
            server = obs.MetricsServer(
                health=telemetry.health,
                timeseries=telemetry.timeseries,
                host=host,
                port=port,
            ).start()
            print(f"serving on {server.url} (/metrics /health /timeseries)")
        with obs.span("cli.stream", vehicle=vehicle.name, workers=config.n_workers):
            report = pipeline.stream(source, config, resume=resume)
        if server is not None and args.serve_grace > 0:
            print(f"serving for another {args.serve_grace:g}s after the run")
            time.sleep(args.serve_grace)
    finally:
        if server is not None:
            server.stop()
        if owned_registry is not None:
            obs.set_registry(previous_registry)

    shown = report.alerts.alerts[: args.max_alerts]
    for alert in shown:
        print(f"ALERT t={alert.timestamp_s:.6f}s SA 0x{alert.can_id:02X} "
              f"{alert.reason}: {alert.detail}")
    if len(report.alerts) > len(shown):
        print(f"... {len(report.alerts) - len(shown)} more alerts suppressed "
              f"(--max-alerts {args.max_alerts})")

    print(f"streamed {report.chunks} chunks / {report.samples} samples "
          f"({config.n_workers} worker{'s' if config.n_workers != 1 else ''}, "
          f"policy {OverflowPolicy(config.policy).value})")
    reasons = ", ".join(f"{k}={v}" for k, v in sorted(report.reasons.items()))
    print(f"  messages={report.messages} anomalies={report.anomalies}"
          + (f" [{reasons}]" if reasons else ""))
    print(f"  dropped={report.dropped} online-updates={report.updated} "
          f"extraction-failures={report.extraction_failures} "
          f"checkpoints={report.checkpoints}")
    print(f"  {report.frames_per_s:.0f} frames/s over {report.wall_s:.2f}s")
    if telemetry is not None:
        health = telemetry.health.verdicts()
        states = [s["state"] for s in health["sources"].values()]
        print(f"  profile health: {health['overall']} "
              f"({len(states)} sources: "
              f"{sum(s == 'healthy' for s in states)} healthy, "
              f"{sum(s == 'drifting' for s in states)} drifting, "
              f"{sum(s == 'suspect' for s in states)} suspect)")
        for bundle in report.bundles:
            print(f"forensics bundle -> {bundle}")
    if args.checkpoint:
        print(f"checkpoint -> {args.checkpoint}")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    host, port = obs.parse_host_port(args.address)
    url = f"http://{host}:{port}/health"
    from urllib.error import URLError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=args.timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except (URLError, OSError, ValueError) as exc:
        print(f"error: cannot scrape {url}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"overall: {payload.get('overall', 'unknown')}")
    for sa, info in sorted(payload.get("sources", {}).items()):
        drift = info.get("drift_distance")
        drift_text = "n/a" if drift is None else f"{drift:.4f}"
        print(f"  {sa} [{info.get('cluster') or 'unmapped'}] {info['state']}: "
              f"drift={drift_text} "
              f"alert-ratio={info['alert_ratio']:.2f} "
              f"update-accept={info['update_accept_ratio']:.2f} "
              f"(n={info['verdicts_seen']})")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    vehicle = _vehicle(args.vehicle)
    jobs = _effective_jobs(args)
    cache = CaptureCache(args.cache_dir) if args.cache else None
    if args.name == "suite":
        inputs = SuiteInputs.capture(
            vehicle, duration_s=args.duration, seed=args.seed,
            jobs=jobs, cache=cache,
        )
        result = run_detection_suite(inputs, Metric(args.metric), seed=args.seed)
        print(format_suite(result))
    elif args.name == "temperature":
        result = temperature_experiment(
            vehicle, trials=2, duration_per_capture_s=args.duration / 6,
            seed=args.seed, jobs=jobs, cache=cache,
        )
        print(format_temperature(result))
    elif args.name == "voltage":
        result = voltage_experiment(
            vehicle, trials=3, duration_per_capture_s=args.duration / 10,
            seed=args.seed, jobs=jobs, cache=cache,
        )
        print(format_voltage(result))
    elif args.name == "sweep":
        session = capture_session(
            vehicle, args.duration, seed=args.seed, jobs=jobs, cache=cache
        )
        divisors = (1, 2, 4) if vehicle.sample_rate <= 10e6 else (1, 2, 4, 8)
        cells = rate_resolution_sweep(session, rate_divisors=divisors, seed=args.seed)
        print(format_sweep(cells, f"{vehicle.name} rate sweep"))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = CaptureCache(args.dir)
    if args.action == "info":
        info = cache.info()
        print(f"cache root: {info['root']}")
        print(f"entries: {info['entries']} "
              f"({info['total_bytes'] / 1e6:.2f} MB, max {info['max_entries']})")
        print(f"schema version: {info['schema_version']}")
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv = list(args.paths)
    argv += ["--root", args.root]
    if args.select:
        argv += ["--select", args.select]
    if args.lint_ignore:
        argv += ["--ignore", args.lint_ignore]
    if args.lint_format != "text":
        argv += ["--format", args.lint_format]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.stats:
        argv.append("--stats")
    if args.baseline:
        argv.append("--baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.list_rules:
        argv.append("--list-rules")
    if args.update_schema_lock:
        argv.append("--update-schema-lock")
    if args.quiet:
        argv.append("--quiet")
    return lint_main(argv)


def cmd_stats(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not path.exists():
        raise DatasetError(f"metrics file not found: {args.path}")
    snapshot = obs.load_snapshot(path)
    print(obs.summarize_snapshot(snapshot, source=str(path)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vProfile CAN sender identification (DATE 2021 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="describe a built-in vehicle")
    _add_vehicle_arg(info)
    info.set_defaults(handler=cmd_info)

    capture = commands.add_parser("capture", help="record a session to an archive")
    _add_vehicle_arg(capture)
    capture.add_argument("--duration", type=float, default=5.0, help="seconds of traffic")
    capture.add_argument("--seed", type=int, default=0)
    capture.add_argument("--output", required=True,
                         help="archive path (.npz), or '-' for stdout")
    _add_jobs_arg(capture)
    capture.add_argument("--cache", action="store_true",
                         help="reuse/store this capture in the content-addressed cache")
    capture.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="cache root (default: $REPRO_CACHE_DIR or "
                              "~/.cache/repro/captures)")
    capture.set_defaults(handler=cmd_capture)

    train = commands.add_parser("train", help="train and save a model")
    _add_vehicle_arg(train)
    train.add_argument("--input",
                       help="trace archive to train on ('-' for stdin)")
    train.add_argument("--duration", type=float, default=5.0,
                       help="capture length when no --input is given")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--metric", choices=["euclidean", "mahalanobis"],
                       default="mahalanobis")
    train.add_argument("--cluster-by-distance", action="store_true",
                       help="discover clusters instead of using the SA LUT")
    train.add_argument("--output", required=True, help="model path (.npz)")
    _add_jobs_arg(train)
    train.set_defaults(handler=cmd_train)

    detect = commands.add_parser("detect", help="replay traffic through a model")
    _add_vehicle_arg(detect)
    _add_obs_args(detect)
    detect.add_argument("--model", required=True)
    detect.add_argument("--input",
                        help="trace archive to replay ('-' for stdin)")
    detect.add_argument("--duration", type=float, default=2.0)
    detect.add_argument("--seed", type=int, default=1)
    detect.add_argument("--hijack", type=float, default=0.0,
                        help="SA-rewrite probability (0 disables attacks)")
    detect.add_argument("--margin", type=float, default=None,
                        help="detection margin (default: auto-tuned)")
    _add_jobs_arg(detect)
    detect.set_defaults(handler=cmd_detect)

    stream = commands.add_parser(
        "stream", help="online streaming detection over chunked samples"
    )
    _add_vehicle_arg(stream)
    _add_obs_args(stream)
    stream.add_argument("--model",
                        help="saved model (.npz); default: train on a fresh capture")
    stream.add_argument("--input",
                        help="trace archive to replay ('-' for stdin); "
                             "default: live bus simulation")
    stream.add_argument("--duration", type=float, default=2.0,
                        help="live-simulation length in seconds")
    stream.add_argument("--train-duration", type=float, default=5.0,
                        help="training-capture length when no model is given")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--chunk-samples", type=int,
                        default=DEFAULT_CHUNK_SAMPLES, metavar="N",
                        help="digitizer chunk size in samples")
    stream.add_argument("--workers", type=int, default=2,
                        help="classification workers (= SA shards)")
    stream.add_argument("--queue-capacity", type=int, default=256,
                        help="per-shard queue bound")
    stream.add_argument("--policy",
                        choices=[p.value for p in OverflowPolicy],
                        default=OverflowPolicy.BLOCK.value,
                        help="queue overflow policy (backpressure vs loss)")
    stream.add_argument("--batch-size", type=int, default=8,
                        help="feature vectors per vectorised detector call")
    stream.add_argument("--margin", type=float, default=None,
                        help="detection margin (default: checkpoint's, else 5)")
    stream.add_argument("--online-update", action="store_true",
                        help="fold OK verdicts back into the model (Algorithm 4)")
    stream.add_argument("--hijack", type=float, default=0.0,
                        help="in-flight SA-rewrite probability (0 disables)")
    stream.add_argument("--hijack-seed", type=int, default=0)
    stream.add_argument("--checkpoint", metavar="DIR",
                        help="write checkpoints to this directory")
    stream.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="CHUNKS",
                        help="checkpoint cadence (0: final checkpoint only)")
    stream.add_argument("--resume", metavar="DIR",
                        help="resume from a checkpoint directory")
    stream.add_argument("--max-alerts", type=int, default=10,
                        help="alert lines to print before summarising")
    stream.add_argument("--telemetry", action="store_true",
                        help="enable longitudinal telemetry (time-series "
                             "store + per-SA profile health)")
    stream.add_argument("--flight-dir", metavar="DIR",
                        help="enable the alert flight recorder; forensics "
                             "bundles are written here (implies --telemetry)")
    stream.add_argument("--serve", metavar="HOST:PORT",
                        help="serve /metrics, /health and /timeseries over "
                             "HTTP during the run (port 0 picks a free port; "
                             "implies --telemetry)")
    stream.add_argument("--serve-grace", type=float, default=0.0,
                        metavar="SECONDS",
                        help="keep serving this long after the run finishes "
                             "(for scrapers that poll)")
    _add_jobs_arg(stream)
    stream.set_defaults(handler=cmd_stream)

    health = commands.add_parser(
        "health", help="scrape per-SA profile health from a --serve endpoint"
    )
    health.add_argument("address", metavar="HOST:PORT",
                        help="address of a running `repro stream --serve`")
    health.add_argument("--json", action="store_true",
                        help="print the raw /health JSON payload")
    health.add_argument("--timeout", type=float, default=5.0,
                        help="HTTP timeout in seconds")
    health.set_defaults(handler=cmd_health)

    experiment = commands.add_parser(
        "experiment", help="regenerate one of the paper's experiments"
    )
    _add_vehicle_arg(experiment)
    _add_obs_args(experiment)
    experiment.add_argument(
        "name", choices=["suite", "temperature", "voltage", "sweep"]
    )
    experiment.add_argument("--duration", type=float, default=15.0)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--metric", choices=["euclidean", "mahalanobis"],
                            default="mahalanobis")
    _add_jobs_arg(experiment)
    experiment.add_argument("--cache", action="store_true",
                            help="reuse/store captures in the content-addressed cache")
    experiment.add_argument("--cache-dir", metavar="DIR", default=None,
                            help="cache root (default: $REPRO_CACHE_DIR or "
                                 "~/.cache/repro/captures)")
    experiment.set_defaults(handler=cmd_experiment)

    cache = commands.add_parser(
        "cache", help="inspect or clear the content-addressed capture cache"
    )
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument("--dir", metavar="DIR", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro/captures)")
    cache.set_defaults(handler=cmd_cache)

    stats = commands.add_parser(
        "stats", help="summarize a metrics file from --metrics-out"
    )
    stats.add_argument("path", help="metrics file (.json or Prometheus text)")
    stats.set_defaults(handler=cmd_stats)

    from repro.fleet.cli import add_fleet_parser

    add_fleet_parser(commands)

    lint = commands.add_parser(
        "lint",
        help="check determinism / seed / concurrency / observability "
             "invariants (VPLxxx rules)",
    )
    lint.add_argument("paths", nargs="*", default=["src", "tests"],
                      help="files or directories (default: src tests)")
    lint.add_argument("--root", default=".",
                      help="repo root for config lookup (default: cwd)")
    lint.add_argument("--select", metavar="CODES",
                      help="comma-separated codes/prefixes to run")
    lint.add_argument("--ignore", dest="lint_ignore", metavar="CODES",
                      help="comma-separated codes/prefixes to skip")
    lint.add_argument("--format", dest="lint_format",
                      choices=("text", "sarif"), default="text",
                      help="report format (sarif: SARIF 2.1.0 on stdout)")
    lint.add_argument("--jobs", type=int, metavar="N", default=None,
                      help="analyze modules on N threads "
                           "(default: $REPRO_LINT_JOBS or 1)")
    lint.add_argument("--no-cache", action="store_true",
                      help="skip the incremental analysis cache")
    lint.add_argument("--stats", action="store_true",
                      help="print analyzed/restored/parse counters")
    lint.add_argument("--baseline", action="store_true",
                      help="waive findings recorded in the baseline file")
    lint.add_argument("--update-baseline", action="store_true",
                      help="re-record the baseline from current findings")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule and exit")
    lint.add_argument("--update-schema-lock", action="store_true",
                      help="re-record the capture-cache schema fingerprint")
    lint.add_argument("-q", "--quiet", action="store_true",
                      help="no summary line on a clean run")
    lint.set_defaults(handler=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 2 usable-input error (missing files, unknown
    vehicle, malformed metrics file, ...); argparse keeps its own
    conventions for unknown commands/flags.
    """
    parser = build_parser()
    args = parser.parse_args(argv)

    if getattr(args, "no_shm", False):
        # One funnel covers every engine entry (captures, live sources,
        # experiment sweeps): resolve_shm() consults REPRO_SHM whenever
        # a call site passes shm=None.
        os.environ[SHM_ENV_VAR] = "0"

    registry = None
    previous_registry = previous_log = None
    if getattr(args, "metrics_out", None):
        # Fail fast: discovering an unwritable path after a long run
        # would throw the metrics away.
        parent = Path(args.metrics_out).resolve().parent
        if not parent.is_dir():
            print(
                f"error: metrics output directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
        registry = obs.MetricsRegistry()
        obs.preregister_pipeline_metrics(registry)
        previous_registry = obs.set_registry(registry)
    if getattr(args, "verbose", 0):
        level = "debug" if args.verbose > 1 else "info"
        previous_log = obs.set_event_log(obs.EventLog(level=level, sink=sys.stderr))

    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if registry is not None:
            try:
                obs.write_metrics(registry, args.metrics_out)
                print(f"metrics -> {args.metrics_out}", file=sys.stderr)
            except OSError as exc:
                print(f"error: cannot write metrics: {exc}", file=sys.stderr)
            obs.set_registry(previous_registry)
        if previous_log is not None:
            obs.set_event_log(previous_log)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` & co. closes stdout early; that's not an error.
        sys.stderr.close()
        sys.exit(0)
