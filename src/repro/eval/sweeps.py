"""Sampling-rate / resolution sweep (paper Section 4.3, Tables 4.6-4.7).

The paper downsamples and bit-reduces the raw captures in software and
re-runs all three detection experiments per (rate, resolution) cell,
re-tuning the margin each time.  Below 12-bit resolution the cluster
covariance matrices go singular and the Mahalanobis metric is undefined
— we report those cells as singular rather than papering over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.edge_extraction import ExtractionConfig
from repro.core.model import Metric
from repro.errors import SingularCovarianceError
from repro.eval.suite import DetectionSuiteResult, SuiteInputs, run_detection_suite
from repro.vehicles.dataset import CaptureSession


@dataclass(frozen=True)
class SweepCell:
    """Outcome of the three tests at one (rate, resolution) point.

    ``singular`` is True when training failed with a singular covariance
    matrix (the paper's <= 10-bit failure mode); the score fields are
    then ``None``.
    """

    sample_rate: float
    resolution_bits: int
    fp_accuracy: float | None
    hijack_f: float | None
    foreign_f: float | None
    fp_margin: float | None
    singular: bool = False

    @property
    def label(self) -> str:
        return f"{self.sample_rate / 1e6:g} MS/s @ {self.resolution_bits} bit"


def rate_resolution_sweep(
    session: CaptureSession,
    *,
    rate_divisors: Sequence[int] = (1, 2, 4, 8),
    resolutions: Sequence[int] | None = None,
    metric: Metric | str = Metric.MAHALANOBIS,
    seed: int = 0,
    hijack_probability: float = 0.2,
    train_fraction: float = 0.5,
) -> list[SweepCell]:
    """Software-downsample ``session`` over a rate x resolution grid.

    Parameters
    ----------
    session:
        A raw capture at the vehicle's native rate and resolution.
    rate_divisors:
        Decimation factors; 1 keeps the native rate.
    resolutions:
        Target bit depths (must not exceed the native resolution).
        Defaults to just the native resolution.
    metric, seed, hijack_probability, train_fraction:
        Passed through to the detection suite.

    Returns
    -------
    One :class:`SweepCell` per grid point, rates varying fastest.
    """
    native_bits = session.traces[0].resolution_bits
    if resolutions is None:
        resolutions = (native_bits,)
    cells: list[SweepCell] = []
    for bits in resolutions:
        for divisor in rate_divisors:
            transformed = [
                _transform(trace, divisor, native_bits, bits)
                for trace in session.traces
            ]
            reduced = CaptureSession(
                vehicle=session.vehicle,
                traces=transformed,
                environment=session.environment,
            )
            rate = session.traces[0].sample_rate / divisor
            try:
                inputs = SuiteInputs.from_session(
                    reduced, train_fraction=train_fraction, seed=seed
                )
                result = run_detection_suite(
                    inputs,
                    metric,
                    hijack_probability=hijack_probability,
                    seed=seed,
                )
            except SingularCovarianceError:
                cells.append(
                    SweepCell(
                        sample_rate=rate,
                        resolution_bits=bits,
                        fp_accuracy=None,
                        hijack_f=None,
                        foreign_f=None,
                        fp_margin=None,
                        singular=True,
                    )
                )
                continue
            cells.append(_cell_from_result(rate, bits, result))
    return cells


def _transform(trace, divisor: int, native_bits: int, bits: int):
    out = trace
    if divisor > 1:
        out = out.downsampled(divisor)
    if bits < native_bits:
        out = out.at_resolution(bits)
    return out


def _cell_from_result(
    rate: float, bits: int, result: DetectionSuiteResult
) -> SweepCell:
    return SweepCell(
        sample_rate=rate,
        resolution_bits=bits,
        fp_accuracy=result.false_positive.accuracy,
        hijack_f=result.hijack.f_score,
        foreign_f=result.foreign.f_score,
        fp_margin=result.false_positive.margin,
        singular=False,
    )
