"""The paper's three detection experiments (Section 4.1).

* **False positive test** — train on all ECUs, replay the capture
  unmodified; every alarm is a false positive.  Margin tuned for
  accuracy.
* **Hijack imitation test** — replay with each message's SA rewritten to
  another cluster's SA with 20 % probability.  Margin tuned for F-score.
* **Foreign device imitation test** — the two most similar ECUs play
  imposter and victim: the imposter is removed from training and its
  replayed messages claim the victim's SA.  Margin tuned for F-score.

Running all three for a (vehicle, metric) pair regenerates one of the
paper's confusion-matrix tables (4.1-4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.attacks.foreign import (
    ForeignScenario,
    apply_foreign_imitation,
    most_similar_pair,
)
from repro.attacks.hijack import LabelledEdgeSet, apply_hijack
from repro.core.detection import Detector
from repro.core.edge_extraction import (
    ExtractedEdgeSet,
    ExtractionConfig,
    extract_many,
)
from repro.core.model import Metric, VProfileModel
from repro.core.training import TrainingData, train_model
from repro.errors import DatasetError
from repro.eval.confusion import ConfusionMatrix
from repro.eval.margin import margin_removing_false_positives, tune_margin
from repro.obs.events import get_event_log
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.vehicles.dataset import CaptureSession, capture_session
from repro.vehicles.profiles import VehicleConfig


@dataclass(frozen=True)
class TestOutcome:
    """One experiment's confusion matrix with its tuned margin.

    Attributes
    ----------
    name:
        ``"false-positive"``, ``"hijack"`` or ``"foreign"``.
    confusion:
        Counts at the tuned margin.
    margin:
        The margin selected by the paper's tuning rule.
    zero_fp_score:
        The headline score re-evaluated at the smallest margin that
        removes every false positive (``None`` when impossible) — the
        paper's "if we increase the margin..." variants.
    """

    #: Not a pytest class, despite the name.
    __test__ = False

    name: str
    confusion: ConfusionMatrix
    margin: float
    zero_fp_score: float | None = None

    @property
    def accuracy(self) -> float:
        return self.confusion.accuracy

    @property
    def f_score(self) -> float:
        return self.confusion.f_score


@dataclass(frozen=True)
class DetectionSuiteResult:
    """All three experiments for one (vehicle, metric) pair."""

    vehicle_name: str
    metric: Metric
    false_positive: TestOutcome
    hijack: TestOutcome
    foreign: TestOutcome
    foreign_scenario: ForeignScenario
    similarity_ranking: tuple[tuple[float, str, str], ...] = field(default=())

    def outcomes(self) -> tuple[TestOutcome, TestOutcome, TestOutcome]:
        return (self.false_positive, self.hijack, self.foreign)


@dataclass
class SuiteInputs:
    """Prepared train/test edge sets for a vehicle, reusable across metrics."""

    vehicle: VehicleConfig
    extraction: ExtractionConfig
    train: list[ExtractedEdgeSet]
    test: list[ExtractedEdgeSet]

    @classmethod
    def from_session(
        cls,
        session: CaptureSession,
        *,
        train_fraction: float = 0.5,
        seed: int = 0,
        extraction: ExtractionConfig | None = None,
        jobs: int | None = None,
    ) -> "SuiteInputs":
        """Split one capture into train/test and extract edge sets.

        ``jobs`` fans extraction out over worker processes via
        :func:`repro.perf.engine.extract_many_parallel`; extraction is
        deterministic, so the edge sets are identical either way.
        """
        train_traces, test_traces = session.split(train_fraction, seed=seed)
        if extraction is None:
            extraction = ExtractionConfig.for_trace(session.traces[0])
        if jobs is not None:
            from repro.perf.engine import extract_many_parallel

            return cls(
                vehicle=session.vehicle,
                extraction=extraction,
                train=extract_many_parallel(train_traces, extraction, jobs=jobs),
                test=extract_many_parallel(test_traces, extraction, jobs=jobs),
            )
        return cls(
            vehicle=session.vehicle,
            extraction=extraction,
            train=extract_many(train_traces, extraction),
            test=extract_many(test_traces, extraction),
        )

    @classmethod
    def capture(
        cls,
        vehicle: VehicleConfig,
        *,
        duration_s: float = 30.0,
        seed: int = 0,
        train_fraction: float = 0.5,
        jobs: int | None = None,
        cache=None,
    ) -> "SuiteInputs":
        """Record a fresh session and split it.

        ``jobs``/``cache`` opt the capture into the :mod:`repro.perf`
        engine (see :func:`repro.vehicles.dataset.capture_session`).
        """
        session = capture_session(vehicle, duration_s, seed=seed, jobs=jobs, cache=cache)
        return cls.from_session(
            session, train_fraction=train_fraction, seed=seed, jobs=jobs
        )


def _evaluate(
    detector_model: VProfileModel,
    labelled: Sequence[LabelledEdgeSet],
    objective: str,
) -> TestOutcome:
    """Run detection over labelled messages and tune the margin."""
    vectors = np.stack([l.edge_set.vector for l in labelled])
    sas = np.array([l.edge_set.source_address for l in labelled])
    actual = np.array([l.is_attack for l in labelled])
    batch = Detector(detector_model).classify_batch(vectors, sas)
    choice = tune_margin(batch, actual, objective=objective)
    confusion = ConfusionMatrix.from_predictions(actual, batch.anomalies(choice.margin))
    zero_fp_margin = margin_removing_false_positives(batch, actual)
    zero_fp_score: float | None = None
    if zero_fp_margin is not None:
        zero_confusion = ConfusionMatrix.from_predictions(
            actual, batch.anomalies(zero_fp_margin)
        )
        zero_fp_score = (
            zero_confusion.accuracy if objective == "accuracy" else zero_confusion.f_score
        )
    return TestOutcome(
        name=objective,
        confusion=confusion,
        margin=choice.margin,
        zero_fp_score=zero_fp_score,
    )


def run_detection_suite(
    inputs: SuiteInputs,
    metric: Metric | str,
    *,
    hijack_probability: float = 0.2,
    seed: int = 0,
    shrinkage: float = 0.0,
) -> DetectionSuiteResult:
    """Regenerate one confusion-matrix table (paper Tables 4.1-4.4).

    Observability: the whole suite runs under an ``eval.suite`` span,
    each experiment under its own child span; per-experiment outcomes
    are counted in ``vprofile_eval_experiments_total{experiment=...}``
    and reported as ``eval.experiment`` events.
    """
    metric = Metric(metric)
    vehicle = inputs.vehicle
    rng = np.random.default_rng(seed)

    with span("eval.suite", vehicle=vehicle.name, metric=metric.value):
        with span("eval.train"):
            model = train_model(
                TrainingData.from_edge_sets(inputs.train),
                metric=metric,
                sa_clusters=vehicle.sa_clusters,
                shrinkage=shrinkage,
            )

        # False positive test: clean replay, everything legitimate.
        clean = [
            LabelledEdgeSet(e, is_attack=False, true_sender=e.metadata.get("sender", "?"))
            for e in inputs.test
        ]
        with span("eval.false_positive"):
            fp_outcome = _evaluate(model, clean, objective="accuracy")
        fp_outcome = TestOutcome(
            name="false-positive",
            confusion=fp_outcome.confusion,
            margin=fp_outcome.margin,
            zero_fp_score=fp_outcome.zero_fp_score,
        )
        _report_outcome(fp_outcome, vehicle.name)

        # Hijack imitation test: SAs rewritten with 20 % probability.
        hijacked = apply_hijack(
            inputs.test, vehicle.sa_clusters, probability=hijack_probability, rng=rng
        )
        with span("eval.hijack"):
            hijack_outcome = _evaluate(model, hijacked, objective="f-score")
        hijack_outcome = TestOutcome(
            name="hijack",
            confusion=hijack_outcome.confusion,
            margin=hijack_outcome.margin,
            zero_fp_score=hijack_outcome.zero_fp_score,
        )
        _report_outcome(hijack_outcome, vehicle.name)

        # Foreign device imitation test: most similar pair, imposter untrained.
        scenario = most_similar_pair(model)
        ranking = _similarity_ranking(model)
        with span("eval.foreign"):
            foreign_outcome = _run_foreign(inputs, metric, scenario, shrinkage)
        _report_outcome(foreign_outcome, vehicle.name)

        return DetectionSuiteResult(
            vehicle_name=vehicle.name,
            metric=metric,
            false_positive=fp_outcome,
            hijack=hijack_outcome,
            foreign=foreign_outcome,
            foreign_scenario=scenario,
            similarity_ranking=ranking,
        )


def _report_outcome(outcome: TestOutcome, vehicle_name: str) -> None:
    """Count and log one experiment outcome."""
    get_registry().counter(
        "vprofile_eval_experiments_total",
        help="Detection-suite experiments executed",
        experiment=outcome.name,
    ).inc()
    get_event_log().info(
        "eval.experiment",
        experiment=outcome.name,
        vehicle=vehicle_name,
        accuracy=outcome.accuracy,
        f_score=outcome.f_score,
        margin=outcome.margin,
    )


def _run_foreign(
    inputs: SuiteInputs,
    metric: Metric,
    scenario: ForeignScenario,
    shrinkage: float,
) -> TestOutcome:
    """Foreign test: retrain without the imposter, replay it as the victim."""
    vehicle = inputs.vehicle
    train_without = [
        e for e in inputs.train if e.metadata.get("sender") != scenario.imposter
    ]
    if not train_without:
        raise DatasetError("foreign test removed the entire training set")
    sa_clusters = {
        sa: name
        for sa, name in vehicle.sa_clusters.items()
        if name != scenario.imposter
    }
    model = train_model(
        TrainingData.from_edge_sets(train_without),
        metric=metric,
        sa_clusters=sa_clusters,
        shrinkage=shrinkage,
    )
    victim_sas = sorted(
        sa for sa, name in vehicle.sa_clusters.items() if name == scenario.victim
    )
    labelled = apply_foreign_imitation(inputs.test, scenario, victim_sas[0])
    outcome = _evaluate(model, labelled, objective="f-score")
    return TestOutcome(
        name="foreign",
        confusion=outcome.confusion,
        margin=outcome.margin,
        zero_fp_score=outcome.zero_fp_score,
    )


def _similarity_ranking(model: VProfileModel) -> tuple[tuple[float, str, str], ...]:
    """All cluster pairs sorted by profile similarity (closest first)."""
    from repro.core.distances import euclidean_distance, mahalanobis_distance

    pairs = []
    for i, a in enumerate(model.clusters):
        for b in model.clusters[i + 1 :]:
            if model.metric is Metric.MAHALANOBIS:
                distance = 0.5 * (
                    mahalanobis_distance(a.mean, b.mean, b.inv_covariance)
                    + mahalanobis_distance(b.mean, a.mean, a.inv_covariance)
                )
            else:
                distance = euclidean_distance(a.mean, b.mean)
            pairs.append((float(distance), a.name, b.name))
    pairs.sort()
    return tuple(pairs)
