"""Detection-margin tuning, as performed in the paper's experiments.

Section 4.2: "We selected the margin to maximize the accuracy for the
false positive test and the F-score for the other two tests."  Given a
:class:`~repro.core.detection.BatchDetection` (which separates the
margin-independent anomaly causes from the distance slack), the optimal
margin for either objective can be found with a single sorted sweep over
the candidate slack values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detection import BatchDetection
from repro.errors import ReproError


@dataclass(frozen=True)
class MarginChoice:
    """Result of a margin sweep.

    Attributes
    ----------
    margin:
        The selected margin (never negative — the paper does not
        consider negative margins, Section 4.3.1).
    score:
        The objective value achieved at that margin.
    objective:
        ``"accuracy"`` or ``"f-score"``.
    """

    margin: float
    score: float
    objective: str


def _candidate_margins(batch: BatchDetection) -> np.ndarray:
    """Margins worth testing: just below/above each observed slack.

    The decision for a message flips when the margin crosses its slack,
    so scanning slack values (plus 0 and a value beyond the maximum)
    covers every distinct confusion matrix.
    """
    slack = batch.slack
    finite = slack[np.isfinite(slack)]
    eps = 1e-9
    beyond = max(float(finite.max()) + 1.0, 1.0) if finite.size else 1.0
    candidates = np.concatenate(
        [[0.0], np.maximum(finite + eps, 0.0), [beyond]]
    )
    return np.unique(candidates)


def _scores_at(
    batch: BatchDetection, actual_attack: np.ndarray, margins: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Accuracy and F-score for every candidate margin (vectorised).

    For margin m, a message is flagged iff it is a hard anomaly (unknown
    SA / cluster mismatch) or its slack exceeds m.  Counting flagged
    messages above each margin is a sorted-search problem.
    """
    actual = np.asarray(actual_attack, dtype=bool)
    hard = batch.hard_anomalies
    soft = ~hard  # decided by the slack comparison
    n_attack = int(actual.sum())
    n_normal = actual.size - n_attack

    # Hard-flagged counts are margin independent.
    tp_hard = int(np.sum(hard & actual))
    fp_hard = int(np.sum(hard & ~actual))

    # Soft messages flip with the margin: count slacks above each margin.
    slack_attack = np.sort(batch.slack[soft & actual])
    slack_normal = np.sort(batch.slack[soft & ~actual])
    tp_soft = slack_attack.size - np.searchsorted(slack_attack, margins, side="right")
    fp_soft = slack_normal.size - np.searchsorted(slack_normal, margins, side="right")

    tp = tp_hard + tp_soft
    fp = fp_hard + fp_soft
    fn = n_attack - tp
    tn = n_normal - fp

    total = actual.size
    accuracy = (tp + tn) / total if total else np.zeros_like(margins)
    flagged = tp + fp
    precision = np.where(flagged > 0, tp / np.maximum(flagged, 1), 1.0)
    recall = np.where(n_attack > 0, tp / max(n_attack, 1), 1.0)
    denom = precision + recall
    f_score = np.where(denom > 0, 2 * precision * recall / np.where(denom > 0, denom, 1), 0.0)
    return accuracy, f_score


def tune_margin(
    batch: BatchDetection,
    actual_attack: np.ndarray,
    objective: str = "accuracy",
) -> MarginChoice:
    """Pick the margin maximising ``objective`` over the batch.

    Parameters
    ----------
    batch:
        Vectorised detection ingredients for the evaluation messages.
    actual_attack:
        Ground-truth attack flags.
    objective:
        ``"accuracy"`` (the paper's false-positive-test criterion) or
        ``"f-score"`` (hijack / foreign tests).

    Ties are broken toward the *smallest* margin, since larger margins
    only admit more attack slack for the same score.
    """
    if objective not in ("accuracy", "f-score"):
        raise ReproError(f"unknown objective {objective!r}")
    actual = np.asarray(actual_attack, dtype=bool)
    if actual.shape[0] != batch.slack.shape[0]:
        raise ReproError("ground truth and batch disagree in length")
    margins = _candidate_margins(batch)
    accuracy, f_score = _scores_at(batch, actual, margins)
    scores = accuracy if objective == "accuracy" else f_score
    best = int(np.argmax(scores))
    return MarginChoice(
        margin=float(margins[best]), score=float(scores[best]), objective=objective
    )


def margin_removing_false_positives(
    batch: BatchDetection, actual_attack: np.ndarray
) -> float | None:
    """Smallest margin with zero false positives, if one exists.

    The paper repeatedly reports what happens "if we increase the margin
    to remove all false positives"; this computes that margin.  Returns
    ``None`` when hard anomalies (mismatch / unknown SA) on legitimate
    messages make zero false positives unreachable — as the paper found
    on Vehicle B with Euclidean distance.
    """
    actual = np.asarray(actual_attack, dtype=bool)
    normal = ~actual
    if np.any(batch.hard_anomalies & normal):
        return None
    normal_slack = batch.slack[normal & ~batch.hard_anomalies]
    if normal_slack.size == 0:
        return 0.0
    return float(max(normal_slack.max() + 1e-9, 0.0))
