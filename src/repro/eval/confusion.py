"""Confusion matrices and the scores the paper reports.

Convention throughout (matching the paper's tables): the *positive*
class is "anomaly".  A false positive is a legitimate message flagged as
an attack; a false negative is an undetected attack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary anomaly/normal confusion counts.

    Attributes
    ----------
    true_positive:
        Attacks flagged as anomalies.
    false_negative:
        Attacks classified as normal (missed).
    false_positive:
        Legitimate messages flagged as anomalies.
    true_negative:
        Legitimate messages classified as normal.
    """

    true_positive: int
    false_negative: int
    false_positive: int
    true_negative: int

    def __post_init__(self) -> None:
        for name in ("true_positive", "false_negative", "false_positive", "true_negative"):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be non-negative")

    @classmethod
    def from_predictions(
        cls, actual_attack: np.ndarray, predicted_anomaly: np.ndarray
    ) -> "ConfusionMatrix":
        """Build from boolean ground-truth / prediction vectors."""
        actual = np.asarray(actual_attack, dtype=bool)
        predicted = np.asarray(predicted_anomaly, dtype=bool)
        if actual.shape != predicted.shape:
            raise ReproError("actual and predicted vectors disagree in shape")
        return cls(
            true_positive=int(np.sum(actual & predicted)),
            false_negative=int(np.sum(actual & ~predicted)),
            false_positive=int(np.sum(~actual & predicted)),
            true_negative=int(np.sum(~actual & ~predicted)),
        )

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_negative
            + self.false_positive
            + self.true_negative
        )

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total — the paper's false-positive-test score."""
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was flagged (no false alarms)."""
        flagged = self.true_positive + self.false_positive
        if flagged == 0:
            return 1.0 if self.false_negative == 0 else 0.0
        return self.true_positive / flagged

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there were no attacks to find."""
        attacks = self.true_positive + self.false_negative
        if attacks == 0:
            return 1.0
        return self.true_positive / attacks

    @property
    def f_score(self) -> float:
        """Harmonic mean of precision and recall (the paper's F-score)."""
        p, r = self.precision, self.recall
        # Exact zero is the point: both rates are ratios of integer
        # counts, and 0.0 + 0.0 is the only case that divides by zero.
        if p + r == 0.0:  # vpl: ignore[VPL104]
            return 0.0
        return 2.0 * p * r / (p + r)

    @property
    def false_positive_rate(self) -> float:
        negatives = self.false_positive + self.true_negative
        if negatives == 0:
            return 0.0
        return self.false_positive / negatives

    def as_table(self) -> str:
        """Render in the paper's layout (rows actual, columns predicted)."""
        width = max(len(str(v)) for v in (
            self.true_positive, self.false_negative, self.false_positive, self.true_negative
        ))
        width = max(width, len("Anomaly"))
        header = f"{'':>8} | {'Anomaly':>{width}} | {'Normal':>{width}}"
        rule = "-" * len(header)
        row_a = f"{'Anomaly':>8} | {self.true_positive:>{width}} | {self.false_negative:>{width}}"
        row_n = f"{'Normal':>8} | {self.false_positive:>{width}} | {self.true_negative:>{width}}"
        return "\n".join(
            [f"{'':>8}   {'Predicted':^{2 * width + 3}}", header, rule, row_a, row_n]
        )

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            true_positive=self.true_positive + other.true_positive,
            false_negative=self.false_negative + other.false_negative,
            false_positive=self.false_positive + other.false_positive,
            true_negative=self.true_negative + other.true_negative,
        )
