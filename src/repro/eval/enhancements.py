"""Chapter 5 enhancement studies (Tables 5.1 and 5.2).

Both enhancements aim to shrink intra-cluster variance:

* **Per-cluster extraction thresholds** (Section 5.1): instead of one
  fixed edge threshold, each ECU gets its own — the mean of the max and
  min of the first half of its messages (the second half is skipped
  because the ACK voltage, driven by another node, deviates).
* **Multi-edge-set averaging** (Section 5.2): extract several edge sets
  250 samples apart and use their mean, trading latency for stability.

The paper quantifies both with each cluster's per-sample standard
deviation and its maximum (Mahalanobis) distance from the mean; so do
we.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.core.distances import invert_covariance, mahalanobis_distances
from repro.core.edge_extraction import (
    ExtractionConfig,
    cluster_threshold,
    extract_many,
)
from repro.errors import DatasetError

@dataclass(frozen=True)
class ClusterStats:
    """The two statistics the paper's Tables 5.1/5.2 report per ECU.

    ``std`` is the mean per-sample standard deviation across the edge-set
    dimensions (ADC counts); ``max_distance`` is the largest Mahalanobis
    distance from any of the cluster's edge sets to its mean.
    """

    ecu: str
    std: float
    max_distance: float
    count: int


@dataclass(frozen=True)
class EnhancementComparison:
    """Baseline-vs-enhanced statistics for every ECU."""

    baseline: tuple[ClusterStats, ...]
    enhanced: tuple[ClusterStats, ...]
    baseline_label: str
    enhanced_label: str

    def paired(self) -> list[tuple[ClusterStats, ClusterStats]]:
        by_name = {s.ecu: s for s in self.enhanced}
        return [(s, by_name[s.ecu]) for s in self.baseline if s.ecu in by_name]


def _stats_per_ecu(
    traces_by_ecu: dict[str, list[VoltageTrace]],
    configs_by_ecu: dict[str, ExtractionConfig],
    *,
    shrinkage: float = 0.0,
    reference_inv_covs: dict[str, np.ndarray] | None = None,
) -> tuple[list[ClusterStats], dict[str, np.ndarray]]:
    """Per-ECU std and max distance, plus each ECU's inverse covariance.

    When ``reference_inv_covs`` is given, distances are measured in that
    *fixed* metric instead of each configuration's own covariance — this
    is how an enhancement's effect on "perceived similarity" is visible
    (a tighter cloud measured by a tighter covariance scores the same).
    """
    stats = []
    inv_covs: dict[str, np.ndarray] = {}
    for ecu in sorted(traces_by_ecu):
        edge_sets = extract_many(traces_by_ecu[ecu], configs_by_ecu[ecu])
        vectors = np.stack([e.vector for e in edge_sets])
        mean = vectors.mean(axis=0)
        per_dim_std = vectors.std(axis=0, ddof=0)
        centered = vectors - mean
        cov = centered.T @ centered / vectors.shape[0]
        inv_covs[ecu] = invert_covariance(cov, shrinkage=shrinkage)
        inv_cov = (
            reference_inv_covs[ecu] if reference_inv_covs else inv_covs[ecu]
        )
        distances = mahalanobis_distances(vectors, mean, inv_cov)
        stats.append(
            ClusterStats(
                ecu=ecu,
                std=float(per_dim_std.mean()),
                max_distance=float(distances.max()),
                count=vectors.shape[0],
            )
        )
    return stats, inv_covs


def _group_traces(traces: Sequence[VoltageTrace]) -> dict[str, list[VoltageTrace]]:
    grouped: dict[str, list[VoltageTrace]] = {}
    for trace in traces:
        sender = trace.metadata.get("sender")
        if sender is None:
            raise DatasetError("enhancement studies need ground-truth senders")
        grouped.setdefault(sender, []).append(trace)
    return grouped


def threshold_enhancement(
    traces: Sequence[VoltageTrace], *, shrinkage: float = 0.0
) -> EnhancementComparison:
    """Table 5.1: fixed extraction threshold vs per-cluster thresholds."""
    grouped = _group_traces(traces)
    fixed = ExtractionConfig.for_trace(traces[0])
    fixed_configs = {ecu: fixed for ecu in grouped}
    cluster_configs = {
        ecu: fixed.with_threshold(
            float(np.mean([cluster_threshold(t) for t in ecu_traces]))
        )
        for ecu, ecu_traces in grouped.items()
    }
    baseline, inv_covs = _stats_per_ecu(grouped, fixed_configs, shrinkage=shrinkage)
    enhanced, _ = _stats_per_ecu(
        grouped, cluster_configs, shrinkage=shrinkage, reference_inv_covs=inv_covs
    )
    return EnhancementComparison(
        baseline=tuple(baseline),
        enhanced=tuple(enhanced),
        baseline_label="static threshold",
        enhanced_label="cluster threshold",
    )


def multi_edge_enhancement(
    traces: Sequence[VoltageTrace],
    *,
    n_edge_sets: int = 3,
    shrinkage: float = 0.0,
) -> EnhancementComparison:
    """Table 5.2: one extracted edge set vs the mean of several.

    The traces must be long enough to contain ``n_edge_sets`` windows
    spaced by the configured edge-set spacing (capture with a larger
    ``truncate_bits`` — or none — for this study).
    """
    grouped = _group_traces(traces)
    single = ExtractionConfig.for_trace(traces[0])
    multi = ExtractionConfig(
        bit_width=single.bit_width,
        threshold=single.threshold,
        prefix_len=single.prefix_len,
        suffix_len=single.suffix_len,
        n_edge_sets=n_edge_sets,
        edge_set_spacing=single.edge_set_spacing,
    )
    single_configs = {ecu: single for ecu in grouped}
    multi_configs = {ecu: multi for ecu in grouped}
    baseline, inv_covs = _stats_per_ecu(grouped, single_configs, shrinkage=shrinkage)
    enhanced, _ = _stats_per_ecu(
        grouped, multi_configs, shrinkage=shrinkage, reference_inv_covs=inv_covs
    )
    return EnhancementComparison(
        baseline=tuple(baseline),
        enhanced=tuple(enhanced),
        baseline_label="1 edge set",
        enhanced_label=f"{n_edge_sets} edge sets",
    )
