"""Evaluation harness: every table and figure of the paper's Chapter 4/5."""

from repro.eval.confusion import ConfusionMatrix
from repro.eval.enhancements import (
    ClusterStats,
    EnhancementComparison,
    multi_edge_enhancement,
    threshold_enhancement,
)
from repro.eval.environment import (
    VOLTAGE_EVENTS,
    DriftPoint,
    TemperatureResult,
    VoltageResult,
    temperature_experiment,
    voltage_experiment,
)
from repro.eval.feasibility import (
    FeasibilityReport,
    analyze_vprofile,
    format_feasibility,
    related_work_budgets,
)
from repro.eval.figures import (
    DistanceComparison,
    EdgeSetOverlay,
    SamplingEffects,
    StdDevProfile,
    distance_comparison,
    edge_set_overlay,
    sample_stddev_profile,
    sampling_effects,
    vehicle_voltage_profiles,
)
from repro.eval.margin import (
    MarginChoice,
    margin_removing_false_positives,
    tune_margin,
)
from repro.eval.plotting import ascii_bars, ascii_chart, drift_bars
from repro.eval.reporting import (
    format_confusion,
    format_distance_comparison,
    format_drift,
    format_enhancement,
    format_suite,
    format_sweep,
    format_temperature,
    format_voltage,
)
from repro.eval.suite import (
    DetectionSuiteResult,
    SuiteInputs,
    TestOutcome,
    run_detection_suite,
)
from repro.eval.sweeps import SweepCell, rate_resolution_sweep

__all__ = [
    "ConfusionMatrix",
    "FeasibilityReport",
    "analyze_vprofile",
    "format_feasibility",
    "related_work_budgets",
    "ClusterStats",
    "EnhancementComparison",
    "multi_edge_enhancement",
    "threshold_enhancement",
    "VOLTAGE_EVENTS",
    "DriftPoint",
    "TemperatureResult",
    "VoltageResult",
    "temperature_experiment",
    "voltage_experiment",
    "DistanceComparison",
    "EdgeSetOverlay",
    "SamplingEffects",
    "StdDevProfile",
    "distance_comparison",
    "edge_set_overlay",
    "sample_stddev_profile",
    "sampling_effects",
    "vehicle_voltage_profiles",
    "MarginChoice",
    "margin_removing_false_positives",
    "tune_margin",
    "ascii_bars",
    "ascii_chart",
    "drift_bars",
    "format_confusion",
    "format_distance_comparison",
    "format_drift",
    "format_enhancement",
    "format_suite",
    "format_sweep",
    "format_temperature",
    "format_voltage",
    "DetectionSuiteResult",
    "SuiteInputs",
    "TestOutcome",
    "run_detection_suite",
    "SweepCell",
    "rate_resolution_sweep",
]
