"""Plain-text rendering of experiment results in the paper's layouts.

Benchmarks tee these strings to stdout so that each bench run prints the
same rows/series the corresponding paper table or figure reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.eval.confusion import ConfusionMatrix
from repro.eval.enhancements import EnhancementComparison
from repro.eval.environment import DriftPoint, TemperatureResult, VoltageResult
from repro.eval.figures import DistanceComparison
from repro.eval.suite import DetectionSuiteResult
from repro.eval.sweeps import SweepCell


def format_suite(result: DetectionSuiteResult) -> str:
    """Render one of Tables 4.1-4.4."""
    lines = [
        f"=== {result.vehicle_name} / {result.metric.value} distance ===",
        "",
        f"(a) False positive test  [margin {result.false_positive.margin:.4g}]",
        result.false_positive.confusion.as_table(),
        f"    accuracy = {result.false_positive.accuracy:.5f}",
        "",
        f"(b) Hijack imitation test  [margin {result.hijack.margin:.4g}]",
        result.hijack.confusion.as_table(),
        f"    F-score = {result.hijack.f_score:.5f}",
        "",
        f"(c) Foreign device imitation test  [margin {result.foreign.margin:.4g}]",
        f"    imposter {result.foreign_scenario.imposter} -> victim "
        f"{result.foreign_scenario.victim} "
        f"(profile distance {result.foreign_scenario.similarity:.2f})",
        result.foreign.confusion.as_table(),
        f"    F-score = {result.foreign.f_score:.5f}",
    ]
    if result.foreign.zero_fp_score is not None:
        lines.append(
            f"    F-score with all false positives removed = "
            f"{result.foreign.zero_fp_score:.5f}"
        )
    else:
        lines.append("    no margin removes all false positives")
    return "\n".join(lines)


def format_sweep(cells: Sequence[SweepCell], title: str) -> str:
    """Render Tables 4.6/4.7: one row per resolution, one column per rate."""
    rates = sorted({c.sample_rate for c in cells})
    resolutions = sorted({c.resolution_bits for c in cells}, reverse=True)
    by_key = {(c.sample_rate, c.resolution_bits): c for c in cells}

    def row(bits: int, field: str) -> str:
        values = []
        for rate in rates:
            cell = by_key.get((rate, bits))
            if cell is None:
                values.append("   --  ")
            elif cell.singular:
                values.append("  sing.")
            else:
                values.append(f"{getattr(cell, field):.5f}")
        return f"  {bits:>4} bit | " + " | ".join(values)

    header = "          | " + " | ".join(f"{r / 1e6:>5g}M" for r in rates)
    blocks = [f"=== {title} ==="]
    for field, label in (
        ("fp_accuracy", "(a) False positive test accuracies"),
        ("hijack_f", "(b) Hijack test F-scores"),
        ("foreign_f", "(c) Foreign device test F-scores"),
    ):
        blocks.append(label)
        blocks.append(header)
        blocks.extend(row(bits, field) for bits in resolutions)
        blocks.append("")
    return "\n".join(blocks)


def format_drift(points: Iterable[DriftPoint], title: str) -> str:
    """Render Figures 4.6-4.8 as rows of percent deltas with 99 % CIs."""
    lines = [f"=== {title} ===", f"{'ECU':>6} {'condition':>14} {'delta %':>9} {'99% CI':>8} {'n':>6}"]
    for p in points:
        lines.append(
            f"{p.ecu:>6} {p.condition:>14} {p.percent_delta:>8.2f}% "
            f"+/-{p.ci_99:>5.2f} {p.n_messages:>6}"
        )
    return "\n".join(lines)


def format_temperature(result: TemperatureResult) -> str:
    """Render Table 4.8 plus the Figure 4.6 series."""
    lo, hi = result.train_bin
    parts = [
        f"=== Temperature experiment (trained on {lo:g}..{hi:g} degC, "
        f"margin {result.margin:.3g}) ===",
        result.confusion.as_table(),
        f"false positives: {result.confusion.false_positive} of "
        f"{result.confusion.total}",
        f"after adding 20 degC training data: "
        f"{result.confusion_with_warm_data.false_positive} false positives",
        "",
        format_drift(result.drift, "Figure 4.6: drift vs temperature"),
    ]
    return "\n".join(parts)


def format_voltage(result: VoltageResult) -> str:
    """Render Table 4.9 plus the Figure 4.7/4.8 series."""
    parts = [
        f"=== High-power vehicle functions (margin {result.margin:.3g}) ===",
        result.confusion.as_table(),
        f"false positives: {result.confusion.false_positive} of "
        f"{result.confusion.total}",
        "",
        format_drift(result.event_drift, "Figure 4.7: drift vs power events"),
        "",
        format_drift(result.trial_drift, "Figure 4.8: drift across trials"),
    ]
    return "\n".join(parts)


def format_enhancement(result: EnhancementComparison, title: str) -> str:
    """Render Tables 5.1/5.2."""
    lines = [
        f"=== {title} ===",
        f"{'ECU':>6} | {'std (' + result.baseline_label + ')':>24} | "
        f"{'std (' + result.enhanced_label + ')':>24} | "
        f"{'max dist (base)':>16} | {'max dist (enh)':>15}",
    ]
    for base, enhanced in result.paired():
        lines.append(
            f"{base.ecu:>6} | {base.std:>24.3f} | {enhanced.std:>24.3f} | "
            f"{base.max_distance:>16.3f} | {enhanced.max_distance:>15.3f}"
        )
    return "\n".join(lines)


def format_distance_comparison(result: DistanceComparison) -> str:
    """Render Table 4.5."""
    names = sorted(result.cluster_means)
    lines = [
        "=== Table 4.5: distances from a test edge set of "
        f"{result.test_ecu} ===",
        f"{'metric':>12} | " + " | ".join(f"{n:>10}" for n in names) + " | quotient",
    ]
    for metric, table in (("Euclidean", result.euclidean), ("Mahalanobis", result.mahalanobis)):
        row = " | ".join(f"{table[n]:>10.2f}" for n in names)
        lines.append(
            f"{metric:>12} | {row} | {result.quotient(metric.lower()):>8.2f}"
        )
    return "\n".join(lines)


def format_confusion(confusion: ConfusionMatrix, title: str) -> str:
    """Render a single confusion matrix with its headline scores."""
    return "\n".join(
        [
            f"=== {title} ===",
            confusion.as_table(),
            f"accuracy={confusion.accuracy:.5f} precision={confusion.precision:.5f} "
            f"recall={confusion.recall:.5f} F={confusion.f_score:.5f}",
        ]
    )
