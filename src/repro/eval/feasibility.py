"""Embedded-feasibility analysis of a trained vProfile model.

The paper's pitch (Sections 1.3 / 6): vProfile's single-feature design
— low sampling rate, one edge set, one distance per cluster — gives it
"a higher potential to be implemented on less expensive embedded
hardware" than the feature-pipeline competitors.  This module makes
that claim quantitative for a concrete model: per-message arithmetic
cost, model memory footprint, and required ADC throughput, plus the
same accounting for the reimplemented baselines.

The cost model counts multiply-accumulate operations (MACs), the
currency of small DSPs/MCUs; comparisons against wall-clock
measurements live in ``benchmarks/test_latency.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.edge_extraction import ExtractionConfig
from repro.core.model import Metric, VProfileModel

BYTES_PER_FLOAT = 8


@dataclass(frozen=True)
class FeasibilityReport:
    """Per-message resource budget of one detector configuration.

    Attributes
    ----------
    name:
        Configuration label.
    samples_processed:
        ADC samples the detector must touch per message.
    macs_per_message:
        Multiply-accumulate operations per classified message.
    model_bytes:
        Persistent model storage.
    sample_rate:
        Required digitizer rate (samples/second).
    adc_resolution_bits:
        Required ADC resolution.
    """

    name: str
    samples_processed: int
    macs_per_message: int
    model_bytes: int
    sample_rate: float
    adc_resolution_bits: int

    def macs_per_second(self, messages_per_second: float) -> float:
        """Sustained arithmetic load at a given bus message rate."""
        return self.macs_per_message * messages_per_second

    def fits_in(self, *, ram_bytes: int, macs_per_s: float, bus_load_msgs: float) -> bool:
        """Whether a device with the given budget can run this detector."""
        return (
            self.model_bytes <= ram_bytes
            and self.macs_per_second(bus_load_msgs) <= macs_per_s
        )


def analyze_vprofile(
    model: VProfileModel,
    extraction: ExtractionConfig,
    *,
    sample_rate: float,
    adc_resolution_bits: int,
    name: str | None = None,
) -> FeasibilityReport:
    """Resource budget of a trained vProfile model.

    * samples: Algorithm 1 walks ~45 bits of the frame (bit-centre reads
      plus the edge windows);
    * MACs: the Mahalanobis distance is d^2 + d MACs per cluster
      (one mat-vec plus one dot product); Euclidean is d per cluster;
    * memory: cluster means (k x d) plus, for Mahalanobis, the inverse
      covariances (k x d x d) and thresholds.
    """
    d = model.dim
    k = model.n_clusters
    # Bit walking: one sample per bit centre for ~45 stuffed bits, plus
    # re-centring scans (~bit_width/2 on ~20 transitions) and the two
    # extraction windows.
    samples = int(45 + 20 * extraction.bit_width / 2 + 2 * d)
    if model.metric is Metric.MAHALANOBIS:
        macs_per_cluster = d * d + d
        matrix_floats = k * d * d
    else:
        macs_per_cluster = d
        matrix_floats = 0
    macs = k * macs_per_cluster
    model_floats = k * d + matrix_floats + 2 * k  # means + thresholds/counts
    return FeasibilityReport(
        name=name or f"vProfile/{model.metric.value} (k={k}, d={d})",
        samples_processed=samples,
        macs_per_message=int(macs),
        model_bytes=int(model_floats * BYTES_PER_FLOAT),
        sample_rate=sample_rate,
        adc_resolution_bits=adc_resolution_bits,
    )


def analyze_baseline(
    name: str,
    *,
    samples_processed: int,
    features: int,
    classifier_macs: int,
    model_floats: int,
    sample_rate: float,
    adc_resolution_bits: int,
    macs_per_feature: int = 6,
) -> FeasibilityReport:
    """Generic budget for a feature-pipeline baseline.

    Feature extraction is charged ``macs_per_feature`` per feature per
    processed sample (statistics like std/skew/kurtosis sweep the
    section several times).
    """
    macs = samples_processed * macs_per_feature + features * classifier_macs
    return FeasibilityReport(
        name=name,
        samples_processed=samples_processed,
        macs_per_message=int(macs),
        model_bytes=int(model_floats * BYTES_PER_FLOAT),
        sample_rate=sample_rate,
        adc_resolution_bits=adc_resolution_bits,
    )


def related_work_budgets(frame_samples: int = 2400) -> list[FeasibilityReport]:
    """Budgets for the reimplemented baselines, per Section 1.2.1 specs.

    ``frame_samples`` is the full-frame sample count the feature
    pipelines must process (vProfile stops at ~bit 45).
    """
    return [
        analyze_baseline(
            "Murvay&Groza (MSE, 2 GS/s)",
            samples_processed=frame_samples * 100,  # 2 GS/s vs 20 MS/s
            features=0,
            classifier_macs=0,
            model_floats=frame_samples * 100,
            sample_rate=2e9,
            adc_resolution_bits=12,
        ),
        analyze_baseline(
            "Scission (20 MS/s)",
            samples_processed=frame_samples,
            features=36,
            classifier_macs=36,  # logistic regression dot products
            model_floats=36 * 8,
            sample_rate=20e6,
            adc_resolution_bits=12,
        ),
        analyze_baseline(
            "VoltageIDS (250 MS/s)",
            samples_processed=frame_samples * 12,
            features=51,
            classifier_macs=51,
            model_floats=51 * 8,
            sample_rate=250e6,
            adc_resolution_bits=8,
        ),
        analyze_baseline(
            "SIMPLE (1 MS/s)",
            samples_processed=frame_samples // 20,
            features=16,
            classifier_macs=16 * 16,  # FDA projection + Mahalanobis
            model_floats=16 * 16 + 16 * 8,
            sample_rate=1e6,
            adc_resolution_bits=12,
        ),
    ]


def format_feasibility(reports: list[FeasibilityReport], bus_load_msgs: float) -> str:
    """Render a comparison table at a given bus message rate."""
    lines = [
        f"=== Embedded feasibility at {bus_load_msgs:.0f} msgs/s ===",
        f"{'configuration':>34} | {'samples':>8} | {'MACs/msg':>9} | "
        f"{'model':>9} | {'rate':>8} | {'MMAC/s':>8}",
    ]
    for report in reports:
        lines.append(
            f"{report.name:>34} | {report.samples_processed:>8} | "
            f"{report.macs_per_message:>9} | "
            f"{report.model_bytes / 1024:>7.1f}kB | "
            f"{report.sample_rate / 1e6:>6g}MS | "
            f"{report.macs_per_second(bus_load_msgs) / 1e6:>8.2f}"
        )
    return "\n".join(lines)
