"""Dependency-free ASCII rendering of the paper's figure series.

The evaluation harness runs in terminals and CI logs, so the figure
benches render their series as text: line charts for waveforms (Figures
2.5/4.2/4.4) and bar charts for the drift plots (Figures 4.6-4.8).
Nothing here affects the numeric results — it is presentation only.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ReproError

#: Glyphs used to distinguish overlaid series.
SERIES_GLYPHS = "*o+x#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[float]] | Sequence[float],
    *,
    width: int = 72,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Parameters
    ----------
    series:
        A single sequence, or a mapping of label -> sequence for
        overlays (each series gets its own glyph).
    width / height:
        Plot area size in characters.
    title:
        Optional headline.
    """
    if not isinstance(series, Mapping):
        series = {"": series}
    arrays = {name: np.asarray(values, dtype=float) for name, values in series.items()}
    if not arrays or any(a.size == 0 for a in arrays.values()):
        raise ReproError("cannot chart empty series")
    if width < 8 or height < 3:
        raise ReproError("chart must be at least 8x3 characters")

    lo = min(float(a.min()) for a in arrays.values())
    hi = max(float(a.max()) for a in arrays.values())
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(arrays.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        xs = np.linspace(0, width - 1, values.size)
        ys = (values - lo) / (hi - lo) * (height - 1)
        for x, y in zip(xs, ys):
            row = height - 1 - int(round(y))
            grid[row][int(round(x))] = glyph

    label_width = max(len(f"{hi:.4g}"), len(f"{lo:.4g}"))
    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:.4g}"
        elif row_index == height - 1:
            label = f"{lo:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(arrays)
        if name
    )
    if legend:
        lines.append(" " * label_width + "   " + legend)
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart.

    Negative values extend left of the axis, positives right — matching
    the percent-delta style of Figures 4.6-4.8.
    """
    if not values:
        raise ReproError("cannot chart an empty mapping")
    labels = list(values)
    magnitudes = np.array([float(values[k]) for k in labels])
    scale = max(float(np.abs(magnitudes).max()), 1e-12)
    half = max(width // 2, 4)
    label_width = max(len(str(label)) for label in labels)

    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, magnitudes):
        length = int(round(abs(value) / scale * half))
        if value >= 0:
            bar = " " * half + "|" + "#" * length + " " * (half - length)
        else:
            bar = " " * (half - length) + "#" * length + "|" + " " * half
        lines.append(f"{label:>{label_width}} {bar} {value:+.2f}{unit}")
    return "\n".join(lines)


def drift_bars(points, condition: str, *, width: int = 50) -> str:
    """Bar chart of one condition's per-ECU drift (Figures 4.6-4.8)."""
    selected = {p.ecu: p.percent_delta for p in points if p.condition == condition}
    if not selected:
        raise ReproError(f"no drift points for condition {condition!r}")
    return ascii_bars(
        selected, width=width, title=f"drift at {condition}", unit="%"
    )
