"""Environmental-variability experiments (paper Section 4.4).

* **Temperature** (Section 4.4.1, Table 4.8, Figure 4.6): idle the
  vehicle from -5 degC to 25 degC, train on the coldest 5-degree bin and
  replay the warmer bins.  Distances drift upward with temperature —
  drastically for the ECUs with large thermal coefficients (0 and 2) —
  and the few false positives in the hottest bin disappear when some
  warm data is added to the training set.
* **Battery voltage / high-power loads** (Section 4.4.2, Table 4.9,
  Figures 4.7-4.8): in accessory mode, switch the lights and A/C on and
  off.  The bus voltage barely moves (the transceivers regulate their
  rail), so detection is unaffected; the largest drift appears with
  lights + A/C together, and a model trained only on the first trial
  drifts over the following trials (creeping bus temperature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analog.environment import Environment
from repro.core.detection import Detector
from repro.core.distances import mahalanobis_distances
from repro.core.edge_extraction import ExtractedEdgeSet, ExtractionConfig, extract_many
from repro.core.model import Metric, VProfileModel
from repro.core.training import TrainingData, train_model
from repro.errors import DatasetError
from repro.eval.confusion import ConfusionMatrix
from repro.eval.margin import tune_margin
from repro.vehicles.dataset import capture_session
from repro.vehicles.profiles import VehicleConfig

#: z-value of the paper's 99 % confidence intervals.
Z_99 = 2.5758


@dataclass(frozen=True)
class DriftPoint:
    """Mean Mahalanobis-distance drift of one ECU under one condition.

    ``percent_delta`` is the percent change of the mean distance versus
    the training condition; ``ci_99`` is the half-width of its 99 %
    confidence interval (also in percent), as plotted in Figures 4.6-4.8.
    """

    ecu: str
    condition: str
    percent_delta: float
    ci_99: float
    n_messages: int


@dataclass(frozen=True)
class TemperatureResult:
    """Everything Table 4.8 and Figure 4.6 report."""

    confusion: ConfusionMatrix
    confusion_with_warm_data: ConfusionMatrix
    drift: tuple[DriftPoint, ...]
    margin: float
    train_bin: tuple[float, float]


@dataclass(frozen=True)
class VoltageResult:
    """Everything Table 4.9 and Figures 4.7-4.8 report."""

    confusion: ConfusionMatrix
    event_drift: tuple[DriftPoint, ...]
    trial_drift: tuple[DriftPoint, ...]
    margin: float


def _extract_at(
    vehicle: VehicleConfig,
    env: Environment,
    duration_s: float,
    seed: int,
    extraction: ExtractionConfig | None,
    jobs: int | None = None,
    cache=None,
) -> tuple[list[ExtractedEdgeSet], ExtractionConfig]:
    session = capture_session(
        vehicle, duration_s, env=env, seed=seed, jobs=jobs, cache=cache
    )
    if extraction is None:
        extraction = ExtractionConfig.for_trace(session.traces[0])
    if jobs is not None:
        from repro.perf.engine import extract_many_parallel

        return extract_many_parallel(session.traces, extraction, jobs=jobs), extraction
    return extract_many(session.traces, extraction), extraction


def _drift_points(
    model: VProfileModel,
    baseline_means: dict[str, float],
    edge_sets: Sequence[ExtractedEdgeSet],
    condition: str,
) -> list[DriftPoint]:
    """Per-ECU percent delta of the mean distance under one condition."""
    points = []
    for index, cluster in enumerate(model.clusters):
        vectors = [
            e.vector for e in edge_sets if e.metadata.get("sender") == cluster.name
        ]
        if not vectors:
            continue
        distances = mahalanobis_distances(
            np.stack(vectors), cluster.mean, cluster.inv_covariance
        )
        base = baseline_means[cluster.name]
        mean = float(distances.mean())
        sem = float(distances.std(ddof=1) / np.sqrt(len(distances))) if len(distances) > 1 else 0.0
        points.append(
            DriftPoint(
                ecu=cluster.name,
                condition=condition,
                percent_delta=100.0 * (mean - base) / base,
                ci_99=100.0 * Z_99 * sem / base,
                n_messages=len(distances),
            )
        )
    return points


def _baseline_means(
    model: VProfileModel, edge_sets: Sequence[ExtractedEdgeSet]
) -> dict[str, float]:
    means: dict[str, float] = {}
    for cluster in model.clusters:
        vectors = [
            e.vector for e in edge_sets if e.metadata.get("sender") == cluster.name
        ]
        if not vectors:
            raise DatasetError(f"no baseline messages for {cluster.name}")
        distances = mahalanobis_distances(
            np.stack(vectors), cluster.mean, cluster.inv_covariance
        )
        means[cluster.name] = float(distances.mean())
    return means


def _fit_and_calibrate(
    vehicle: VehicleConfig,
    train_sets: list[ExtractedEdgeSet],
    seed: int,
    *,
    fit_fraction: float = 0.6,
) -> tuple[VProfileModel, float, dict[str, float]]:
    """Fit a model and calibrate margin/baselines on held-out data.

    The margin and the baseline mean distances must come from data the
    model did *not* see: in-sample Mahalanobis distances are biased low
    (severely so when the per-cluster count is only a few times the
    edge-set dimension), which would both zero the margin and inflate
    every drift percentage.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(train_sets))
    cut = int(round(fit_fraction * len(train_sets)))
    fit_sets = [train_sets[i] for i in order[:cut]]
    calib_sets = [train_sets[i] for i in order[cut:]]
    model = train_model(
        TrainingData.from_edge_sets(fit_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=vehicle.sa_clusters,
    )
    vectors = np.stack([e.vector for e in calib_sets])
    sas = np.array([e.source_address for e in calib_sets])
    batch = Detector(model).classify_batch(vectors, sas)
    margin = tune_margin(
        batch, np.zeros(len(calib_sets), dtype=bool), "accuracy"
    ).margin
    baseline = _baseline_means(model, calib_sets)
    return model, margin, baseline


def _confusion_all_normal(
    model: VProfileModel, edge_sets: Sequence[ExtractedEdgeSet], margin: float
) -> ConfusionMatrix:
    vectors = np.stack([e.vector for e in edge_sets])
    sas = np.array([e.source_address for e in edge_sets])
    batch = Detector(model, margin=margin).classify_batch(vectors, sas)
    anomalies = batch.anomalies(margin)
    return ConfusionMatrix(
        true_positive=0,
        false_negative=0,
        false_positive=int(anomalies.sum()),
        true_negative=int((~anomalies).sum()),
    )


def temperature_experiment(
    vehicle: VehicleConfig,
    *,
    bin_edges: Sequence[float] = (-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0),
    trials: int = 3,
    duration_per_capture_s: float = 3.0,
    seed: int = 0,
    jobs: int | None = None,
    cache=None,
) -> TemperatureResult:
    """Reproduce the temperature experiment (Table 4.8, Figure 4.6).

    For every trial and 5-degree bin, a short idle capture is recorded at
    temperatures spread inside the bin.  The model trains on the coldest
    bin; the remaining bins are replayed unmodified (battery held at the
    engine-running 13.6 V throughout, as in the paper).
    """
    if len(bin_edges) < 3:
        raise DatasetError("need at least two temperature bins")
    battery_v = 13.60
    bins = list(zip(bin_edges[:-1], bin_edges[1:]))
    rng = np.random.default_rng(seed)

    extraction: ExtractionConfig | None = None
    per_bin: list[list[ExtractedEdgeSet]] = []
    for bin_index, (lo, hi) in enumerate(bins):
        collected: list[ExtractedEdgeSet] = []
        for trial in range(trials):
            temp = float(rng.uniform(lo, hi))
            env = Environment(temperature_c=temp, battery_v=battery_v)
            edge_sets, extraction = _extract_at(
                vehicle,
                env,
                duration_per_capture_s,
                seed=seed + 101 * bin_index + trial,
                extraction=extraction,
                jobs=jobs,
                cache=cache,
            )
            collected.extend(edge_sets)
        per_bin.append(collected)

    train_sets = per_bin[0]
    model, margin, baseline = _fit_and_calibrate(vehicle, train_sets, seed)

    warm_sets = [e for bin_sets in per_bin[1:] for e in bin_sets]
    confusion = _confusion_all_normal(model, warm_sets, margin)

    # Figure 4.6: per-ECU drift per warm bin against the cold baseline.
    drift: list[DriftPoint] = []
    for (lo, hi), bin_sets in zip(bins[1:], per_bin[1:]):
        drift.extend(
            _drift_points(model, baseline, bin_sets, f"{lo:g}..{hi:g} degC")
        )

    # Paper: adding a capture at 20 degC to the training data removes
    # the remaining (hot-bin) false positives.
    warm_extra, _ = _extract_at(
        vehicle,
        Environment(temperature_c=20.0, battery_v=battery_v),
        duration_per_capture_s,
        seed=seed + 7919,
        extraction=extraction,
        jobs=jobs,
        cache=cache,
    )
    model_warm, margin_warm, _ = _fit_and_calibrate(
        vehicle, train_sets + warm_extra, seed
    )
    # The paper keeps the experiment's margin when augmenting the
    # training data; Mahalanobis slacks are unitless, so the larger of
    # the two calibrations is a safe, comparable choice.
    confusion_warm = _confusion_all_normal(
        model_warm, warm_sets, max(margin, margin_warm)
    )

    return TemperatureResult(
        confusion=confusion,
        confusion_with_warm_data=confusion_warm,
        drift=tuple(drift),
        margin=margin,
        train_bin=bins[0],
    )


#: The battery-voltage experiment's event sequence (Section 4.4.2).
VOLTAGE_EVENTS: tuple[tuple[str, float, float], ...] = (
    # (event name, battery volts, accessory load amps)
    ("accessory", 12.61, 0.0),
    ("lights", 12.58, 18.0),
    ("ac", 12.56, 25.0),
    ("lights+ac", 12.54, 43.0),
    ("engine", 13.60, 0.0),
)


def voltage_experiment(
    vehicle: VehicleConfig,
    *,
    trials: int = 5,
    duration_per_capture_s: float = 2.5,
    base_temperature_c: float = 28.4,
    hidden_temp_drift_per_trial_c: float = 2.0,
    seed: int = 0,
    jobs: int | None = None,
    cache=None,
) -> VoltageResult:
    """Reproduce the high-power-loads experiment (Table 4.9, Fig 4.7/4.8).

    ``hidden_temp_drift_per_trial_c`` models the paper's conjecture that
    the bus wiring warmed slightly over the five back-to-back trials,
    producing Figure 4.8's upward drift even though the measured cabin
    temperature held at 28.4 degC +/- 0.4.
    """
    extraction: ExtractionConfig | None = None
    by_event: dict[str, list[ExtractedEdgeSet]] = {name: [] for name, _, _ in VOLTAGE_EVENTS}
    accessory_by_trial: list[list[ExtractedEdgeSet]] = []
    for trial in range(trials):
        temperature = base_temperature_c + hidden_temp_drift_per_trial_c * trial
        for event_index, (name, battery_v, load_a) in enumerate(VOLTAGE_EVENTS):
            # Accessory mode doubles as training data for both models
            # (all-trials and trial-1-only), so capture it longer to keep
            # every cluster's covariance full rank.
            duration = duration_per_capture_s * (3.0 if name == "accessory" else 1.0)
            env = Environment(
                temperature_c=temperature + 0.05 * event_index,
                battery_v=battery_v,
                load_current_a=load_a,
            )
            edge_sets, extraction = _extract_at(
                vehicle,
                env,
                duration,
                seed=seed + 977 * trial + event_index,
                extraction=extraction,
                jobs=jobs,
                cache=cache,
            )
            by_event[name].extend(edge_sets)
            if name == "accessory":
                accessory_by_trial.append(edge_sets)

    # Table 4.9: train on accessory mode (all trials), test the rest.
    train_sets = by_event["accessory"]
    model, margin, baseline = _fit_and_calibrate(vehicle, train_sets, seed)
    test_sets = [
        e for name, sets in by_event.items() if name != "accessory" for e in sets
    ]
    confusion = _confusion_all_normal(model, test_sets, margin)

    # Figure 4.7: drift per event against accessory mode.
    event_drift: list[DriftPoint] = []
    for name, _, _ in VOLTAGE_EVENTS[1:]:
        event_drift.extend(_drift_points(model, baseline, by_event[name], name))

    # Figure 4.8: train on trial 1's accessory data only; test the
    # accessory events of the other trials.
    model_t1, _, baseline_t1 = _fit_and_calibrate(
        vehicle, accessory_by_trial[0], seed + 1
    )
    trial_drift: list[DriftPoint] = []
    for trial_index, edge_sets in enumerate(accessory_by_trial[1:], start=2):
        trial_drift.extend(
            _drift_points(model_t1, baseline_t1, edge_sets, f"trial {trial_index}")
        )

    return VoltageResult(
        confusion=confusion,
        event_drift=tuple(event_drift),
        trial_drift=tuple(trial_drift),
        margin=margin,
    )
