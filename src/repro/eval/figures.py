"""Data-series generators for the paper's figures.

Each function returns the plain numeric series a plot would display, so
benchmarks and examples can print (or plot) them without any plotting
dependency:

* Figure 2.5  — edge-set overlays of two ECUs (Sterling Acterra);
* Figure 3.1  — effect of sampling rate / resolution on one edge set;
* Figure 4.2  — mean voltage profiles of Vehicle A's ECUs;
* Figure 4.4  — per-sample-index standard deviation of one ECU;
* Figure 4.5 / Table 4.5 — cluster means, a test edge set, and its
  Euclidean vs Mahalanobis distances to both clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distances import (
    euclidean_distance,
    invert_covariance,
    mahalanobis_distance,
)
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.core.model import Metric
from repro.core.training import TrainingData, train_model
from repro.errors import DatasetError
from repro.vehicles.dataset import capture_session
from repro.vehicles.profiles import VehicleConfig


@dataclass(frozen=True)
class EdgeSetOverlay:
    """Figure 2.5: stacked edge sets per ECU."""

    vectors_by_ecu: dict[str, np.ndarray]  # name -> (n, d)

    def ecu_names(self) -> list[str]:
        return sorted(self.vectors_by_ecu)


def edge_set_overlay(
    vehicle: VehicleConfig,
    *,
    traces_per_ecu: int = 200,
    duration_s: float = 8.0,
    seed: int = 0,
) -> EdgeSetOverlay:
    """Collect ~``traces_per_ecu`` edge sets per ECU (Figure 2.5)."""
    session = capture_session(vehicle, duration_s, seed=seed)
    edge_sets = extract_many(session.traces)
    grouped: dict[str, list[np.ndarray]] = {}
    for edge_set in edge_sets:
        sender = edge_set.metadata["sender"]
        bucket = grouped.setdefault(sender, [])
        if len(bucket) < traces_per_ecu:
            bucket.append(edge_set.vector)
    missing = [name for name, rows in grouped.items() if len(rows) < traces_per_ecu // 2]
    if missing:
        raise DatasetError(
            f"capture too short for {traces_per_ecu} traces from {missing}"
        )
    return EdgeSetOverlay(
        vectors_by_ecu={name: np.stack(rows) for name, rows in grouped.items()}
    )


@dataclass(frozen=True)
class SamplingEffects:
    """Figure 3.1: one edge set rendered at reduced rates / resolutions."""

    by_rate: dict[float, np.ndarray]        # sample rate -> edge set
    by_resolution: dict[int, np.ndarray]    # bits -> edge set (native rate)


def sampling_effects(
    vehicle: VehicleConfig,
    *,
    rate_divisors: tuple[int, ...] = (1, 2, 4, 8),
    resolutions: tuple[int, ...] = (16, 12, 8, 6, 4),
    seed: int = 0,
) -> SamplingEffects:
    """Downsample / requantise one message's edge set (Figure 3.1)."""
    session = capture_session(vehicle, 0.2, seed=seed)
    trace = session.traces[0]
    native_bits = trace.resolution_bits
    by_rate: dict[float, np.ndarray] = {}
    for divisor in rate_divisors:
        reduced = trace.downsampled(divisor)
        config = ExtractionConfig.for_trace(reduced)
        by_rate[reduced.sample_rate] = extract_many([reduced], config)[0].vector
    by_resolution: dict[int, np.ndarray] = {}
    for bits in resolutions:
        if bits > native_bits:
            continue
        reduced = trace.at_resolution(bits) if bits < native_bits else trace
        config = ExtractionConfig.for_trace(reduced)
        by_resolution[bits] = extract_many([reduced], config)[0].vector
    return SamplingEffects(by_rate=by_rate, by_resolution=by_resolution)


def vehicle_voltage_profiles(
    vehicle: VehicleConfig,
    *,
    duration_s: float = 5.0,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Figure 4.2: each ECU's mean edge-set waveform."""
    session = capture_session(vehicle, duration_s, seed=seed)
    edge_sets = extract_many(session.traces)
    grouped: dict[str, list[np.ndarray]] = {}
    for edge_set in edge_sets:
        grouped.setdefault(edge_set.metadata["sender"], []).append(edge_set.vector)
    return {name: np.stack(rows).mean(axis=0) for name, rows in sorted(grouped.items())}


@dataclass(frozen=True)
class StdDevProfile:
    """Figure 4.4: per-sample-index standard deviation for one ECU."""

    ecu: str
    per_index_std: np.ndarray
    edge_indices: tuple[int, ...]  # the "dashed vertical line" positions

    @property
    def edge_to_steady_ratio(self) -> float:
        """How much noisier the edge samples are than the quietest ones."""
        edge = self.per_index_std[list(self.edge_indices)].mean()
        steady = np.partition(self.per_index_std, 4)[:4].mean()
        return float(edge / steady)


def sample_stddev_profile(
    vehicle: VehicleConfig,
    ecu: str = "ECU0",
    *,
    duration_s: float = 5.0,
    seed: int = 0,
    n_edge_indices: int = 4,
) -> StdDevProfile:
    """Per-sample std of one ECU's edge sets (Figure 4.4).

    The highest-variance indices are the threshold-crossing samples —
    the paper's motivation for moving to a variance-aware metric.
    """
    session = capture_session(vehicle, duration_s, seed=seed)
    edge_sets = extract_many(session.traces)
    rows = [e.vector for e in edge_sets if e.metadata["sender"] == ecu]
    if len(rows) < 10:
        raise DatasetError(f"not enough messages from {ecu!r} in the capture")
    vectors = np.stack(rows)
    per_index_std = vectors.std(axis=0, ddof=0)
    edge_indices = tuple(
        int(i) for i in np.argsort(per_index_std)[-n_edge_indices:][::-1]
    )
    return StdDevProfile(ecu=ecu, per_index_std=per_index_std, edge_indices=edge_indices)


@dataclass(frozen=True)
class DistanceComparison:
    """Table 4.5 / Figure 4.5: metric quotients on one test edge set."""

    cluster_means: dict[str, np.ndarray]
    test_vector: np.ndarray
    test_ecu: str
    euclidean: dict[str, float]
    mahalanobis: dict[str, float]

    def quotient(self, metric: str) -> float:
        """Far-cluster distance over own-cluster distance."""
        table = self.euclidean if metric == "euclidean" else self.mahalanobis
        own = table[self.test_ecu]
        other = max(v for k, v in table.items() if k != self.test_ecu)
        return other / own


def distance_comparison(
    vehicle: VehicleConfig,
    *,
    test_ecu: str = "ECU0",
    duration_s: float = 8.0,
    seed: int = 0,
) -> DistanceComparison:
    """Compare Euclidean vs Mahalanobis on a held-out edge set.

    Reproduces Table 4.5: both metrics pick the right cluster, but the
    Mahalanobis quotient between wrong- and right-cluster distances is
    an order of magnitude larger than the Euclidean one.
    """
    session = capture_session(vehicle, duration_s, seed=seed)
    extraction = ExtractionConfig.for_trace(session.traces[0])
    edge_sets = extract_many(session.traces, extraction)
    holdout_index = next(
        i for i, e in enumerate(edge_sets) if e.metadata["sender"] == test_ecu
    )
    holdout = edge_sets.pop(holdout_index)
    model = train_model(
        TrainingData.from_edge_sets(edge_sets),
        metric=Metric.MAHALANOBIS,
        sa_clusters=vehicle.sa_clusters,
    )
    euclidean: dict[str, float] = {}
    mahalanobis: dict[str, float] = {}
    means: dict[str, np.ndarray] = {}
    for cluster in model.clusters:
        means[cluster.name] = cluster.mean
        euclidean[cluster.name] = euclidean_distance(holdout.vector, cluster.mean)
        mahalanobis[cluster.name] = mahalanobis_distance(
            holdout.vector, cluster.mean, cluster.inv_covariance
        )
    return DistanceComparison(
        cluster_means=means,
        test_vector=holdout.vector,
        test_ecu=test_ecu,
        euclidean=euclidean,
        mahalanobis=mahalanobis,
    )
