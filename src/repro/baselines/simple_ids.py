"""SIMPLE-style sender authentication (Foruhandeh et al., Section 1.2.1).

SIMPLE samples every dominant and recessive state of a frame, averages
them sample-wise into 16 features, reduces dimensionality with Fisher
Discriminant Analysis, and authenticates a message by comparing the
Mahalanobis distance between its projected features and the template of
the *claimed* sender against a per-ECU threshold found by binary search
at the equal error rate.

This is the closest relative of vProfile; the paper distinguishes
itself by using the raw first edge set directly (lower latency, no
transformations).
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.baselines.fda import FisherDiscriminant
from repro.baselines.features import steady_state_averages
from repro.core.distances import invert_covariance, mahalanobis_distances
from repro.errors import TrainingError


class SimpleAuthenticator:
    """FDA-reduced steady-state templates with per-ECU EER thresholds.

    Parameters
    ----------
    threshold:
        ADC-count dominant/recessive split level.
    samples_per_state:
        Resampled points per plateau (8 in the paper -> 16 features).
    shrinkage:
        Covariance regularisation for the projected templates.
    """

    def __init__(
        self,
        threshold: float,
        samples_per_state: int = 8,
        shrinkage: float = 1e-3,
    ):
        self.threshold = float(threshold)
        self.samples_per_state = samples_per_state
        self.shrinkage = shrinkage
        self.fda = FisherDiscriminant()
        self.templates_: dict[str, dict] = {}

    def features(self, trace: VoltageTrace) -> np.ndarray:
        """SIMPLE's 2 x samples_per_state steady-state averages."""
        return steady_state_averages(trace, self.threshold, self.samples_per_state)

    def fit(self, traces: list[VoltageTrace], labels: list[str]) -> "SimpleAuthenticator":
        if len(traces) != len(labels) or not traces:
            raise TrainingError("traces and labels must be equal-length, non-empty")
        X = np.stack([self.features(trace) for trace in traces])
        self.fda.fit(X, labels)
        projected = self.fda.transform(X)
        labels_arr = np.array(labels)
        self.templates_ = {}
        for label in sorted(set(labels)):
            own = projected[labels_arr == label]
            others = projected[labels_arr != label]
            mean = own.mean(axis=0)
            centered = own - mean
            cov = centered.T @ centered / own.shape[0]
            inv_cov = invert_covariance(cov, shrinkage=self.shrinkage)
            genuine = mahalanobis_distances(own, mean, inv_cov)
            imposter = mahalanobis_distances(others, mean, inv_cov)
            self.templates_[label] = {
                "mean": mean,
                "inv_cov": inv_cov,
                "threshold": _equal_error_threshold(genuine, imposter),
            }
        return self

    def authenticate(self, trace: VoltageTrace, claimed: str) -> bool:
        """True when the frame is consistent with the claimed sender."""
        if claimed not in self.templates_:
            return False
        template = self.templates_[claimed]
        projected = self.fda.transform(self.features(trace)[None, :])
        distance = mahalanobis_distances(
            projected, template["mean"], template["inv_cov"]
        )[0]
        return bool(distance <= template["threshold"])

    def predict_one(self, trace: VoltageTrace) -> str:
        """Nearest template (attribution mode, for the comparison bench)."""
        if not self.templates_:
            raise TrainingError("authenticator is not fitted")
        projected = self.fda.transform(self.features(trace)[None, :])
        best_label = None
        best_distance = np.inf
        for label, template in self.templates_.items():
            distance = mahalanobis_distances(
                projected, template["mean"], template["inv_cov"]
            )[0]
            if distance < best_distance:
                best_distance = distance
                best_label = label
        return best_label

    def predict(self, traces: list[VoltageTrace]) -> list[str]:
        return [self.predict_one(trace) for trace in traces]

    def score(self, traces: list[VoltageTrace], labels: list[str]) -> float:
        """Identification accuracy."""
        predictions = self.predict(traces)
        return float(np.mean([p == t for p, t in zip(predictions, labels)]))


def _equal_error_threshold(genuine: np.ndarray, imposter: np.ndarray) -> float:
    """Binary-search the distance threshold at the equal error rate.

    False rejections (genuine > t) fall and false acceptances
    (imposter <= t) rise monotonically with t; the EER is where the two
    rates cross — exactly the threshold SIMPLE stores per ECU.
    """
    if genuine.size == 0 or imposter.size == 0:
        raise TrainingError("need both genuine and imposter distances")
    lo = 0.0
    hi = float(max(genuine.max(), imposter.max()))
    for _ in range(60):
        mid = (lo + hi) / 2.0
        frr = float(np.mean(genuine > mid))
        far = float(np.mean(imposter <= mid))
        if frr > far:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
