"""Signal-feature extraction shared by the related-work baselines.

The competing voltage IDSs (Section 1.2.1) all start by slicing a
message into its physical regions — dominant plateaus, recessive
plateaus, rising and falling edges — and computing per-region statistics
(Scission bins bits into exactly these three groups; VoltageIDS computes
up to 20 features per section; SIMPLE averages samples of every steady
state).  This module provides that segmentation plus a standard
time-domain feature vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.acquisition.trace import VoltageTrace
from repro.errors import ExtractionError


@dataclass(frozen=True)
class MessageSegments:
    """Sample groups of one message, split at threshold crossings.

    Attributes
    ----------
    dominant:
        Samples of dominant plateaus (edges trimmed off).
    recessive:
        Samples of recessive plateaus between dominant pulses.
    rising / falling:
        Samples within +/- ``edge_halfwidth`` of each crossing.
    """

    dominant: np.ndarray
    recessive: np.ndarray
    rising: np.ndarray
    falling: np.ndarray


def segment_message(
    trace: VoltageTrace,
    threshold: float,
    *,
    edge_halfwidth: int = 3,
) -> MessageSegments:
    """Split a trace into dominant / recessive / edge sample groups."""
    samples = np.asarray(trace.counts, dtype=float)
    above = samples >= threshold
    crossings = np.nonzero(np.diff(above.astype(np.int8)) != 0)[0]
    rising_idx: list[int] = []
    falling_idx: list[int] = []
    for c in crossings:
        (rising_idx if above[c + 1] else falling_idx).append(c + 1)

    edge_mask = np.zeros(samples.size, dtype=bool)
    for c in crossings:
        lo = max(0, c + 1 - edge_halfwidth)
        hi = min(samples.size, c + 1 + edge_halfwidth)
        edge_mask[lo:hi] = True

    dominant = samples[above & ~edge_mask]
    recessive = samples[~above & ~edge_mask]
    rising = np.concatenate(
        [samples[max(0, i - edge_halfwidth) : i + edge_halfwidth] for i in rising_idx]
    ) if rising_idx else np.empty(0)
    falling = np.concatenate(
        [samples[max(0, i - edge_halfwidth) : i + edge_halfwidth] for i in falling_idx]
    ) if falling_idx else np.empty(0)
    if dominant.size == 0 or recessive.size == 0:
        raise ExtractionError("trace has no resolvable dominant/recessive plateaus")
    return MessageSegments(
        dominant=dominant, recessive=recessive, rising=rising, falling=falling
    )


#: Names of the per-segment statistics, in output order.
SEGMENT_FEATURE_NAMES = (
    "mean",
    "std",
    "max",
    "min",
    "ptp",
    "rms",
    "energy",
    "skew",
    "kurtosis",
)


def segment_features(samples: np.ndarray) -> np.ndarray:
    """The standard time-domain statistics of one sample group."""
    if samples.size == 0:
        return np.zeros(len(SEGMENT_FEATURE_NAMES))
    mean = samples.mean()
    std = samples.std()
    rms = float(np.sqrt(np.mean(samples**2)))
    energy = float(np.sum(samples**2) / samples.size)
    if std > 1e-12 and samples.size > 2:
        skew = float(scipy_stats.skew(samples))
        kurt = float(scipy_stats.kurtosis(samples))
    else:
        skew = 0.0
        kurt = 0.0
    return np.array(
        [
            mean,
            std,
            samples.max(),
            samples.min(),
            samples.max() - samples.min(),
            rms,
            energy,
            skew,
            kurt,
        ]
    )


def message_feature_vector(trace: VoltageTrace, threshold: float) -> np.ndarray:
    """Concatenated features of all four segments (Scission-style).

    Returns a 4 x 9 = 36-dimensional vector covering dominant plateaus,
    recessive plateaus, rising edges and falling edges.
    """
    segments = segment_message(trace, threshold)
    return np.concatenate(
        [
            segment_features(segments.dominant),
            segment_features(segments.recessive),
            segment_features(segments.rising),
            segment_features(segments.falling),
        ]
    )


def steady_state_averages(
    trace: VoltageTrace, threshold: float, samples_per_state: int = 8
) -> np.ndarray:
    """SIMPLE-style features: sample-wise averages of every steady state.

    Each dominant and recessive plateau is resampled to
    ``samples_per_state`` points; the per-position averages over all
    plateaus of each polarity are concatenated (2 x samples_per_state
    features, 16 by default — matching SIMPLE's real-vehicle setup).
    """
    samples = np.asarray(trace.counts, dtype=float)
    above = samples >= threshold
    boundaries = np.nonzero(np.diff(above.astype(np.int8)) != 0)[0] + 1
    segments = np.split(samples, boundaries)
    polarity = np.split(above, boundaries)
    dominant_rows = []
    recessive_rows = []
    for seg, pol in zip(segments, polarity):
        if seg.size < 2:
            continue
        trimmed = seg[1:-1] if seg.size > 3 else seg
        positions = np.linspace(0, trimmed.size - 1, samples_per_state)
        resampled = np.interp(positions, np.arange(trimmed.size), trimmed)
        (dominant_rows if pol[0] else recessive_rows).append(resampled)
    if not dominant_rows or not recessive_rows:
        raise ExtractionError("trace has too few plateaus for SIMPLE features")
    return np.concatenate(
        [np.mean(dominant_rows, axis=0), np.mean(recessive_rows, axis=0)]
    )
