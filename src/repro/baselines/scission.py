"""Scission-style fingerprinting (Kneib & Huth, Section 1.2.1).

Scission splits a sampled CAN frame into bits, bins the samples into
three groups (dominant plateaus, rising transitions, falling
transitions — plus we keep the recessive plateaus), computes time-domain
statistics per group, and trains logistic regression over the resulting
feature vector.  Its weakness relative to vProfile is the elaborate
per-message preprocessing; its strength is robustness, which the
comparison bench quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.baselines.features import message_feature_vector
from repro.baselines.logistic import LogisticRegression
from repro.errors import TrainingError


class ScissionIdentifier:
    """Per-segment features + multinomial logistic regression.

    Parameters
    ----------
    threshold:
        ADC-count level separating dominant from recessive samples.
    learning_rate / epochs / l2:
        Passed to the underlying logistic regression.
    """

    def __init__(
        self,
        threshold: float,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
    ):
        self.threshold = float(threshold)
        self.classifier = LogisticRegression(
            learning_rate=learning_rate, epochs=epochs, l2=l2
        )

    def features(self, trace: VoltageTrace) -> np.ndarray:
        """The 36-dimensional per-segment feature vector of one frame."""
        return message_feature_vector(trace, self.threshold)

    def fit(self, traces: list[VoltageTrace], labels: list[str]) -> "ScissionIdentifier":
        if len(traces) != len(labels) or not traces:
            raise TrainingError("traces and labels must be equal-length, non-empty")
        X = np.stack([self.features(trace) for trace in traces])
        self.classifier.fit(X, labels)
        return self

    def predict_one(self, trace: VoltageTrace) -> str:
        return self.classifier.predict(self.features(trace)[None, :])[0]

    def predict(self, traces: list[VoltageTrace]) -> list[str]:
        X = np.stack([self.features(trace) for trace in traces])
        return self.classifier.predict(X)

    def predict_proba(self, traces: list[VoltageTrace]) -> np.ndarray:
        X = np.stack([self.features(trace) for trace in traces])
        return self.classifier.predict_proba(X)

    def score(self, traces: list[VoltageTrace], labels: list[str]) -> float:
        """Identification accuracy."""
        predictions = self.predict(traces)
        return float(np.mean([p == t for p, t in zip(predictions, labels)]))
