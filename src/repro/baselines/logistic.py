"""Multinomial logistic regression, from scratch on numpy.

The substrate behind the Scission baseline (Kneib & Huth train logistic
regression on their per-bit features).  Softmax model with L2-penalised
cross-entropy, full-batch gradient descent with a simple adaptive step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


class LogisticRegression:
    """Softmax classifier with L2 regularisation.

    Parameters
    ----------
    learning_rate:
        Initial gradient step; halved whenever the loss fails to improve.
    epochs:
        Maximum full-batch iterations.
    l2:
        Ridge penalty on the weights (not the intercepts).
    tol:
        Stop when the loss improves by less than this.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
        tol: float = 1e-7,
    ):
        if learning_rate <= 0 or epochs < 1 or l2 < 0:
            raise TrainingError("invalid logistic-regression hyperparameters")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.tol = tol
        self.classes_: list = []
        self.weights_: np.ndarray | None = None  # (d + 1, k), last row = bias
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: list) -> "LogisticRegression":
        """Train on features ``X`` (n, d) with arbitrary hashable labels."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self.classes_ = sorted(set(y))
        if len(self.classes_) < 2:
            raise TrainingError("need at least two classes")
        index = {label: i for i, label in enumerate(self.classes_)}
        targets = np.zeros((X.shape[0], len(self.classes_)))
        for row, label in enumerate(y):
            targets[row, index[label]] = 1.0

        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._scale = np.where(scale > 1e-12, scale, 1.0)
        Xs = (X - self._mean) / self._scale
        Xb = np.hstack([Xs, np.ones((Xs.shape[0], 1))])

        n, d1 = Xb.shape
        k = len(self.classes_)
        weights = np.zeros((d1, k))
        lr = self.learning_rate
        previous_loss = np.inf
        for _ in range(self.epochs):
            probs = _softmax(Xb @ weights)
            loss = -np.mean(np.sum(targets * np.log(probs + 1e-12), axis=1))
            loss += 0.5 * self.l2 * np.sum(weights[:-1] ** 2)
            if previous_loss - loss < self.tol:
                if loss > previous_loss:
                    lr *= 0.5
                else:
                    break
            previous_loss = min(previous_loss, loss)
            grad = Xb.T @ (probs - targets) / n
            grad[:-1] += self.l2 * weights[:-1]
            weights -= lr * grad
        self.weights_ = weights
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities, shape (n, k)."""
        if self.weights_ is None:
            raise TrainingError("classifier is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Xs = (X - self._mean) / self._scale
        Xb = np.hstack([Xs, np.ones((Xs.shape[0], 1))])
        return _softmax(Xb @ self.weights_)

    def predict(self, X: np.ndarray) -> list:
        """Most likely class label for each row."""
        probs = self.predict_proba(X)
        return [self.classes_[i] for i in probs.argmax(axis=1)]

    def score(self, X: np.ndarray, y: list) -> float:
        """Mean accuracy on (X, y)."""
        predictions = self.predict(X)
        return float(np.mean([p == t for p, t in zip(predictions, y)]))


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
