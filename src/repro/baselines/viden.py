"""Viden-style voltage-profile attacker identification (Cho & Shin).

Viden (Section 1.2.1) builds per-ECU *voltage profiles* from tracking
points: the most frequent measured dominant voltages of non-ACK bits,
accumulated over many messages and adjusted over time.  It identifies
which ECU transmitted a (known-malicious) message by matching the
message's tracking points against the stored profiles.

We implement its essence faithfully at our abstraction level:

* tracking points = per-message dominant and recessive voltage modes,
  excluding the ACK slot (the last dominant pulse of a full frame);
* profiles = exponentially weighted running estimates per ECU, which is
  what lets Viden adapt to slow drift;
* identification = nearest profile in tracking-point space.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.errors import TrainingError


class VidenIdentifier:
    """Tracking-point voltage profiles with exponential updates.

    Parameters
    ----------
    threshold:
        ADC-count level separating dominant from recessive.
    update_weight:
        EWMA weight of each new message during profile accumulation.
    percentiles:
        The dominant-sample percentiles used as tracking points (the
        "most frequent" voltages: the distribution body, not the edges).
    """

    def __init__(
        self,
        threshold: float,
        update_weight: float = 0.05,
        percentiles: tuple[float, ...] = (25.0, 50.0, 75.0),
    ):
        if not 0 < update_weight <= 1:
            raise TrainingError("update_weight must be in (0, 1]")
        self.threshold = float(threshold)
        self.update_weight = update_weight
        self.percentiles = percentiles
        self.profiles_: dict[str, np.ndarray] = {}

    def tracking_points(self, trace: VoltageTrace) -> np.ndarray:
        """Per-message tracking points from non-ACK samples."""
        samples = np.asarray(trace.counts, dtype=float)
        above = samples >= self.threshold
        dominant = samples[above]
        recessive = samples[~above]
        if dominant.size == 0 or recessive.size == 0:
            raise TrainingError("trace lacks dominant or recessive samples")
        # Exclude the trailing dominant pulse (the ACK slot region) when
        # the capture covers the whole frame.
        boundaries = np.nonzero(np.diff(above.astype(np.int8)) != 0)[0]
        if boundaries.size >= 4:
            last_rise = boundaries[-2] + 1 if above[-1] else boundaries[-1]
            dominant = samples[:last_rise][above[:last_rise]]
            if dominant.size == 0:
                dominant = samples[above]
        points = [np.percentile(dominant, p) for p in self.percentiles]
        points.append(float(np.median(recessive)))
        return np.array(points)

    def fit(self, traces: list[VoltageTrace], labels: list[str]) -> "VidenIdentifier":
        """Accumulate per-ECU profiles message by message."""
        if len(traces) != len(labels) or not traces:
            raise TrainingError("traces and labels must be equal-length, non-empty")
        self.profiles_ = {}
        for trace, label in zip(traces, labels):
            points = self.tracking_points(trace)
            if label not in self.profiles_:
                self.profiles_[label] = points
            else:
                w = self.update_weight
                self.profiles_[label] = (1 - w) * self.profiles_[label] + w * points
        return self

    def update(self, trace: VoltageTrace, label: str) -> None:
        """Viden's continuous profile adjustment for a verified message."""
        if label not in self.profiles_:
            raise TrainingError(f"unknown ECU {label!r}")
        w = self.update_weight
        self.profiles_[label] = (1 - w) * self.profiles_[label] + w * self.tracking_points(trace)

    def predict_one(self, trace: VoltageTrace) -> str:
        """Attribute a message to the nearest stored profile."""
        if not self.profiles_:
            raise TrainingError("identifier is not fitted")
        points = self.tracking_points(trace)
        return min(
            self.profiles_,
            key=lambda label: float(np.linalg.norm(points - self.profiles_[label])),
        )

    def predict(self, traces: list[VoltageTrace]) -> list[str]:
        return [self.predict_one(trace) for trace in traces]

    def score(self, traces: list[VoltageTrace], labels: list[str]) -> float:
        """Attribution accuracy (Viden's job is naming the attacker)."""
        predictions = self.predict(traces)
        return float(np.mean([p == t for p, t in zip(predictions, labels)]))
