"""Linear support vector machines, from scratch on numpy.

The substrate behind the VoltageIDS baseline (Choi et al. found Linear
SVMs "performed more favorably" than bagged decision trees for CAN
voltage fingerprints).  Implements the primal L2-regularised hinge-loss
problem with averaged stochastic subgradient descent (Pegasos-style),
and one-vs-rest multiclass on top.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


class LinearSvm:
    """Binary linear SVM (labels +1 / -1) trained with Pegasos SGD.

    Parameters
    ----------
    regularisation:
        The lambda of the Pegasos objective; smaller fits harder.
    epochs:
        Passes over the data.
    seed:
        Shuffling seed (training is deterministic given the seed).
    """

    def __init__(self, regularisation: float = 1e-3, epochs: int = 30, seed: int = 0):
        if regularisation <= 0 or epochs < 1:
            raise TrainingError("invalid SVM hyperparameters")
        self.regularisation = regularisation
        self.epochs = epochs
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSvm":
        """Train on features ``X`` (n, d) and labels ``y`` in {-1, +1}."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise TrainingError("labels must be -1/+1")
        if X.shape[0] != y.shape[0]:
            raise TrainingError("X and y disagree in length")
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(d)
        bias = 0.0
        averaged_w = np.zeros(d)
        averaged_b = 0.0
        averaged_steps = 0
        step = 0
        lam = self.regularisation
        total_steps = self.epochs * n
        burn_in = total_steps // 5
        radius = 1.0 / np.sqrt(lam)  # Pegasos optimum lies in this ball
        for _ in range(self.epochs):
            for index in rng.permutation(n):
                step += 1
                eta = 1.0 / (lam * step)
                margin = y[index] * (X[index] @ weights + bias)
                weights *= 1.0 - eta * lam
                if margin < 1.0:
                    weights += eta * y[index] * X[index]
                    bias += eta * y[index]
                # Projection step keeps the early huge learning rates
                # from blowing the iterate (and the average) up.
                norm = np.linalg.norm(weights)
                if norm > radius:
                    weights *= radius / norm
                    bias *= radius / norm
                if step > burn_in:
                    averaged_w += weights
                    averaged_b += bias
                    averaged_steps += 1
        self.weights_ = averaged_w / max(averaged_steps, 1)
        self.bias_ = averaged_b / max(averaged_steps, 1)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margins, shape (n,)."""
        if self.weights_ is None:
            raise TrainingError("SVM is not fitted")
        return np.atleast_2d(np.asarray(X, dtype=float)) @ self.weights_ + self.bias_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels in {-1, +1}."""
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)


class OneVsRestSvm:
    """Multiclass wrapper: one binary SVM per class, argmax of margins.

    Features are standardised internally (SGD on raw ADC counts would
    need per-feature learning rates otherwise).
    """

    def __init__(self, regularisation: float = 1e-3, epochs: int = 30, seed: int = 0):
        self.regularisation = regularisation
        self.epochs = epochs
        self.seed = seed
        self.classes_: list = []
        self._machines: list[LinearSvm] = []
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: list) -> "OneVsRestSvm":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self.classes_ = sorted(set(y))
        if len(self.classes_) < 2:
            raise TrainingError("need at least two classes")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._scale = np.where(scale > 1e-12, scale, 1.0)
        Xs = (X - self._mean) / self._scale
        labels = np.array(y)
        self._machines = []
        for offset, cls in enumerate(self.classes_):
            targets = np.where(labels == cls, 1.0, -1.0)
            machine = LinearSvm(
                regularisation=self.regularisation,
                epochs=self.epochs,
                seed=self.seed + offset,
            )
            self._machines.append(machine.fit(Xs, targets))
        return self

    def decision_matrix(self, X: np.ndarray) -> np.ndarray:
        """Per-class margins, shape (n, k)."""
        if not self._machines:
            raise TrainingError("classifier is not fitted")
        Xs = (np.atleast_2d(np.asarray(X, dtype=float)) - self._mean) / self._scale
        return np.column_stack([m.decision_function(Xs) for m in self._machines])

    def predict(self, X: np.ndarray) -> list:
        """Most-confident class per row."""
        margins = self.decision_matrix(X)
        return [self.classes_[i] for i in margins.argmax(axis=1)]

    def score(self, X: np.ndarray, y: list) -> float:
        """Mean accuracy."""
        predictions = self.predict(X)
        return float(np.mean([p == t for p, t in zip(predictions, y)]))
