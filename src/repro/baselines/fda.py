"""Multi-class Fisher Discriminant Analysis (FDA), numpy/scipy only.

The dimensionality-reduction substrate of the SIMPLE baseline
(Foruhandeh et al. reduce their 16 steady-state features with FDA before
thresholding Mahalanobis distances).  Projects onto the directions that
maximise between-class over within-class scatter.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.errors import TrainingError


class FisherDiscriminant:
    """Fisher discriminant projection to at most ``n_classes - 1`` dims.

    Parameters
    ----------
    n_components:
        Output dimensionality; clipped to ``n_classes - 1``.
    regularisation:
        Ridge added to the within-class scatter so that near-singular
        feature sets (constant features, small classes) stay solvable.
    """

    def __init__(self, n_components: int | None = None, regularisation: float = 1e-6):
        if regularisation < 0:
            raise TrainingError("regularisation must be non-negative")
        self.n_components = n_components
        self.regularisation = regularisation
        self.classes_: list = []
        self.projection_: np.ndarray | None = None  # (d, c)
        self.class_means_: np.ndarray | None = None  # (k, c), projected

    def fit(self, X: np.ndarray, y: list) -> "FisherDiscriminant":
        """Fit the projection from features ``X`` (n, d) and labels ``y``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self.classes_ = sorted(set(y))
        if len(self.classes_) < 2:
            raise TrainingError("FDA needs at least two classes")
        labels = np.array([self.classes_.index(label) for label in y])
        n, d = X.shape
        overall_mean = X.mean(axis=0)
        s_within = np.zeros((d, d))
        s_between = np.zeros((d, d))
        for k in range(len(self.classes_)):
            rows = X[labels == k]
            if rows.shape[0] < 2:
                raise TrainingError(
                    f"class {self.classes_[k]!r} has fewer than 2 samples"
                )
            mean_k = rows.mean(axis=0)
            centered = rows - mean_k
            s_within += centered.T @ centered
            diff = (mean_k - overall_mean)[:, None]
            s_between += rows.shape[0] * (diff @ diff.T)
        s_within += self.regularisation * np.trace(s_within) / d * np.eye(d)

        eigvals, eigvecs = linalg.eigh(s_between, s_within)
        order = np.argsort(eigvals)[::-1]
        max_components = len(self.classes_) - 1
        c = max_components if self.n_components is None else min(
            self.n_components, max_components
        )
        self.projection_ = eigvecs[:, order[:c]]
        projected = X @ self.projection_
        self.class_means_ = np.stack(
            [projected[labels == k].mean(axis=0) for k in range(len(self.classes_))]
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project features into the discriminant subspace."""
        if self.projection_ is None:
            raise TrainingError("FDA is not fitted")
        return np.atleast_2d(np.asarray(X, dtype=float)) @ self.projection_

    def predict(self, X: np.ndarray) -> list:
        """Nearest projected class mean."""
        projected = self.transform(X)
        distances = np.linalg.norm(
            projected[:, None, :] - self.class_means_[None, :, :], axis=2
        )
        return [self.classes_[i] for i in distances.argmin(axis=1)]
