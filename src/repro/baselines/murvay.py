"""Murvay & Groza's signal-characteristic sender identification.

The earliest CAN voltage-fingerprinting work (Section 1.2.1): low-pass
filter the raw frame voltage, store a per-ECU reference waveform, and
match incoming frames with one of three techniques — mean square error,
convolution, or mean value.  The paper reports its weaknesses (high
sampling-rate requirements, 3.1 % false positives / 6.0 % false
negatives), which makes it the natural weak baseline for comparison
benches.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import butter, filtfilt

from repro.acquisition.trace import VoltageTrace
from repro.errors import TrainingError


class MurvayGrozaIdentifier:
    """Reference-waveform matcher over the filtered frame prefix.

    Parameters
    ----------
    method:
        ``"mse"``, ``"convolution"`` or ``"mean-value"``.
    prefix_samples:
        How much of each frame (from its first sample) to fingerprint.
    cutoff_fraction:
        Low-pass cutoff as a fraction of Nyquist (their noise filter).
    """

    METHODS = ("mse", "convolution", "mean-value")

    def __init__(
        self,
        method: str = "mse",
        prefix_samples: int = 1024,
        cutoff_fraction: float = 0.2,
    ):
        if method not in self.METHODS:
            raise TrainingError(f"method must be one of {self.METHODS}")
        if prefix_samples < 16:
            raise TrainingError("prefix must be at least 16 samples")
        if not 0.0 < cutoff_fraction < 1.0:
            raise TrainingError("cutoff_fraction must be in (0, 1)")
        self.method = method
        self.prefix_samples = prefix_samples
        self.cutoff_fraction = cutoff_fraction
        self.references_: dict[str, np.ndarray] = {}
        self.reference_means_: dict[str, float] = {}

    def _preprocess(self, trace: VoltageTrace) -> np.ndarray:
        samples = np.asarray(trace.counts, dtype=float)[: self.prefix_samples]
        if samples.size < 16:
            raise TrainingError("trace shorter than the fingerprint prefix")
        b, a = butter(2, self.cutoff_fraction)
        return filtfilt(b, a, samples)

    def fit(self, traces: list[VoltageTrace], labels: list[str]) -> "MurvayGrozaIdentifier":
        """Average each ECU's filtered waveforms into a reference."""
        if len(traces) != len(labels) or not traces:
            raise TrainingError("traces and labels must be equal-length, non-empty")
        grouped: dict[str, list[np.ndarray]] = {}
        for trace, label in zip(traces, labels):
            grouped.setdefault(label, []).append(self._preprocess(trace))
        self.references_ = {}
        self.reference_means_ = {}
        for label, rows in grouped.items():
            length = min(r.size for r in rows)
            reference = np.mean([r[:length] for r in rows], axis=0)
            self.references_[label] = reference
            self.reference_means_[label] = float(reference.mean())
        return self

    def predict_one(self, trace: VoltageTrace) -> str:
        """Identify the sender of one frame."""
        if not self.references_:
            raise TrainingError("identifier is not fitted")
        signal = self._preprocess(trace)
        if self.method == "mse":
            return min(
                self.references_,
                key=lambda label: _mse(signal, self.references_[label]),
            )
        if self.method == "convolution":
            # Highest normalised correlation peak wins.
            return max(
                self.references_,
                key=lambda label: _correlation_peak(signal, self.references_[label]),
            )
        mean = float(signal.mean())
        return min(
            self.reference_means_,
            key=lambda label: abs(mean - self.reference_means_[label]),
        )

    def predict(self, traces: list[VoltageTrace]) -> list[str]:
        return [self.predict_one(trace) for trace in traces]

    def score(self, traces: list[VoltageTrace], labels: list[str]) -> float:
        """Identification accuracy."""
        predictions = self.predict(traces)
        return float(np.mean([p == t for p, t in zip(predictions, labels)]))


def _mse(signal: np.ndarray, reference: np.ndarray) -> float:
    length = min(signal.size, reference.size)
    diff = signal[:length] - reference[:length]
    return float(np.mean(diff**2))


def _correlation_peak(signal: np.ndarray, reference: np.ndarray) -> float:
    length = min(signal.size, reference.size)
    a = signal[:length] - signal[:length].mean()
    b = reference[:length] - reference[:length].mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.correlate(a, b, mode="valid")[0] / denom)
