"""VoltageIDS-style fingerprinting (Choi, Joo, Jo, Park, Lee).

VoltageIDS (Section 1.2.1) computes the sample-wise means of three
message sections — dominant-bit steady states, rising edges and falling
edges — derives up to 20 statistical features per section (up to 60
total), and trains a Linear SVM (which its authors found better than
bagged decision trees).  Detection re-extracts the same features from
each incoming frame.

We implement the same structure: per-section resampled mean waveforms,
a rich per-section statistic vector, and a from-scratch one-vs-rest
linear SVM (:mod:`repro.baselines.svm`).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.acquisition.trace import VoltageTrace
from repro.baselines.features import segment_message
from repro.baselines.svm import OneVsRestSvm
from repro.errors import TrainingError

#: Statistics computed per section (the paper caps at 20; we use 17
#: robust time-domain ones per section -> 51 total features).
SECTION_STATISTIC_NAMES = (
    "mean",
    "std",
    "variance",
    "max",
    "min",
    "ptp",
    "rms",
    "energy",
    "skew",
    "kurtosis",
    "median",
    "q25",
    "q75",
    "iqr",
    "mean_abs_dev",
    "crest",
    "shape",
)


def section_statistics(samples: np.ndarray) -> np.ndarray:
    """The 17 time-domain statistics of one section."""
    if samples.size == 0:
        return np.zeros(len(SECTION_STATISTIC_NAMES))
    mean = float(samples.mean())
    std = float(samples.std())
    rms = float(np.sqrt(np.mean(samples**2)))
    q25, median, q75 = np.percentile(samples, [25, 50, 75])
    mad = float(np.mean(np.abs(samples - mean)))
    crest = float(samples.max() / rms) if rms > 1e-12 else 0.0
    shape = float(rms / mad) if mad > 1e-12 else 0.0
    if std > 1e-12 and samples.size > 2:
        skew = float(scipy_stats.skew(samples))
        kurt = float(scipy_stats.kurtosis(samples))
    else:
        skew, kurt = 0.0, 0.0
    return np.array(
        [
            mean,
            std,
            std**2,
            samples.max(),
            samples.min(),
            samples.max() - samples.min(),
            rms,
            float(np.sum(samples**2) / samples.size),
            skew,
            kurt,
            median,
            q25,
            q75,
            q75 - q25,
            mad,
            crest,
            shape,
        ]
    )


class VoltageIdsIdentifier:
    """Per-section statistics + linear SVM, VoltageIDS-style.

    Parameters
    ----------
    threshold:
        ADC-count dominant/recessive split level.
    regularisation / epochs:
        Passed to the underlying one-vs-rest SVM.
    """

    def __init__(
        self,
        threshold: float,
        regularisation: float = 1e-3,
        epochs: int = 20,
        seed: int = 0,
    ):
        self.threshold = float(threshold)
        self.classifier = OneVsRestSvm(
            regularisation=regularisation, epochs=epochs, seed=seed
        )

    def features(self, trace: VoltageTrace) -> np.ndarray:
        """The 3 x 17 = 51 section statistics of one frame.

        Sections follow the paper: dominant steady states, rising edges
        and falling edges.
        """
        segments = segment_message(trace, self.threshold)
        return np.concatenate(
            [
                section_statistics(segments.dominant),
                section_statistics(segments.rising),
                section_statistics(segments.falling),
            ]
        )

    def fit(self, traces: list[VoltageTrace], labels: list[str]) -> "VoltageIdsIdentifier":
        if len(traces) != len(labels) or not traces:
            raise TrainingError("traces and labels must be equal-length, non-empty")
        X = np.stack([self.features(trace) for trace in traces])
        self.classifier.fit(X, labels)
        return self

    def predict_one(self, trace: VoltageTrace) -> str:
        return self.classifier.predict(self.features(trace)[None, :])[0]

    def predict(self, traces: list[VoltageTrace]) -> list[str]:
        X = np.stack([self.features(trace) for trace in traces])
        return self.classifier.predict(X)

    def score(self, traces: list[VoltageTrace], labels: list[str]) -> float:
        """Identification accuracy."""
        predictions = self.predict(traces)
        return float(np.mean([p == t for p, t in zip(predictions, labels)]))
