"""Related-work baselines reimplemented for comparison (Section 1.2.1)."""

from repro.baselines.fda import FisherDiscriminant
from repro.baselines.features import (
    SEGMENT_FEATURE_NAMES,
    MessageSegments,
    message_feature_vector,
    segment_features,
    segment_message,
    steady_state_averages,
)
from repro.baselines.logistic import LogisticRegression
from repro.baselines.murvay import MurvayGrozaIdentifier
from repro.baselines.scission import ScissionIdentifier
from repro.baselines.simple_ids import SimpleAuthenticator
from repro.baselines.svm import LinearSvm, OneVsRestSvm
from repro.baselines.viden import VidenIdentifier
from repro.baselines.voltageids import VoltageIdsIdentifier

__all__ = [
    "LinearSvm",
    "OneVsRestSvm",
    "VoltageIdsIdentifier",
    "FisherDiscriminant",
    "SEGMENT_FEATURE_NAMES",
    "MessageSegments",
    "message_feature_vector",
    "segment_features",
    "segment_message",
    "steady_state_averages",
    "LogisticRegression",
    "MurvayGrozaIdentifier",
    "ScissionIdentifier",
    "SimpleAuthenticator",
    "VidenIdentifier",
]
