"""Per-source-address profile-health monitor.

Algorithm 4 lets cluster profiles track benign drift, which is exactly
the surface a slow-poisoning adversary exploits (Sagong et al.): each
accepted update is individually plausible, but the profile walks away
from its trained position.  This module watches that walk.

At attach time the monitor **pins a baseline**: a frozen copy of every
cluster's mean and inverse covariance.  From then on it tracks, per
source address:

* **drift distance** — Mahalanobis distance of the *live* cluster mean
  from the pinned baseline mean, under the baseline inverse covariance
  (so the yardstick itself cannot be poisoned);
* **update-acceptance rate** — fraction of recent Algorithm-4 update
  attempts that were folded into the profile;
* **alert rate** — fraction of recent verdicts that were anomalous.

Each assessment maps to ``healthy`` / ``drifting`` / ``suspect`` with
hysteresis: a state change requires ``hysteresis`` consecutive raw
assessments agreeing, so a single borderline sample cannot flap the
verdict.  Verdicts are exported as ``vprofile_profile_health`` gauges
(0 = healthy, 1 = drifting, 2 = suspect) plus the underlying drift /
rate gauges.

The monitor duck-types the model (anything with ``cluster_of_sa`` and
``clusters`` carrying ``name`` / ``mean`` / ``inv_covariance``) and
computes Mahalanobis distance inline — ``repro.obs`` must stay
import-cycle free from ``repro.core``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime import
    from repro.core.model import VProfileModel

HEALTHY = "healthy"
DRIFTING = "drifting"
SUSPECT = "suspect"

_STATE_CODES = {HEALTHY: 0, DRIFTING: 1, SUSPECT: 2}

HEALTH_METRIC = "vprofile_profile_health"
DRIFT_METRIC = "vprofile_profile_drift_distance"
ACCEPT_RATE_METRIC = "vprofile_profile_update_accept_ratio"
ALERT_RATE_METRIC = "vprofile_profile_alert_ratio"


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and hysteresis for profile-health assessment.

    ``drift_warn``/``drift_alarm`` are Mahalanobis distances of the live
    cluster mean from its pinned baseline; the defaults assume the
    whitened scale the paper's profiles live on (a healthy mean stays
    well under one baseline standard deviation).
    """

    drift_warn: float = 1.0
    drift_alarm: float = 3.0
    alert_rate_warn: float = 0.1
    alert_rate_alarm: float = 0.5
    accept_rate_floor: float = 0.2
    window: int = 256
    hysteresis: int = 3

    def __post_init__(self) -> None:
        if self.drift_warn <= 0 or self.drift_alarm <= self.drift_warn:
            raise ObservabilityError(
                "need 0 < drift_warn < drift_alarm, got "
                f"{self.drift_warn} / {self.drift_alarm}"
            )
        if self.window < 1:
            raise ObservabilityError(f"window must be >= 1, got {self.window}")
        if self.hysteresis < 1:
            raise ObservabilityError(
                f"hysteresis must be >= 1, got {self.hysteresis}"
            )


@dataclass(frozen=True)
class HealthAssessment:
    """One source address's health at one instant."""

    source_address: int
    cluster: str | None
    state: str
    drift_distance: float
    update_accept_ratio: float
    alert_ratio: float
    verdicts_seen: int
    updates_seen: int

    @property
    def code(self) -> int:
        """Numeric state for gauge export (0/1/2)."""
        return _STATE_CODES[self.state]


class _SourceWindow:
    """Bounded recent-history window for one source address."""

    __slots__ = ("verdicts", "updates", "state", "candidate", "streak")

    def __init__(self, window: int):
        self.verdicts: deque[bool] = deque(maxlen=window)  # True == anomaly
        self.updates: deque[bool] = deque(maxlen=window)  # True == accepted
        self.state = HEALTHY
        self.candidate = HEALTHY
        self.streak = 0


class ProfileHealthMonitor:
    """Watches live cluster profiles against a pinned baseline.

    Thread-safe: ``record_verdict`` / ``record_update`` are called from
    worker threads in the streaming runtime; one lock guards all
    mutable state.
    """

    def __init__(self, model: "VProfileModel", config: HealthConfig | None = None):
        self.config = config or HealthConfig()
        self._model = model
        # Pin the baseline: frozen copies, so later Algorithm-4 updates
        # to the live model cannot move the yardstick.
        self._baseline_mean: dict[str, np.ndarray] = {}
        self._baseline_inv_cov: dict[str, np.ndarray] = {}
        for cluster in model.clusters:
            self._baseline_mean[cluster.name] = np.array(
                cluster.mean, dtype=np.float64, copy=True
            )
            self._baseline_inv_cov[cluster.name] = np.array(
                cluster.inv_covariance, dtype=np.float64, copy=True
            )
        self._windows: dict[int, _SourceWindow] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording (hot path, called from worker threads)
    # ------------------------------------------------------------------
    def record_verdict(self, source_address: int, is_anomaly: bool) -> None:
        with self._lock:
            self._window(source_address).verdicts.append(bool(is_anomaly))

    def record_update(self, source_address: int, accepted: bool) -> None:
        with self._lock:
            self._window(source_address).updates.append(bool(accepted))

    def _window(self, source_address: int) -> _SourceWindow:
        window = self._windows.get(source_address)
        if window is None:
            window = _SourceWindow(self.config.window)
            self._windows[source_address] = window
        return window

    # ------------------------------------------------------------------
    # Assessment
    # ------------------------------------------------------------------
    def drift_distance(self, source_address: int) -> float:
        """Mahalanobis distance of the live mean from the pinned baseline."""
        cluster = self._cluster_for(source_address)
        if cluster is None:
            return float("nan")
        baseline_mean = self._baseline_mean[cluster.name]
        inv_cov = self._baseline_inv_cov[cluster.name]
        delta = np.asarray(cluster.mean, dtype=np.float64) - baseline_mean
        return float(np.sqrt(delta @ inv_cov @ delta))

    def _cluster_for(self, source_address: int):
        idx = self._model.cluster_of_sa(source_address)
        if idx is None:
            return None
        return self._model.clusters[idx]

    def assess(self, source_address: int) -> HealthAssessment:
        """Assess one SA and advance its hysteresis state machine."""
        cluster = self._cluster_for(source_address)
        drift = self.drift_distance(source_address)
        with self._lock:
            window = self._window(source_address)
            n_verdicts = len(window.verdicts)
            n_updates = len(window.updates)
            alert_ratio = (
                sum(window.verdicts) / n_verdicts if n_verdicts else 0.0
            )
            accept_ratio = (
                sum(window.updates) / n_updates if n_updates else 1.0
            )
            raw = self._raw_state(drift, alert_ratio, accept_ratio, n_updates)
            state = self._advance(window, raw)
        return HealthAssessment(
            source_address=source_address,
            cluster=cluster.name if cluster is not None else None,
            state=state,
            drift_distance=drift,
            update_accept_ratio=accept_ratio,
            alert_ratio=alert_ratio,
            verdicts_seen=n_verdicts,
            updates_seen=n_updates,
        )

    def _raw_state(
        self,
        drift: float,
        alert_ratio: float,
        accept_ratio: float,
        n_updates: int,
    ) -> str:
        cfg = self.config
        if not np.isnan(drift) and drift >= cfg.drift_alarm:
            return SUSPECT
        if alert_ratio >= cfg.alert_rate_alarm:
            return SUSPECT
        if not np.isnan(drift) and drift >= cfg.drift_warn:
            return DRIFTING
        if alert_ratio >= cfg.alert_rate_warn:
            return DRIFTING
        if n_updates > 0 and accept_ratio < cfg.accept_rate_floor:
            # The updater keeps refusing this SA's samples: the live
            # traffic no longer matches the profile it maps to.
            return DRIFTING
        return HEALTHY

    def _advance(self, window: _SourceWindow, raw: str) -> str:
        """Hysteresis: require ``hysteresis`` consecutive agreements."""
        if raw == window.state:
            window.candidate = raw
            window.streak = 0
            return window.state
        if raw == window.candidate:
            window.streak += 1
        else:
            window.candidate = raw
            window.streak = 1
        if window.streak >= self.config.hysteresis:
            window.state = raw
            window.streak = 0
        return window.state

    def assess_all(self) -> dict[int, HealthAssessment]:
        """Assess every source address seen so far, sorted by SA."""
        with self._lock:
            addresses = sorted(self._windows)
        return {sa: self.assess(sa) for sa in addresses}

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def verdicts(self) -> dict:
        """JSON-serialisable per-SA health report (the ``/health`` body)."""
        assessments = self.assess_all()
        states = [a.state for a in assessments.values()]
        overall = HEALTHY
        if SUSPECT in states:
            overall = SUSPECT
        elif DRIFTING in states:
            overall = DRIFTING
        return {
            "overall": overall,
            "sources": {
                f"0x{sa:02X}": {
                    "cluster": a.cluster,
                    "state": a.state,
                    "drift_distance": None
                    if np.isnan(a.drift_distance)
                    else a.drift_distance,
                    "update_accept_ratio": a.update_accept_ratio,
                    "alert_ratio": a.alert_ratio,
                    "verdicts_seen": a.verdicts_seen,
                    "updates_seen": a.updates_seen,
                }
                for sa, a in assessments.items()
            },
        }

    def export(self, registry: MetricsRegistry | None = None) -> None:
        """Publish per-SA health gauges into the metrics registry."""
        registry = registry if registry is not None else get_registry()
        for sa, a in self.assess_all().items():
            labels: Mapping[str, str] = {"sa": f"0x{sa:02X}"}
            registry.gauge(
                HEALTH_METRIC,
                "Profile health state (0=healthy 1=drifting 2=suspect).",
                **labels,
            ).set(float(a.code))
            if not np.isnan(a.drift_distance):
                registry.gauge(
                    DRIFT_METRIC,
                    "Mahalanobis drift of live cluster mean from pinned baseline.",
                    **labels,
                ).set(a.drift_distance)
            registry.gauge(
                ACCEPT_RATE_METRIC,
                "Fraction of recent Algorithm-4 updates accepted.",
                **labels,
            ).set(a.update_accept_ratio)
            registry.gauge(
                ALERT_RATE_METRIC,
                "Fraction of recent verdicts that were anomalous.",
                **labels,
            ).set(a.alert_ratio)


__all__ = [
    "ACCEPT_RATE_METRIC",
    "ALERT_RATE_METRIC",
    "DRIFTING",
    "DRIFT_METRIC",
    "HEALTHY",
    "HEALTH_METRIC",
    "HealthAssessment",
    "HealthConfig",
    "ProfileHealthMonitor",
    "SUSPECT",
]
