"""Stdlib HTTP endpoint for live telemetry.

A tiny :class:`ThreadingHTTPServer` wrapper exposing three read-only
routes:

* ``/metrics`` — Prometheus text exposition (the existing
  :func:`repro.obs.export.to_prometheus` output);
* ``/health`` — JSON per-source-address profile-health verdicts from a
  :class:`~repro.obs.health.ProfileHealthMonitor`;
* ``/timeseries`` — windowed JSON from a
  :class:`~repro.obs.timeseries.TimeSeriesStore` (``?last=N`` trims to
  the most recent N points).

Started by ``repro stream --serve HOST:PORT`` (port 0 binds an
ephemeral port — the chosen one is in :attr:`MetricsServer.port`, which
integration tests rely on).  Requests are served from daemon threads
and only ever *read* telemetry state, so the hot path never blocks on a
scrape.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlparse

from repro.errors import ObservabilityError
from repro.obs.events import get_event_log
from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.health import ProfileHealthMonitor
    from repro.obs.timeseries import TimeSeriesStore

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class MetricsServer:
    """Serve ``/metrics``, ``/health`` and ``/timeseries`` over HTTP.

    Parameters
    ----------
    registry:
        Registry backing ``/metrics``; defaults to the active registry
        at scrape time (so it follows ``set_registry`` swaps).
    health / timeseries:
        Optional sources for the other two routes; without them the
        routes answer 503 so scrapers can tell "not wired" from 404.
    host / port:
        Bind address.  ``port=0`` asks the OS for an ephemeral port.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        health: "ProfileHealthMonitor | None" = None,
        timeseries: "TimeSeriesStore | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.health = health
        self.timeseries = timeseries
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                server._handle(self)

            def log_message(self, format: str, *args) -> None:
                get_event_log().debug(
                    "obs.server.request", detail=format % args
                )

        try:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise ObservabilityError(
                f"cannot bind metrics server to {host}:{port}: {exc}"
            ) from exc
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise ObservabilityError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="vprofile-metrics-server",
            daemon=True,
        )
        self._thread.start()
        get_event_log().info("obs.server.started", url=self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._thread = None
        get_event_log().info("obs.server.stopped", url=self.url)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                registry = (
                    self.registry if self.registry is not None else get_registry()
                )
                body = to_prometheus(registry).encode("utf-8")
                self._respond(request, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif route == "/health":
                if self.health is None:
                    self._respond_json(
                        request, 503, {"error": "no health monitor attached"}
                    )
                else:
                    self._respond_json(request, 200, self.health.verdicts())
            elif route == "/timeseries":
                if self.timeseries is None:
                    self._respond_json(
                        request, 503, {"error": "no time-series store attached"}
                    )
                else:
                    try:
                        last = _int_param(parse_qs(parsed.query), "last")
                    except ObservabilityError as exc:
                        self._respond_json(request, 400, {"error": str(exc)})
                        return
                    self._respond_json(
                        request, 200, self.timeseries.to_payload(last=last)
                    )
            else:
                self._respond_json(
                    request,
                    404,
                    {
                        "error": f"unknown route {route!r}",
                        "routes": ["/metrics", "/health", "/timeseries"],
                    },
                )
        except Exception as exc:  # scrape failures must not kill the thread
            get_event_log().error("obs.server.error", route=route, error=repr(exc))
            try:
                self._respond_json(request, 500, {"error": repr(exc)})
            except Exception:  # client went away mid-response
                pass

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    @classmethod
    def _respond_json(
        cls, request: BaseHTTPRequestHandler, status: int, payload: dict
    ) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        cls._respond(request, status, JSON_CONTENT_TYPE, body)


def _int_param(query: dict[str, list[str]], name: str) -> int | None:
    """Parse an optional integer query parameter.

    A present-but-non-integer value is a client error (answered 400),
    not silently the same as omitting the parameter.
    """
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise ObservabilityError(
            f"query parameter {name!r} must be an integer, got {values[0]!r}"
        ) from None


def parse_host_port(spec: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI argument (``:PORT`` means localhost)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        raise ObservabilityError(
            f"expected HOST:PORT, got {spec!r} (use e.g. 127.0.0.1:9090)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ObservabilityError(f"invalid port in {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ObservabilityError(f"port out of range in {spec!r}")
    return host or "127.0.0.1", port


__all__ = [
    "JSON_CONTENT_TYPE",
    "MetricsServer",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_host_port",
]
