"""Bounded time-series store: longitudinal snapshots of the registry.

The metrics registry answers "what is the value *now*"; this module
answers "how did it get there".  A :class:`TimeSeriesStore` periodically
snapshots an attached :class:`~repro.obs.registry.MetricsRegistry` —
counter and gauge values plus histogram count/sum and the P² quantile
estimates — into fixed-memory ring windows:

* a **fine** ring of raw snapshots (one point per sampling interval);
* a **coarse** ring of downsampled aggregates: every ``downsample``
  fine points collapse into one point carrying min/max/mean/last per
  series, so the store covers ``capacity * downsample`` intervals of
  history at reduced resolution without growing.

Memory is provably bounded: both rings are ``deque(maxlen=capacity)``
and each point is a flat ``{series_key: value}`` dict over the
registry's current instruments.

All clock reads go through :mod:`repro.obs.clock` (the VPL103 funnel);
``sample(now=...)`` accepts an explicit timestamp so tests and replay
tooling can drive the store deterministically.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import ObservabilityError
from repro.obs.clock import monotonic, wall_clock
from repro.obs.registry import Histogram, MetricsRegistry, get_registry


def series_key(name: str, labels: Mapping[str, str], suffix: str = "") -> str:
    """Canonical flat key for one instrument (plus an optional facet).

    ``vprofile_stage_seconds{stage="extract"}:p99`` — stable across
    snapshots, so consecutive points of one series line up by key.
    """
    label_text = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    base = f"{name}{{{label_text}}}" if label_text else name
    return f"{base}:{suffix}" if suffix else base


@dataclass(frozen=True)
class TimePoint:
    """One snapshot of every registry instrument at one instant.

    Attributes
    ----------
    ts:
        Wall-clock epoch seconds of the snapshot.
    values:
        Flat ``series_key -> value`` mapping; histogram series fan out
        into ``:count`` / ``:sum`` / ``:p50`` (etc.) facets.
    """

    ts: float
    values: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class AggregatePoint:
    """``downsample`` fine points collapsed into one coarse point.

    ``ts`` spans ``[ts_first, ts_last]``; per-series statistics keep the
    envelope (min/max), the central tendency (mean) and the most recent
    value (last) so monotonic counters stay readable after aggregation.
    """

    ts_first: float
    ts_last: float
    n: int
    minimum: dict[str, float] = field(default_factory=dict)
    maximum: dict[str, float] = field(default_factory=dict)
    mean: dict[str, float] = field(default_factory=dict)
    last: dict[str, float] = field(default_factory=dict)


class TimeSeriesStore:
    """Fixed-memory longitudinal view over a metrics registry.

    Parameters
    ----------
    registry:
        Registry to snapshot; defaults to the active one at each sample
        (so the store follows ``set_registry`` swaps).
    capacity:
        Ring size of both the fine and the coarse window.
    interval_s:
        Minimum seconds between :meth:`maybe_sample` snapshots.
    downsample:
        Fine points folded into one coarse aggregate (>= 1).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        capacity: int = 512,
        interval_s: float = 1.0,
        downsample: int = 8,
    ):
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        if interval_s < 0:
            raise ObservabilityError(f"interval must be >= 0, got {interval_s}")
        if downsample < 1:
            raise ObservabilityError(f"downsample must be >= 1, got {downsample}")
        self._registry = registry
        self.capacity = int(capacity)
        self.interval_s = float(interval_s)
        self.downsample = int(downsample)
        self._fine: deque[TimePoint] = deque(maxlen=self.capacity)
        self._coarse: deque[AggregatePoint] = deque(maxlen=self.capacity)
        self._pending: list[TimePoint] = []
        self._last_sample_mono: float | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _snapshot_values(self, registry: MetricsRegistry) -> dict[str, float]:
        values: dict[str, float] = {}
        for family in registry.families():
            for key, child in sorted(family.children.items()):
                labels = dict(key)
                if isinstance(child, Histogram):
                    values[series_key(family.name, labels, "count")] = float(child.count)
                    values[series_key(family.name, labels, "sum")] = float(child.sum)
                    for q, estimate in child.quantiles.items():
                        if estimate is not None:
                            facet = f"p{q * 100:g}".replace(".", "_")
                            values[series_key(family.name, labels, facet)] = float(estimate)
                else:
                    values[series_key(family.name, labels)] = float(child.value)
        return values

    def sample(self, now: float | None = None) -> TimePoint:
        """Take one snapshot unconditionally and append it to the ring."""
        registry = self._registry if self._registry is not None else get_registry()
        point = TimePoint(
            ts=wall_clock() if now is None else float(now),
            values=self._snapshot_values(registry),
        )
        with self._lock:
            self._fine.append(point)
            self._pending.append(point)
            if len(self._pending) >= self.downsample:
                self._coarse.append(_aggregate(self._pending))
                self._pending = []
            self._last_sample_mono = monotonic()
        return point

    def due(self) -> bool:
        """True when ``interval_s`` has elapsed since the last sample.

        One clock read, no snapshot cost — callers that want to do
        extra work per sample (e.g. export health gauges first) gate on
        this and then call :meth:`sample` themselves.
        """
        with self._lock:
            last = self._last_sample_mono
        if last is None:
            return True
        return monotonic() - last >= self.interval_s

    def maybe_sample(self, now: float | None = None) -> TimePoint | None:
        """Snapshot only when ``interval_s`` has elapsed since the last.

        This is the hook the streaming runtime calls once per ingested
        chunk; at most one clock read per call, none of the snapshot
        cost when the interval has not passed.
        """
        if not self.due():
            return None
        return self.sample(now)

    def flush(self) -> None:
        """Fold any pending fine points into a final coarse aggregate."""
        with self._lock:
            if self._pending:
                self._coarse.append(_aggregate(self._pending))
                self._pending = []

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fine)

    @property
    def points(self) -> list[TimePoint]:
        """Fine-window snapshots, oldest first."""
        with self._lock:
            return list(self._fine)

    @property
    def aggregates(self) -> list[AggregatePoint]:
        """Coarse-window aggregates, oldest first."""
        with self._lock:
            return list(self._coarse)

    def series(self, key: str) -> list[tuple[float, float]]:
        """``(ts, value)`` pairs of one series across the fine window."""
        with self._lock:
            return [
                (p.ts, p.values[key]) for p in self._fine if key in p.values
            ]

    def keys(self) -> list[str]:
        """Every series key present anywhere in the fine window."""
        seen: dict[str, None] = {}
        with self._lock:
            for point in self._fine:
                for key in point.values:
                    seen.setdefault(key)
        return list(seen)

    def to_payload(self, last: int | None = None) -> dict:
        """JSON-serialisable dump (the ``/timeseries`` endpoint body)."""
        with self._lock:
            fine = list(self._fine)
            coarse = list(self._coarse)
        if last is not None and last >= 0:
            fine = fine[-last:]
            coarse = coarse[-last:]
        return {
            "capacity": self.capacity,
            "interval_s": self.interval_s,
            "downsample": self.downsample,
            "fine": [{"ts": p.ts, "values": p.values} for p in fine],
            "coarse": [
                {
                    "ts_first": a.ts_first,
                    "ts_last": a.ts_last,
                    "n": a.n,
                    "min": a.minimum,
                    "max": a.maximum,
                    "mean": a.mean,
                    "last": a.last,
                }
                for a in coarse
            ],
        }


def _aggregate(points: list[TimePoint]) -> AggregatePoint:
    """Collapse consecutive fine points into one coarse point."""
    minimum: dict[str, float] = {}
    maximum: dict[str, float] = {}
    total: dict[str, float] = {}
    count: dict[str, int] = {}
    last: dict[str, float] = {}
    for point in points:
        for key, value in point.values.items():
            if key in minimum:
                if value < minimum[key]:
                    minimum[key] = value
                if value > maximum[key]:
                    maximum[key] = value
                total[key] += value
                count[key] += 1
            else:
                minimum[key] = maximum[key] = total[key] = value
                count[key] = 1
            last[key] = value
    return AggregatePoint(
        ts_first=points[0].ts,
        ts_last=points[-1].ts,
        n=len(points),
        minimum=minimum,
        maximum=maximum,
        mean={k: total[k] / count[k] for k in total},
        last=last,
    )


def _series_iter(points: list[TimePoint], key: str) -> Iterator[float]:
    for point in points:
        if key in point.values:
            yield point.values[key]


__all__ = [
    "AggregatePoint",
    "TimePoint",
    "TimeSeriesStore",
    "series_key",
]
