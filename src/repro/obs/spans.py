"""Tracing spans and timing helpers.

A :class:`Span` measures one unit of work — wall *and* CPU time — and on
exit folds its duration into a latency histogram in the active metrics
registry.  Spans nest: a contextvar stack links children to parents, so
``detect.extract`` opened inside ``eval.suite`` reports the dotted path
``eval.suite/detect.extract`` and inherits the parent's ``trace_id``.

The per-message pipeline stages use :func:`stage_timer`, which feeds the
shared ``vprofile_stage_seconds{stage=...}`` histogram and — critically —
short-circuits to a stateless :data:`NULL_TIMER` when observability is
disabled, so the hot path performs **no clock reads and no allocation**
(the disabled-overhead regression test pins this down by making
``perf_counter`` explode).
"""

from __future__ import annotations

import uuid
from contextvars import ContextVar
from time import perf_counter, process_time

from repro.obs.registry import MetricsRegistry, get_registry

#: Histogram fed by the per-message pipeline stages.
STAGE_METRIC = "vprofile_stage_seconds"
#: Histogram fed by generic (non-stage) spans.
SPAN_METRIC = "vprofile_span_seconds"
#: Counter of spans that exited with an exception.
SPAN_ERRORS_METRIC = "vprofile_span_errors_total"

_span_stack: ContextVar[tuple["Span", ...]] = ContextVar("obs_span_stack", default=())


def current_span() -> "Span | None":
    """Innermost open span in this context, if any."""
    stack = _span_stack.get()
    return stack[-1] if stack else None


class Span:
    """One timed unit of work; use as a context manager.

    Attributes (valid after exit)
    -----------------------------
    wall_s / cpu_s:
        Elapsed wall-clock and process-CPU time.
    path:
        ``parent.path + "/" + name`` when nested, else ``name``.
    trace_id:
        Inherited from the enclosing span, or freshly generated.
    error:
        The exception that escaped the body, or ``None``.
    """

    __slots__ = (
        "name", "labels", "trace_id", "path", "parent",
        "wall_s", "cpu_s", "error",
        "_registry", "_metric", "_metric_labels", "_token", "_t0", "_c0",
    )

    def __init__(
        self,
        name: str,
        *,
        registry: MetricsRegistry | None = None,
        trace_id: str | None = None,
        metric: str = SPAN_METRIC,
        metric_labels: dict[str, str] | None = None,
        labels: dict[str, str] | None = None,
    ):
        # `labels` is a plain dict, not **kwargs: user label names like
        # "metric" or "registry" must not collide with our parameters.
        self.name = name
        self.labels = labels or {}
        self.trace_id = trace_id
        self.path = name
        self.parent: Span | None = None
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.error: BaseException | None = None
        self._registry = registry
        self._metric = metric
        self._metric_labels = metric_labels

    def __enter__(self) -> "Span":
        stack = _span_stack.get()
        if stack:
            self.parent = stack[-1]
            self.path = f"{self.parent.path}/{self.name}"
            if self.trace_id is None:
                self.trace_id = self.parent.trace_id
        if self.trace_id is None:
            self.trace_id = uuid.uuid4().hex[:16]
        self._token = _span_stack.set(stack + (self,))
        self._c0 = process_time()
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = perf_counter() - self._t0
        self.cpu_s = process_time() - self._c0
        self.error = exc
        _span_stack.reset(self._token)
        registry = self._registry or get_registry()
        if registry.enabled:
            metric_labels = self._metric_labels
            if metric_labels is None:
                metric_labels = {"span": self.name, **self.labels}
            registry.histogram(self._metric, **metric_labels).observe(self.wall_s)
            if exc is not None:
                registry.counter(SPAN_ERRORS_METRIC, span=self.name).inc()
        return False  # never swallow the exception


def span(
    name: str,
    *,
    registry: MetricsRegistry | None = None,
    trace_id: str | None = None,
    **labels: str,
) -> Span:
    """Open a generic span feeding ``vprofile_span_seconds{span=name}``.

    Always times (the span object is useful on its own); only the metric
    emission is gated on the registry being enabled.
    """
    return Span(name, registry=registry, trace_id=trace_id, labels=labels)


class _NullTimer:
    """Do-nothing stand-in for a span when observability is off.

    Stateless and reentrant; also quacks like a finished span so code
    reading ``s.wall_s`` after the block keeps working.
    """

    __slots__ = ()

    wall_s = 0.0
    cpu_s = 0.0
    error = None
    trace_id = None
    path = ""

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_TIMER = _NullTimer()


def stage_timer(stage: str, registry: MetricsRegistry | None = None):
    """Span over one pipeline stage (``extract`` / ``classify`` / ``update``).

    Feeds ``vprofile_stage_seconds{stage=...}``.  Returns the shared
    :data:`NULL_TIMER` when observability is disabled — the hot-path
    fast exit.
    """
    registry = registry or get_registry()
    if not registry.enabled:
        return NULL_TIMER
    return Span(
        f"stage.{stage}",
        registry=registry,
        metric=STAGE_METRIC,
        metric_labels={"stage": stage},
    )


class Stopwatch:
    """Plain wall/CPU timer for benchmarks and scripts.

    Either a context manager::

        with Stopwatch() as sw:
            work()
        print(sw.wall_s)

    or explicit ``start()`` / ``stop()`` for loop-carried accumulation.
    """

    __slots__ = ("wall_s", "cpu_s", "_t0", "_c0")

    def __init__(self) -> None:
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._t0: float | None = None
        self._c0 = 0.0

    def start(self) -> "Stopwatch":
        self._c0 = process_time()
        self._t0 = perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("stopwatch was never started")
        self.wall_s += perf_counter() - self._t0
        self.cpu_s += process_time() - self._c0
        self._t0 = None
        return self.wall_s

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
