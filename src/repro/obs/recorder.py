"""Flight recorder: bounded pre/post-alert context, dumpable and replayable.

Viden-style attacker identification needs the voltage context *around*
an alert, not just the alert itself.  The :class:`FlightRecorder` keeps
a bounded per-shard ring of the most recent classified messages (edge
feature vector + verdict ingredients); when an anomaly arrives it arms
a dump that completes after ``post_alert`` more records on that shard,
then writes a **versioned forensics bundle**:

* ``manifest.json`` — bundle schema version, alert coordinates, margin,
  record index (seq/SA/verdict per row);
* ``arrays.npz`` — float64 feature vectors, one row per record;
* ``model.npz`` — the detector's model at dump time.

:class:`ForensicsBundle` loads a bundle back and :meth:`replay`\\ s it
through a fresh detector built from the embedded model.  Because the
detector's classification floats are batch-size independent (pinned by
the stream-vs-batch equality tests), replay reproduces every recorded
verdict — including the alerting one — byte-identically whenever the
profile store was static over the recorded window.  With Algorithm-4
online updates enabled the embedded model is the *dump-time* state, so
records classified against earlier profile states may legitimately
mismatch — the per-field :class:`ReplayMismatch` list then measures
exactly how far the profile moved across the window, which is itself
the drift-vs-poisoning signal the health monitor consumes.

The recorder is called from worker threads; each shard ring has its own
lock so shards never contend with each other on the hot path.  Heavy
imports (``Detector``, ``VProfileModel``) happen lazily inside the
dump/replay cold paths: ``repro.obs`` must stay import-cycle free from
``repro.core``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ObservabilityError
from repro.obs.clock import wall_clock
from repro.obs.events import get_event_log

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime import
    from repro.core.detection import DetectionResult
    from repro.core.model import VProfileModel

#: Schema version stamped into every manifest; bump on layout changes.
BUNDLE_VERSION = 1

MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"
MODEL_FILE = "model.npz"

BUNDLES_METRIC = "vprofile_forensics_bundles_total"


@dataclass(frozen=True)
class FlightRecord:
    """One classified message as the recorder remembers it."""

    seq: int
    shard: int
    source_address: int
    start_s: float
    vector: np.ndarray
    verdict: str
    reason: str | None
    expected_cluster: int | None
    predicted_cluster: int | None
    min_distance: float | None
    slack: float | None


class _PendingDump:
    """A dump armed by an alert, waiting for its post-alert context."""

    __slots__ = ("alert", "remaining")

    def __init__(self, alert: FlightRecord, remaining: int):
        self.alert = alert
        self.remaining = remaining


class FlightRecorder:
    """Bounded per-shard rings of recent verdicts, dumped on alert.

    Parameters
    ----------
    flight_dir:
        Directory receiving forensics bundles (created on first dump).
    n_shards:
        Ring count; record ``shard`` indexes into it.
    capacity:
        Records retained per shard (the pre-alert context window).
    post_alert:
        Records to wait for after the alert before dumping, so the
        bundle carries context on both sides of the event.
    max_bundles:
        Cap on bundles written per recorder lifetime (alert storms must
        not fill the disk).
    model:
        The live model (duck-typed: needs ``save(path)``); embedded in
        every bundle so replay uses the exact profiles that alerted.
    margin:
        Detector margin at record time, stored for replay.
    """

    def __init__(
        self,
        flight_dir: str | Path,
        *,
        n_shards: int = 1,
        capacity: int = 128,
        post_alert: int = 16,
        max_bundles: int = 8,
        model: "VProfileModel | None" = None,
        margin: float = 0.0,
    ):
        if n_shards < 1:
            raise ObservabilityError(f"n_shards must be >= 1, got {n_shards}")
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        if post_alert < 0:
            raise ObservabilityError(f"post_alert must be >= 0, got {post_alert}")
        self.flight_dir = Path(flight_dir)
        self.n_shards = int(n_shards)
        self.capacity = int(capacity)
        self.post_alert = int(post_alert)
        self.max_bundles = int(max_bundles)
        self.model = model
        self.margin = float(margin)
        self._rings: list[deque[FlightRecord]] = [
            deque(maxlen=self.capacity) for _ in range(self.n_shards)
        ]
        self._locks = [threading.Lock() for _ in range(self.n_shards)]
        self._pending: list[_PendingDump | None] = [None] * self.n_shards
        self._bundle_lock = threading.Lock()
        self._bundles_written = 0
        self.bundle_paths: list[Path] = []

    # ------------------------------------------------------------------
    # Hot path (worker threads)
    # ------------------------------------------------------------------
    def record(
        self,
        seq: int,
        shard: int,
        source_address: int,
        start_s: float,
        vector: np.ndarray,
        result: "DetectionResult",
    ) -> Path | None:
        """Append one verdict; returns a bundle path when a dump fired."""
        entry = FlightRecord(
            seq=seq,
            shard=shard,
            source_address=source_address,
            start_s=start_s,
            vector=np.asarray(vector, dtype=np.float64).copy(),
            verdict=str(result.verdict),
            reason=None if result.reason is None else str(result.reason),
            expected_cluster=result.expected_cluster,
            predicted_cluster=result.predicted_cluster,
            min_distance=result.min_distance,
            slack=result.slack,
        )
        ring_index = shard % self.n_shards
        to_dump: list[FlightRecord] | None = None
        alert: FlightRecord | None = None
        with self._locks[ring_index]:
            ring = self._rings[ring_index]
            ring.append(entry)
            pending = self._pending[ring_index]
            if pending is not None:
                pending.remaining -= 1
                if pending.remaining <= 0:
                    to_dump = list(ring)
                    alert = pending.alert
                    self._pending[ring_index] = None
            elif result.is_anomaly:
                if self.post_alert == 0:
                    to_dump = list(ring)
                    alert = entry
                else:
                    self._pending[ring_index] = _PendingDump(
                        entry, self.post_alert
                    )
        if to_dump is not None and alert is not None:
            return self._dump(alert, to_dump)
        return None

    def finish(self) -> list[Path]:
        """Flush dumps still waiting for post-alert context (stream end)."""
        paths: list[Path] = []
        for ring_index in range(self.n_shards):
            with self._locks[ring_index]:
                pending = self._pending[ring_index]
                self._pending[ring_index] = None
                to_dump = list(self._rings[ring_index]) if pending else None
            if pending is not None and to_dump:
                path = self._dump(pending.alert, to_dump)
                if path is not None:
                    paths.append(path)
        return paths

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings)

    # ------------------------------------------------------------------
    # Dump (cold path)
    # ------------------------------------------------------------------
    def _dump(self, alert: FlightRecord, records: list[FlightRecord]) -> Path | None:
        with self._bundle_lock:
            if self._bundles_written >= self.max_bundles:
                return None
            self._bundles_written += 1
            bundle_index = self._bundles_written
        directory = self.flight_dir / f"bundle-{bundle_index:04d}-seq{alert.seq}"
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": BUNDLE_VERSION,
            "created_unix_s": wall_clock(),
            "margin": self.margin,
            "alert": {
                "seq": alert.seq,
                "shard": alert.shard,
                "source_address": alert.source_address,
                "verdict": alert.verdict,
                "reason": alert.reason,
            },
            "records": [
                {
                    "seq": r.seq,
                    "shard": r.shard,
                    "source_address": r.source_address,
                    "start_s": r.start_s,
                    "verdict": r.verdict,
                    "reason": r.reason,
                    "expected_cluster": r.expected_cluster,
                    "predicted_cluster": r.predicted_cluster,
                    "min_distance": r.min_distance,
                    "slack": r.slack,
                }
                for r in records
            ],
        }
        (directory / MANIFEST_FILE).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        np.savez_compressed(
            directory / ARRAYS_FILE,
            vectors=np.stack([r.vector for r in records]),
            seqs=np.array([r.seq for r in records], dtype=np.int64),
            sas=np.array([r.source_address for r in records], dtype=np.int64),
        )
        if self.model is not None:
            self.model.save(directory / MODEL_FILE)
        get_event_log().info(
            "forensics.bundle",
            path=str(directory),
            alert_seq=alert.seq,
            records=len(records),
        )
        from repro.obs.registry import get_registry

        registry = get_registry()
        if registry.enabled:
            registry.counter(
                BUNDLES_METRIC, help="Forensics bundles written on alert"
            ).inc()
        self.bundle_paths.append(directory)
        return directory


@dataclass(frozen=True)
class ReplayMismatch:
    """One record whose replayed verdict differed from the bundle."""

    seq: int
    field: str
    recorded: object
    replayed: object


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of re-running a bundle through the detector."""

    records: int
    alert_seq: int
    alert_reproduced: bool
    mismatches: list[ReplayMismatch]

    @property
    def identical(self) -> bool:
        return not self.mismatches


class ForensicsBundle:
    """A dumped bundle loaded back for post-mortem analysis."""

    def __init__(
        self,
        manifest: dict,
        vectors: np.ndarray,
        model: "VProfileModel | None",
        path: Path,
    ):
        self.manifest = manifest
        self.vectors = vectors
        self.model = model
        self.path = path

    @classmethod
    def load(cls, path: str | Path) -> "ForensicsBundle":
        directory = Path(path)
        manifest_path = directory / MANIFEST_FILE
        if not manifest_path.exists():
            raise ObservabilityError(f"not a forensics bundle: {directory}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("version")
        if version != BUNDLE_VERSION:
            raise ObservabilityError(
                f"unsupported bundle version {version!r} "
                f"(this loader reads version {BUNDLE_VERSION})"
            )
        with np.load(directory / ARRAYS_FILE, allow_pickle=False) as archive:
            vectors = np.array(archive["vectors"], dtype=np.float64)
        model = None
        if (directory / MODEL_FILE).exists():
            from repro.core.model import VProfileModel

            model = VProfileModel.load(directory / MODEL_FILE)
        return cls(manifest, vectors, model, directory)

    @property
    def records(self) -> list[dict]:
        return list(self.manifest["records"])

    @property
    def alert(self) -> dict:
        return dict(self.manifest["alert"])

    def replay(self, model: "VProfileModel | None" = None) -> ReplayReport:
        """Re-classify every record; verify verdicts byte-identically.

        The detector's floats are batch-size independent, so one
        ``classify`` per stored float64 vector must land on exactly the
        values recorded at alert time — any drift (library version,
        model mismatch, corrupted arrays) surfaces as a mismatch.
        """
        from repro.core.detection import Detector

        replay_model = model if model is not None else self.model
        if replay_model is None:
            raise ObservabilityError(
                "bundle has no embedded model; pass one to replay()"
            )
        detector = Detector(replay_model, margin=float(self.manifest["margin"]))
        mismatches: list[ReplayMismatch] = []
        alert_seq = int(self.manifest["alert"]["seq"])
        alert_reproduced = False
        for row, record in enumerate(self.records):
            result = detector.classify(
                self.vectors[row], sa=int(record["source_address"])
            )
            replayed = {
                "verdict": str(result.verdict),
                "reason": None if result.reason is None else str(result.reason),
                "expected_cluster": result.expected_cluster,
                "predicted_cluster": result.predicted_cluster,
                "min_distance": result.min_distance,
                "slack": result.slack,
            }
            for field_name, new_value in replayed.items():
                old_value = record[field_name]
                if not _values_identical(old_value, new_value):
                    mismatches.append(
                        ReplayMismatch(
                            seq=int(record["seq"]),
                            field=field_name,
                            recorded=old_value,
                            replayed=new_value,
                        )
                    )
            if int(record["seq"]) == alert_seq:
                alert_reproduced = result.is_anomaly and not any(
                    m.seq == alert_seq for m in mismatches
                )
        return ReplayReport(
            records=len(self.records),
            alert_seq=alert_seq,
            alert_reproduced=alert_reproduced,
            mismatches=mismatches,
        )


def _values_identical(old: object, new: object) -> bool:
    """Byte-identical comparison: floats must match bit for bit."""
    if isinstance(old, float) and isinstance(new, float):
        return (
            np.float64(old).tobytes() == np.float64(new).tobytes()
        )
    return old == new


__all__ = [
    "ARRAYS_FILE",
    "BUNDLES_METRIC",
    "BUNDLE_VERSION",
    "FlightRecord",
    "FlightRecorder",
    "ForensicsBundle",
    "MANIFEST_FILE",
    "MODEL_FILE",
    "ReplayMismatch",
    "ReplayReport",
]
