"""Process-local metrics registry: counters, gauges, histograms.

The registry is the single source of truth for everything the repo
measures about itself.  Instruments are addressed by *name + label set*
(Prometheus style), created lazily on first use, and aggregated in
process so exporting is a pure read:

    registry = MetricsRegistry()
    registry.counter("vprofile_messages_total").inc()
    registry.histogram("vprofile_stage_seconds", stage="extract").observe(4.2e-5)

A module-global *active* registry backs the convenience instrumentation
sprinkled through the hot paths (:func:`get_registry`).  It defaults to
:data:`NULL_REGISTRY`, whose instruments are stateless no-op singletons:
with observability disabled the per-message cost of an instrumented call
site is one global read plus a no-op method call — no dict lookups, no
allocation.  Enable with :func:`enable` / :func:`set_registry`.

Histograms combine fixed buckets (cheap, exportable to Prometheus) with
streaming quantile estimators (the P² algorithm of Jain & Chlamtac,
CACM 1985) so per-stage latency tails are available without retaining
samples.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from repro.errors import ObservabilityError

#: Sorted label items; the child key inside a metric family.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds, in seconds, spanning the
#: sub-microsecond edge-walk up to whole-capture training runs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Quantiles tracked by every histogram (P² estimators).
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------

class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that can go up and down (e.g. cluster count, queue depth)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class P2Quantile:
    """Streaming quantile estimate without sample retention.

    The P² algorithm (Jain & Chlamtac, 1985): five markers track the
    minimum, the target quantile, the two intermediate quantiles and the
    maximum; marker heights are nudged with a piecewise-parabolic fit as
    observations arrive.  Exact for the first five observations, O(1)
    per observation afterwards.
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_n", "_np", "_dn")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ObservabilityError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._initial: list[float] = []
        self._heights: list[float] | None = None
        self._n: list[float] = []
        self._np: list[float] = []
        self._dn: tuple[float, ...] = ()

    def observe(self, x: float) -> None:
        self.count += 1
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = list(self._initial)
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._np = [0.0, 2 * q, 4 * q, 2 + 2 * q, 4.0]
                self._dn = (0.0, q / 2, q, (1 + q) / 2, 1.0)
            return
        h, n = self._heights, self._n
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if h[i] <= x:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                s = 1 if d >= 1 else -1
                candidate = self._parabolic(i, s)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, s)
                n[i] += s

    def _parabolic(self, i: int, s: int) -> float:
        h, n = self._heights, self._n
        return h[i] + s / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, s: int) -> float:
        h, n = self._heights, self._n
        return h[i] + s * (h[i + s] - h[i]) / (n[i + s] - n[i])

    @property
    def value(self) -> float | None:
        """Current estimate; exact while fewer than five observations."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return None
        ordered = sorted(self._initial)
        position = self.q * (len(ordered) - 1)
        low = int(position)
        frac = position - low
        if low + 1 >= len(ordered):
            return ordered[-1]
        return ordered[low] * (1 - frac) + ordered[low + 1] * frac


class Histogram:
    """Fixed buckets plus streaming quantiles.

    Buckets follow Prometheus semantics: a bound counts observations
    ``value <= bound`` and an implicit ``+Inf`` bucket catches the rest.
    """

    __slots__ = ("bounds", "_bucket_counts", "count", "sum", "min", "max", "_quantiles")

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ):
        self.bounds: tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ObservabilityError("histogram needs at least one bucket bound")
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._quantiles = {q: P2Quantile(q) for q in quantiles}

    def observe(self, value: float) -> None:
        value = float(value)
        self._bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for estimator in self._quantiles.values():
            estimator.observe(value)

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Streaming estimate for a tracked quantile."""
        estimator = self._quantiles.get(q)
        if estimator is None:
            raise ObservabilityError(
                f"quantile {q} is not tracked (have {sorted(self._quantiles)})"
            )
        return estimator.value

    @property
    def quantiles(self) -> dict[float, float | None]:
        return {q: e.value for q, e in sorted(self._quantiles.items())}

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


# ----------------------------------------------------------------------
# Families and the registry
# ----------------------------------------------------------------------

class MetricFamily:
    """All children (label combinations) of one metric name."""

    __slots__ = ("name", "kind", "help", "children", "buckets", "quantiles")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        quantiles: Sequence[float] | None = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.children: dict[LabelKey, Counter | Gauge | Histogram] = {}
        self.buckets = buckets
        self.quantiles = quantiles


class MetricsRegistry:
    """A live, mutable collection of metric families.

    Thread-safe for instrument *creation*; individual updates rely on
    the GIL (float ``+=`` races would at worst drop a tick, which is an
    acceptable trade for zero locking on the per-message path).
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- instrument accessors ------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._child(name, "counter", help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._child(name, "gauge", help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        quantiles: Sequence[float] | None = None,
        **labels: str,
    ) -> Histogram:
        return self._child(  # type: ignore[return-value]
            name, "histogram", help, labels, buckets=buckets, quantiles=quantiles
        )

    def _child(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Mapping[str, str],
        buckets: Sequence[float] | None = None,
        quantiles: Sequence[float] | None = None,
    ):
        # Double-checked fast path: the unlocked read is a benign race
        # (dict get is atomic under the GIL) and the locked re-check
        # below decides creation.
        family = self._families.get(name)  # vpl: ignore[VPL310]
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        name, kind, help, buckets=buckets, quantiles=quantiles
                    )
                    self._families[name] = family
        if family.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} is a {family.kind}, requested as {kind}"
            )
        if help and not family.help:
            family.help = help
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            with self._lock:
                child = family.children.get(key)
                if child is None:
                    if kind == "counter":
                        child = Counter()
                    elif kind == "gauge":
                        child = Gauge()
                    else:
                        child = Histogram(
                            buckets=family.buckets or DEFAULT_LATENCY_BUCKETS,
                            quantiles=family.quantiles or DEFAULT_QUANTILES,
                        )
                    family.children[key] = child
        return child

    # -- introspection --------------------------------------------------
    def families(self) -> Iterator[MetricFamily]:
        """Families sorted by name (stable export order)."""
        for name in sorted(self._families):
            yield self._families[name]

    def get(self, name: str, **labels: str):
        """Existing instrument or ``None`` (does not create)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def samples(self, name: str) -> Iterator[tuple[dict, "Counter | Gauge | Histogram"]]:
        """``(labels, instrument)`` pairs of one family (empty if absent)."""
        family = self._families.get(name)
        if family is None:
            return
        for key, child in family.children.items():
            yield dict(key), child

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every instrument."""
        counters, gauges, histograms = [], [], []
        for family in self.families():
            for key, child in sorted(family.children.items()):
                entry = {
                    "name": family.name,
                    "help": family.help,
                    "labels": dict(key),
                }
                if family.kind == "counter":
                    counters.append({**entry, "value": child.value})
                elif family.kind == "gauge":
                    gauges.append({**entry, "value": child.value})
                else:
                    histograms.append({
                        **entry,
                        "count": child.count,
                        "sum": child.sum,
                        "min": child.min,
                        "max": child.max,
                        "mean": child.mean,
                        "buckets": [
                            {"le": le, "count": n}
                            for le, n in child.cumulative_buckets()
                        ],
                        "quantiles": {
                            str(q): v for q, v in child.quantiles.items()
                        },
                    })
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


# ----------------------------------------------------------------------
# The disabled (null) registry
# ----------------------------------------------------------------------

class NullCounter(Counter):
    """Stateless counter accepted everywhere a real one is."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    @property
    def value(self) -> float:
        return 0.0


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(buckets=(1.0,), quantiles=())

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry(MetricsRegistry):
    """Registry stand-in when observability is off.

    Every accessor returns a shared stateless singleton, so call sites
    keep working with zero bookkeeping: no family dict, no child dicts,
    no allocation.  ``enabled`` is False so hot paths (span timers) can
    skip clock reads entirely.
    """

    enabled = False

    def __init__(self) -> None:  # no family dict at all
        pass

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name, help="", buckets=None, quantiles=None, **labels):
        return NULL_HISTOGRAM

    def families(self) -> Iterator[MetricFamily]:
        return iter(())

    def get(self, name: str, **labels: str):
        return None

    def samples(self, name: str) -> Iterator[tuple[dict, Counter | Gauge | Histogram]]:
        return iter(())

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_active_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide active registry (the null registry when disabled)."""
    return _active_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _active_registry
    previous = _active_registry
    _active_registry = registry
    return previous


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn metrics collection on; returns the now-active registry."""
    registry = registry or MetricsRegistry()
    set_registry(registry)
    return registry


def disable_metrics() -> None:
    """Restore the no-op null registry."""
    set_registry(NULL_REGISTRY)


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Scoped activation (used heavily by the test-suite)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
