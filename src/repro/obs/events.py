"""Structured event logging (JSON-lines) with a stdlib-``logging`` bridge.

Events are *facts with fields*, not formatted strings: an anomaly event
carries the reason, SA and distance as typed fields so downstream
tooling (the ``stats`` CLI, log shippers, tests) can filter without
regexes.  Each event serialises to one JSON line::

    {"ts": 1730000000.1, "level": "warning", "event": "pipeline.anomaly",
     "trace_id": "9f2c...", "reason": "cluster-mismatch", "sa": 42}

The active log defaults to :data:`NULL_EVENT_LOG` (drop everything,
allocate nothing); enable with :func:`enable_events` or
:func:`set_event_log`.  A real :class:`EventLog` keeps a bounded ring
buffer for introspection and optionally streams lines to a sink
(e.g. ``sys.stderr`` for the CLI's ``-v``).

:func:`bridge_stdlib` attaches a ``logging.Handler`` so third-party code
logging through the stdlib lands in the same structured stream.
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterable

from repro.errors import ObservabilityError
from repro.obs.spans import current_span

#: Ordered severity levels, aligned with stdlib ``logging`` values.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_number(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ObservabilityError(
            f"unknown level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    timestamp: float
    level: str
    name: str
    fields: dict = field(default_factory=dict)
    trace_id: str | None = None

    def to_dict(self) -> dict:
        record = {"ts": self.timestamp, "level": self.level, "event": self.name}
        if self.trace_id:
            record["trace_id"] = self.trace_id
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class EventLog:
    """Level-filtered, ring-buffered structured log.

    Parameters
    ----------
    level:
        Minimum severity retained (``"debug"``/``"info"``/``"warning"``/
        ``"error"``).
    capacity:
        Ring-buffer size; older events are evicted.
    sink:
        Optional text stream; every accepted event is written to it as
        one JSON line (flushed, so ``tail -f`` works on a file sink).
    """

    enabled = True

    def __init__(
        self,
        level: str = "info",
        capacity: int = 4096,
        sink: IO[str] | None = None,
    ):
        self._threshold = _level_number(level)
        self._records: deque[Event] = deque(maxlen=capacity)
        self._sink = sink

    # -- emission -------------------------------------------------------
    def emit(self, level: str, name: str, **fields) -> Event | None:
        """Record one event; returns it, or ``None`` if filtered out."""
        if _level_number(level) < self._threshold:
            return None
        span = current_span()
        event = Event(
            timestamp=time.time(),
            level=level,
            name=name,
            fields=fields,
            trace_id=span.trace_id if span is not None else None,
        )
        self._records.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
            self._sink.flush()
        return event

    def debug(self, name: str, **fields) -> Event | None:
        return self.emit("debug", name, **fields)

    def info(self, name: str, **fields) -> Event | None:
        return self.emit("info", name, **fields)

    def warning(self, name: str, **fields) -> Event | None:
        return self.emit("warning", name, **fields)

    def error(self, name: str, **fields) -> Event | None:
        return self.emit("error", name, **fields)

    # -- introspection --------------------------------------------------
    def set_level(self, level: str) -> None:
        self._threshold = _level_number(level)

    def records(self, level: str | None = None, name: str | None = None) -> list[Event]:
        """Buffered events, optionally filtered by minimum level / name."""
        events: Iterable[Event] = self._records
        if level is not None:
            floor = _level_number(level)
            events = (e for e in events if _level_number(e.level) >= floor)
        if name is not None:
            events = (e for e in events if e.name == name)
        return list(events)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


class NullEventLog(EventLog):
    """Event log stand-in when observability is off: drops everything."""

    enabled = False

    def __init__(self) -> None:
        pass

    def emit(self, level: str, name: str, **fields) -> None:
        return None

    def set_level(self, level: str) -> None:
        pass

    def records(self, level=None, name=None) -> list[Event]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_EVENT_LOG = NullEventLog()

_active_log: EventLog = NULL_EVENT_LOG


def get_event_log() -> EventLog:
    """The process-wide active event log (null when disabled)."""
    return _active_log


def set_event_log(log: EventLog) -> EventLog:
    """Install ``log`` as the active one; returns the previous."""
    global _active_log
    previous = _active_log
    _active_log = log
    return previous


def enable_events(
    level: str = "info", sink: IO[str] | None = None, capacity: int = 4096
) -> EventLog:
    """Turn structured event logging on; returns the now-active log."""
    log = EventLog(level=level, capacity=capacity, sink=sink)
    set_event_log(log)
    return log


def disable_events() -> None:
    """Restore the no-op null event log."""
    set_event_log(NULL_EVENT_LOG)


# ----------------------------------------------------------------------
# stdlib logging bridge
# ----------------------------------------------------------------------

class EventLogHandler(logging.Handler):
    """Forwards stdlib log records into an :class:`EventLog`.

    The record's logger name becomes the event name (prefixed ``log.``)
    and the formatted message lands in a ``message`` field, so stdlib
    users show up in the same JSON-lines stream as native events.
    """

    def __init__(self, event_log: EventLog | None = None, level: int = logging.DEBUG):
        super().__init__(level=level)
        self._event_log = event_log

    def emit(self, record: logging.LogRecord) -> None:
        # `is not None`, not truthiness: an empty EventLog has len() == 0.
        log = self._event_log if self._event_log is not None else get_event_log()
        if record.levelno >= logging.ERROR:
            level = "error"
        elif record.levelno >= logging.WARNING:
            level = "warning"
        elif record.levelno >= logging.INFO:
            level = "info"
        else:
            level = "debug"
        log.emit(level, f"log.{record.name}", message=record.getMessage())


def bridge_stdlib(
    logger_name: str = "repro",
    event_log: EventLog | None = None,
    level: int = logging.DEBUG,
) -> EventLogHandler:
    """Attach (and return) a bridge handler on ``logger_name``.

    Passing ``event_log=None`` binds the bridge to whatever log is
    active at emission time, so it survives :func:`set_event_log` swaps.
    Detach with ``logging.getLogger(name).removeHandler(handler)``.
    """
    handler = EventLogHandler(event_log, level=level)
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler
