"""Observability for the vProfile pipeline: metrics, spans, event logs.

Three cooperating pieces, all off by default and all sharing the same
design rule — *a disabled handle is a stateless no-op singleton*, so the
instrumented hot paths (``extract_edge_set``, ``Detector.classify``,
``OnlineUpdater.update``, ``VProfilePipeline.process``) cost nothing
when nobody is looking:

* :mod:`repro.obs.registry` — process-local counters / gauges /
  histograms (fixed buckets + P² streaming quantiles), addressed by
  name + label set;
* :mod:`repro.obs.spans` — nesting tracing spans recording wall/CPU
  time into per-stage latency histograms;
* :mod:`repro.obs.events` — a structured JSON-lines event log with a
  stdlib-``logging`` bridge;
* :mod:`repro.obs.export` — Prometheus text / JSON snapshot exporters
  plus the ``stats`` summariser.

Layered on top, the longitudinal telemetry added for the streaming
runtime:

* :mod:`repro.obs.timeseries` — bounded ring-buffer time-series store
  snapshotting the registry into fixed-memory windows;
* :mod:`repro.obs.health` — per-SA profile-health monitor (drift vs a
  pinned baseline, update-acceptance and alert rates, hysteresis);
* :mod:`repro.obs.recorder` — alert flight recorder dumping replayable
  forensics bundles;
* :mod:`repro.obs.server` — stdlib HTTP endpoint serving ``/metrics``,
  ``/health`` and ``/timeseries``.

Typical use::

    from repro import obs

    with obs.enabled() as (registry, events):
        pipeline.train(traces)
        for trace in stream:
            pipeline.process(trace)
        print(obs.to_prometheus(registry))

or process-wide (the CLI's ``--metrics-out`` path)::

    registry = obs.enable_metrics()
    obs.preregister_pipeline_metrics(registry)
    ...
    obs.write_metrics(registry, "metrics.prom")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import IO

from repro.obs.clock import cpu_time, monotonic, wall_clock
from repro.obs.events import (
    LEVELS,
    Event,
    EventLog,
    EventLogHandler,
    NULL_EVENT_LOG,
    NullEventLog,
    bridge_stdlib,
    disable_events,
    enable_events,
    get_event_log,
    set_event_log,
)
from repro.obs.export import (
    load_snapshot,
    parse_prometheus,
    summarize_snapshot,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.obs.health import (
    DRIFTING,
    HEALTHY,
    HEALTH_METRIC,
    HealthAssessment,
    HealthConfig,
    ProfileHealthMonitor,
    SUSPECT,
)
from repro.obs.recorder import (
    BUNDLE_VERSION,
    FlightRecord,
    FlightRecorder,
    ForensicsBundle,
    ReplayReport,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    P2Quantile,
    disable_metrics,
    enable_metrics,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.server import MetricsServer, parse_host_port
from repro.obs.spans import (
    NULL_TIMER,
    SPAN_ERRORS_METRIC,
    SPAN_METRIC,
    STAGE_METRIC,
    Span,
    Stopwatch,
    current_span,
    span,
    stage_timer,
)
from repro.obs.timeseries import (
    AggregatePoint,
    TimePoint,
    TimeSeriesStore,
    series_key,
)

#: The three per-message pipeline stages fed into ``vprofile_stage_seconds``.
PIPELINE_STAGES = ("extract", "classify", "update")

#: Anomaly reasons mirrored from :class:`repro.core.detection.AnomalyReason`
#: (string-duplicated here so ``repro.obs`` stays import-cycle free).
ANOMALY_REASONS = ("unknown-sa", "cluster-mismatch", "distance-exceeded")


def preregister_pipeline_metrics(registry: MetricsRegistry) -> None:
    """Create the pipeline's metric families with zero values.

    Guarantees a stable export surface: every stage histogram and every
    anomaly-reason counter appears in ``--metrics-out`` files even when
    a run never exercised that stage / reason.  A no-op on the null
    registry.
    """
    for stage in PIPELINE_STAGES:
        registry.histogram(
            STAGE_METRIC,
            help="Per-stage pipeline latency in seconds",
            stage=stage,
        )
    for reason in ANOMALY_REASONS:
        registry.counter(
            "vprofile_anomalies_total",
            help="Messages flagged anomalous, by Algorithm 3 reason",
            reason=reason,
        )
    registry.counter(
        "vprofile_messages_total", help="Messages classified by the detector"
    )
    registry.counter(
        "vprofile_extraction_skipped_total",
        help="Traces dropped by extract_many(skip_failures=True)",
    )
    # Spelled out literally so the metric namespace stays grep-able (VPL401).
    registry.counter("vprofile_cache_hits_total", help="Capture-cache hits")
    registry.counter("vprofile_cache_misses_total", help="Capture-cache misses")
    registry.counter(
        "vprofile_cache_evictions_total", help="Capture-cache evictions"
    )


def enable(
    *,
    level: str = "info",
    sink: IO[str] | None = None,
    registry: MetricsRegistry | None = None,
) -> tuple[MetricsRegistry, EventLog]:
    """Turn on both metrics and events process-wide."""
    active = enable_metrics(registry)
    preregister_pipeline_metrics(active)
    return active, enable_events(level=level, sink=sink)


def disable() -> None:
    """Turn off both metrics and events (restore the null singletons)."""
    disable_metrics()
    disable_events()


@contextmanager
def enabled(
    *,
    level: str = "debug",
    sink: IO[str] | None = None,
    registry: MetricsRegistry | None = None,
):
    """Scoped observability: enable on entry, restore previous on exit.

    Yields ``(registry, event_log)``; the workhorse for tests and
    notebook sessions.
    """
    active = registry or MetricsRegistry()
    preregister_pipeline_metrics(active)
    log = EventLog(level=level, sink=sink)
    previous_registry = set_registry(active)
    previous_log = set_event_log(log)
    try:
        yield active, log
    finally:
        set_registry(previous_registry)
        set_event_log(previous_log)


__all__ = [
    # registry
    "Counter", "Gauge", "Histogram", "P2Quantile", "MetricFamily",
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS", "DEFAULT_QUANTILES",
    "get_registry", "set_registry", "use_registry",
    "enable_metrics", "disable_metrics",
    # spans
    "Span", "Stopwatch", "span", "stage_timer", "current_span",
    "NULL_TIMER", "STAGE_METRIC", "SPAN_METRIC", "SPAN_ERRORS_METRIC",
    # events
    "Event", "EventLog", "EventLogHandler", "NullEventLog",
    "NULL_EVENT_LOG", "LEVELS", "bridge_stdlib",
    "get_event_log", "set_event_log", "enable_events", "disable_events",
    # export
    "to_prometheus", "to_json", "write_metrics",
    "load_snapshot", "parse_prometheus", "summarize_snapshot",
    # timeseries
    "TimeSeriesStore", "TimePoint", "AggregatePoint", "series_key",
    # health
    "ProfileHealthMonitor", "HealthConfig", "HealthAssessment",
    "HEALTHY", "DRIFTING", "SUSPECT", "HEALTH_METRIC",
    # recorder
    "FlightRecorder", "FlightRecord", "ForensicsBundle", "ReplayReport",
    "BUNDLE_VERSION",
    # server
    "MetricsServer", "parse_host_port",
    # clock funnel
    "monotonic", "cpu_time", "wall_clock",
    # composite helpers
    "PIPELINE_STAGES", "ANOMALY_REASONS", "preregister_pipeline_metrics",
    "enable", "disable", "enabled",
]
