"""Metric exporters and the ``stats`` summariser.

Two on-disk formats:

* **Prometheus text exposition** (``.prom`` / ``.txt`` / anything else)
  — scrape-ready; histograms become cumulative ``_bucket{le=...}``
  series plus ``_sum`` / ``_count``.
* **JSON snapshot** (``.json``) — the registry's full state including
  the streaming quantiles Prometheus text cannot carry.

:func:`load_snapshot` reads either format back into the JSON-snapshot
shape (the Prometheus parser reconstructs histogram count/sum/buckets),
and :func:`summarize_snapshot` renders the operator summary printed by
``python -m repro.cli stats``.
"""

from __future__ import annotations

import json
import math
import os
import re
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry

# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP text escapes only backslash and newline (no quotes) per the
    # exposition format.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in sorted(family.children.items()):
            labels = dict(key)
            if family.kind in ("counter", "gauge"):
                lines.append(
                    f"{family.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
            else:  # histogram
                for le, count in child.cumulative_buckets():
                    bucket_labels = {**labels, "le": _format_value(le)}
                    lines.append(
                        f"{family.name}_bucket{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)} {child.count}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def to_json(registry: MetricsRegistry) -> dict:
    """The registry's JSON-serialisable snapshot."""
    return registry.snapshot()


def write_metrics(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the registry to ``path``; format chosen by extension.

    ``.json`` gets the JSON snapshot, everything else the Prometheus
    text format.

    The write is atomic (tmp file + fsync + rename), so a crash or a
    concurrent scrape never observes a truncated metrics file — the CLI
    calls this from its error/exit paths, where a half-written file
    would silently corrupt the last run's evidence.
    """
    path = Path(path)
    if path.suffix == ".json":
        text = json.dumps(to_json(registry), indent=2, sort_keys=True) + "\n"
    else:
        text = to_prometheus(registry)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# Reading (the `stats` subcommand)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(r"^([A-Za-z_:][\w:]*)(?:\{(.*)\})?\s+(\S+)\s*$")
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    # A left-to-right scan, not chained str.replace: replacement chains
    # mis-handle sequences like '\\' + 'n' (an escaped backslash
    # followed by a literal n), which must decode to '\' + 'n', not a
    # newline.
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_sample_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text format back into the JSON-snapshot shape.

    Quantiles are not representable in the text format, so histograms
    come back with an empty ``quantiles`` map; ``mean`` is recomputed
    from ``_sum`` / ``_count``.
    """
    kinds: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(f"unparseable metrics line: {line!r}")
        name, label_text, value_text = match.groups()
        labels = {
            key: _unescape_label_value(value)
            for key, value in _LABEL_RE.findall(label_text or "")
        }
        samples.append((name, labels, _parse_sample_value(value_text)))

    counters: list[dict] = []
    gauges: list[dict] = []
    histograms: dict[tuple, dict] = {}

    def _histogram_entry(base: str, labels: dict[str, str]) -> dict:
        key = (base, tuple(sorted(labels.items())))
        entry = histograms.get(key)
        if entry is None:
            entry = {
                "name": base,
                "help": "",
                "labels": labels,
                "count": 0,
                "sum": 0.0,
                "min": None,
                "max": None,
                "mean": None,
                "buckets": [],
                "quantiles": {},
            }
            histograms[key] = entry
        return entry

    for name, labels, value in samples:
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and kinds.get(base) == "histogram":
                if suffix == "_bucket":
                    le = labels.pop("le", "+Inf")
                    entry = _histogram_entry(base, labels)
                    entry["buckets"].append(
                        {"le": _parse_sample_value(le), "count": int(value)}
                    )
                elif suffix == "_sum":
                    _histogram_entry(base, labels)["sum"] = value
                else:
                    entry = _histogram_entry(base, labels)
                    entry["count"] = int(value)
                break
        else:
            entry = {"name": name, "help": "", "labels": labels, "value": value}
            if kinds.get(name) == "gauge":
                gauges.append(entry)
            else:
                counters.append(entry)

    for entry in histograms.values():
        entry["buckets"].sort(key=lambda b: b["le"])
        if entry["count"]:
            entry["mean"] = entry["sum"] / entry["count"]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": list(histograms.values()),
    }


def load_snapshot(path: str | Path) -> dict:
    """Read a metrics file written by :func:`write_metrics` (either format)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".json":
        try:
            snapshot = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(snapshot, dict) or "counters" not in snapshot:
            raise ObservabilityError(f"{path} is not a metrics snapshot")
        return snapshot
    return parse_prometheus(text)


# ----------------------------------------------------------------------
# Summarising
# ----------------------------------------------------------------------

def _format_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _label_suffix(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    ) + "}"


def summarize_snapshot(snapshot: dict, source: str = "") -> str:
    """Operator summary of a metrics snapshot (``stats`` subcommand body)."""
    lines = [f"=== metrics summary{f': {source}' if source else ''} ==="]

    histograms = snapshot.get("histograms", [])
    if histograms:
        lines.append("latency histograms:")
        for entry in sorted(histograms, key=lambda e: (e["name"], sorted(e["labels"].items()))):
            name = entry["name"] + _label_suffix(entry["labels"])
            is_seconds = entry["name"].endswith("_seconds")
            fmt = _format_seconds if is_seconds else (
                lambda v: "-" if v is None else f"{v:.4g}"
            )
            quantiles = entry.get("quantiles") or {}
            quantile_text = "".join(
                f"  p{float(q) * 100:g} {fmt(value)}"
                for q, value in sorted(quantiles.items(), key=lambda kv: float(kv[0]))
                if value is not None
            )
            lines.append(
                f"  {name}: count {entry['count']}  mean {fmt(entry.get('mean'))}"
                f"  min {fmt(entry.get('min'))}  max {fmt(entry.get('max'))}"
                + quantile_text
            )

    counters = snapshot.get("counters", [])
    if counters:
        lines.append("counters:")
        for entry in sorted(counters, key=lambda e: (e["name"], sorted(e["labels"].items()))):
            lines.append(
                f"  {entry['name']}{_label_suffix(entry['labels'])} "
                f"= {_format_value(entry['value'])}"
            )

    gauges = snapshot.get("gauges", [])
    if gauges:
        lines.append("gauges:")
        for entry in sorted(gauges, key=lambda e: (e["name"], sorted(e["labels"].items()))):
            lines.append(
                f"  {entry['name']}{_label_suffix(entry['labels'])} "
                f"= {_format_value(entry['value'])}"
            )

    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
