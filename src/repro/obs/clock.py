"""The process-clock funnel for the rest of the codebase.

Lint rule VPL103 forbids direct ``time.*`` / ``datetime.*`` clock reads
outside ``repro.obs``: a stray wall-clock read in a synthesis or
extraction path is exactly the kind of silent nondeterminism that breaks
the byte-identical-traces guarantee.  Code that legitimately needs
timing — throughput reports, latency histograms — imports it from here,
so every clock consumer in the tree is one ``grep`` away and tests can
monkeypatch a single module.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from time import process_time as _process_time
from time import time as _wall_time


def monotonic() -> float:
    """High-resolution monotonic seconds; for measuring durations."""
    return _perf_counter()


def cpu_time() -> float:
    """Process CPU seconds; for wall-vs-CPU breakdowns."""
    return _process_time()


def wall_clock() -> float:
    """Epoch seconds; for timestamping events, never for measuring."""
    return _wall_time()


__all__ = ["cpu_time", "monotonic", "wall_clock"]
