"""Checkpoint/resume for the streaming runtime.

A checkpoint is a directory with three files:

* ``model.npz`` — the (possibly online-updated) profile store, written
  with :meth:`VProfileModel.save`;
* ``extractor.npz`` — the incremental segmenter/extractor state: the
  rolling sample buffer, burst bookkeeping, pending emissions and the
  ingest counters;
* ``meta.json`` — format version, the next chunk to ingest, the next
  message sequence number, the detection margin, and the Algorithm 1
  extraction constants.

Checkpoints are only taken at quiesced chunk boundaries (all shard
queues drained, no in-flight classification), so resuming re-ingests
nothing and re-classifies nothing: the resumed run's verdict sequence
continues exactly where the interrupted one stopped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.edge_extraction import ExtractionConfig, FrameFormat
from repro.core.model import VProfileModel
from repro.errors import StreamError

#: Checkpoint format version.
CHECKPOINT_VERSION = 1

_MODEL_FILE = "model.npz"
_EXTRACTOR_FILE = "extractor.npz"
_META_FILE = "meta.json"


@dataclass(frozen=True)
class Checkpoint:
    """Everything needed to continue an interrupted streaming run."""

    model: VProfileModel
    extraction: ExtractionConfig | None
    extractor_state: dict[str, Any] | None
    next_chunk: int
    next_seq: int
    margin: float


def save_checkpoint(
    path: str | Path,
    *,
    model: VProfileModel,
    extraction: ExtractionConfig | None,
    extractor_state: dict[str, Any] | None,
    next_chunk: int,
    next_seq: int,
    margin: float = 0.0,
) -> None:
    """Write a checkpoint directory (created if missing, overwritten)."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    model.save(directory / _MODEL_FILE)
    if extractor_state is not None:
        np.savez_compressed(directory / _EXTRACTOR_FILE, **extractor_state)
    elif (directory / _EXTRACTOR_FILE).exists():
        (directory / _EXTRACTOR_FILE).unlink()
    meta: dict[str, Any] = {
        "version": CHECKPOINT_VERSION,
        "next_chunk": int(next_chunk),
        "next_seq": int(next_seq),
        "margin": float(margin),
        "extraction": None,
    }
    if extraction is not None:
        meta["extraction"] = {
            "bit_width": extraction.bit_width,
            "threshold": extraction.threshold,
            "prefix_len": extraction.prefix_len,
            "suffix_len": extraction.suffix_len,
            "n_edge_sets": extraction.n_edge_sets,
            "edge_set_spacing": extraction.edge_set_spacing,
            "frame_format": extraction.frame_format.value,
        }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2) + "\n")


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load a checkpoint directory written by :func:`save_checkpoint`."""
    directory = Path(path)
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise StreamError(f"not a checkpoint directory: {directory}")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise StreamError(f"corrupt checkpoint metadata: {exc}") from exc
    version = int(meta.get("version", -1))
    if version != CHECKPOINT_VERSION:
        raise StreamError(
            f"checkpoint version {version} unsupported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    model = VProfileModel.load(directory / _MODEL_FILE)
    extraction = None
    if meta.get("extraction"):
        fields = meta["extraction"]
        extraction = ExtractionConfig(
            bit_width=float(fields["bit_width"]),
            threshold=float(fields["threshold"]),
            prefix_len=int(fields["prefix_len"]),
            suffix_len=int(fields["suffix_len"]),
            n_edge_sets=int(fields["n_edge_sets"]),
            edge_set_spacing=int(fields["edge_set_spacing"]),
            frame_format=FrameFormat(fields["frame_format"]),
        )
    extractor_state: dict[str, Any] | None = None
    extractor_path = directory / _EXTRACTOR_FILE
    if extractor_path.exists():
        with np.load(extractor_path, allow_pickle=False) as archive:
            extractor_state = {key: archive[key] for key in archive.files}
    return Checkpoint(
        model=model,
        extraction=extraction,
        extractor_state=extractor_state,
        next_chunk=int(meta["next_chunk"]),
        next_seq=int(meta["next_seq"]),
        margin=float(meta["margin"]),
    )
